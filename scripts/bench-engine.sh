#!/usr/bin/env bash
# Races the cycle engine against the event engine on memory-bound
# workloads (one SPEC, one GAP) and APPENDS a timestamped run to
# BENCH_engine.json — the file is a perf trajectory across commits, with
# per (workload, mode): wall-clock seconds, simulated cycles, executed
# ticks, and simulated cycles/second — plus the event-over-cycle speedup
# and the share of idle cycles skipped. Each entry also carries a
# trace_store section: cold-capture vs warm-streamed-replay wall-clock
# and the TLPT v2 compression ratio on the bench workload. A legacy
# single-run file is wrapped into the trajectory (as a "pre-trajectory"
# entry), never overwritten.
#
# Usage: scripts/bench-engine.sh [output.json]
#        scripts/bench-engine.sh --sanity
#
# Arguments are passed through to the race example verbatim, so
# `--sanity` runs the CI perf gate (bfs.urand only, exits nonzero when
# the event engine falls below TLP_BENCH_MIN_RATIO of cycle mode, writes
# no JSON) instead of the recording run.
#
# The race refuses to record a timing unless both engines produced
# field-identical reports, so the JSON can never advertise a speedup
# bought with accuracy.
#
# Recording runs also interleave one extra pass compiled with
# `--features obs` (timing-only, bfs.urand under the cycle engine); its
# wall time is fed back through TLP_BENCH_OBS_WALL so the appended
# trajectory entry carries an `obs_overhead` ratio against this run's
# own baseline sample. Set TLP_BENCH_SKIP_OBS=1 to skip the extra pass.
set -euo pipefail
cd "$(dirname "$0")/.."

# Stamp the run (UTC) so the trajectory orders itself; the example falls
# back to Unix seconds when unset.
export TLP_BENCH_STAMP="${TLP_BENCH_STAMP:-$(date -u +%Y-%m-%dT%H:%M:%SZ)}"

if [ "$#" -eq 0 ]; then
  set -- BENCH_engine.json
fi

sanity=0
for arg in "$@"; do
  [ "$arg" = "--sanity" ] && sanity=1
done

# The obs-overhead pass: same workload/engine the recording run measures
# as its baseline, but with the `obs` feature compiled in. Only the
# number lands on stdout, so the capture is a plain substitution.
if [ "$sanity" -eq 0 ] && [ "${TLP_BENCH_SKIP_OBS:-0}" != "1" ]; then
  TLP_BENCH_OBS_WALL="$(cargo run --release --features obs --example engine_race -- --timing-only)"
  export TLP_BENCH_OBS_WALL
fi

cargo run --release --example engine_race -- "$@"
