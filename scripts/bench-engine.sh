#!/usr/bin/env bash
# Races the cycle engine against the event engine on memory-bound
# workloads (one SPEC, one GAP) and APPENDS a timestamped run to
# BENCH_engine.json — the file is a perf trajectory across commits, with
# per (workload, mode): wall-clock seconds, simulated cycles, executed
# ticks, and simulated cycles/second — plus the event-over-cycle speedup
# and the share of idle cycles skipped. A legacy single-run file is
# wrapped into the trajectory (as a "pre-trajectory" entry), never
# overwritten.
#
# Usage: scripts/bench-engine.sh [output.json]
#        scripts/bench-engine.sh --sanity
#
# Arguments are passed through to the race example verbatim, so
# `--sanity` runs the CI perf gate (bfs.urand only, exits nonzero when
# the event engine falls below TLP_BENCH_MIN_RATIO of cycle mode, writes
# no JSON) instead of the recording run.
#
# The race refuses to record a timing unless both engines produced
# field-identical reports, so the JSON can never advertise a speedup
# bought with accuracy.
set -euo pipefail
cd "$(dirname "$0")/.."

# Stamp the run (UTC) so the trajectory orders itself; the example falls
# back to Unix seconds when unset.
export TLP_BENCH_STAMP="${TLP_BENCH_STAMP:-$(date -u +%Y-%m-%dT%H:%M:%SZ)}"

if [ "$#" -eq 0 ]; then
  set -- BENCH_engine.json
fi
cargo run --release --example engine_race -- "$@"
