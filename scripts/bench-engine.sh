#!/usr/bin/env bash
# Races the cycle engine against the event engine on memory-bound
# workloads (one SPEC, one GAP) and writes BENCH_engine.json with, per
# (workload, mode): wall-clock seconds, simulated cycles, executed ticks,
# and simulated cycles/second — plus the event-over-cycle speedup and the
# share of idle cycles skipped.
#
# Usage: scripts/bench-engine.sh [output.json]
#
# The race refuses to record a timing unless both engines produced
# field-identical reports, so the JSON can never advertise a speedup
# bought with accuracy.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release --example engine_race -- "${1:-BENCH_engine.json}"
