#!/usr/bin/env bash
# Regenerates the golden-report regression fixtures under
# crates/harness/tests/golden/ after an *intentional* behavior change.
#
# Usage: scripts/update-golden.sh
#
# Commit the resulting fixture diff together with the change that moved
# the numbers, and explain in the commit message why they moved — the
# fixtures exist so results can never drift silently.
set -euo pipefail
cd "$(dirname "$0")/.."

UPDATE_GOLDEN=1 cargo test -q -p tlp_harness --test golden
echo "Updated fixtures:"
git status --short crates/harness/tests/golden/
