//! Offline shim for `parking_lot`: non-poisoning `RwLock`/`Mutex` wrappers
//! over `std::sync`. See `shims/README.md`.

/// A reader-writer lock whose guards never expose poisoning: a panic while
/// holding the lock simply lets the next holder proceed, matching
/// parking_lot semantics.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until granted.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until granted.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access through an exclusive reference (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until granted.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access through an exclusive reference (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
