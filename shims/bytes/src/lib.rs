//! Offline shim for the `bytes` crate: the `Buf`/`BufMut` cursor traits and
//! the `Bytes`/`BytesMut` buffer types, covering the little-endian accessors
//! this workspace uses. See `shims/README.md`.

use std::ops::Deref;

/// Read cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Fills `dst` from the front of the buffer.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() > self.remaining()`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "copy_to_slice overrun");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt);
    }
}

/// Write cursor appending to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

/// An immutable byte buffer with an internal read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps owned bytes.
    #[must_use]
    pub fn from_vec(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self::from_vec(data)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "Bytes::advance overrun");
        self.pos += cnt;
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xab);
        b.put_u16_le(0x1234);
        b.put_u64_le(0xdead_beef_cafe_f00d);
        b.put_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 14);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 14);
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u64_le(), 0xdead_beef_cafe_f00d);
        let mut rest = [0u8; 3];
        r.copy_to_slice(&mut rest);
        assert_eq!(rest, [1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_buf_advances() {
        let v = [1u8, 2, 3, 4];
        let mut s = &v[..];
        assert_eq!(s.get_u8(), 1);
        assert_eq!(s.remaining(), 3);
        let via_ref = &mut s;
        assert_eq!(via_ref.get_u8(), 2);
        assert_eq!(s.remaining(), 2);
    }
}
