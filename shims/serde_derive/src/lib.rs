//! Offline shim for `serde_derive`: the `Serialize`/`Deserialize` derives
//! are accepted (including `#[serde(...)]` helper attributes) but expand to
//! nothing — the workspace only derives the traits, it never serializes.
//! See `shims/README.md`.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
