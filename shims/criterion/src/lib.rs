//! Offline shim for `criterion`: a tiny benchmark harness exposing the
//! surface this workspace's benches use. Each `bench_function` times
//! `sample_size` iterations after one warmup pass and prints mean wall time
//! per iteration (no statistical analysis, plots, or baselines).
//! See `shims/README.md`.

use std::time::{Duration, Instant};

/// Declared per-iteration work, used to print throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// How batched setup output is sized (ignored by the shim: every iteration
/// gets a fresh setup value).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The top-level harness handle passed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim has no warmup window.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim times a fixed iteration
    /// count instead of a wall-clock window.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
            iters_run: 0,
        };
        f(&mut b);
        let per_iter = if b.iters_run == 0 {
            Duration::ZERO
        } else {
            b.elapsed / u32::try_from(b.iters_run).unwrap_or(u32::MAX)
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!(" ({:.0} elem/s)", n as f64 / per_iter.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                format!(" ({:.0} B/s)", n as f64 / per_iter.as_secs_f64())
            }
            _ => String::new(),
        };
        eprintln!("  {}/{id}: {per_iter:?}/iter{rate}", self.name);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Times closures for one benchmark.
pub struct Bencher {
    iterations: usize,
    elapsed: Duration,
    iters_run: usize,
}

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine()); // warmup, untimed
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters_run += self.iterations;
    }

    /// Times `routine` on fresh `setup` output each iteration; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warmup, untimed
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters_run += self.iterations;
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0usize;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 4); // 1 warmup + 3 timed
        let mut batched = 0usize;
        g.bench_function("batched", |b| {
            b.iter_batched(|| 2usize, |x| batched += x, BatchSize::SmallInput);
        });
        g.finish();
        assert_eq!(batched, 8);
    }
}
