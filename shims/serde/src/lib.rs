//! Offline shim for `serde`: marker traits plus the no-op derives from the
//! sibling `serde_derive` shim. Types deriving `Serialize`/`Deserialize`
//! compile unchanged; actual serialization is not provided (nothing in the
//! workspace performs it). See `shims/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no methods; the no-op derive
/// does not implement it).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no methods; the no-op derive
/// does not implement it).
pub trait Deserialize<'de> {}
