//! Offline shim for `proptest`: a deterministic random-testing harness with
//! the subset of the proptest surface this workspace uses — the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, numeric range
//! strategies, tuple strategies, and `collection::vec`.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: each test draws its cases from a generator seeded from the test
//! name, so runs are fully deterministic. See `shims/README.md`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic generator backing the harness (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test identifier so every test gets a
    /// stable, independent stream.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty bound");
        self.next_u64() % bound
    }
}

/// A value generator: the shim's notion of a proptest strategy.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Types with a full-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite doubles only: arbitrary bit patterns would produce NaN/inf,
        // which real proptest also avoids by default.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Any, ProptestConfig, Strategy};
}

/// Asserts a property holds for the current case (panics on failure, like a
/// plain `assert!` — this shim has no failure-case shrinking to feed).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body against `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public surface.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_generate_in_bounds(
            x in 3u64..10,
            pair in (0usize..4, any::<bool>()),
            v in crate::collection::vec(0u8..5, 1..20),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(pair.0 < 4);
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&b| b < 5));
            prop_assert_eq!(v.len(), v.capacity().min(v.len()));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0i32..5) {
            prop_assert!((0..5).contains(&x));
        }
    }
}
