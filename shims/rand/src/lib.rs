//! Offline shim for the `rand` crate: a seeded xoshiro256**-based `StdRng`
//! behind the `Rng`/`SeedableRng` trait surface this workspace uses
//! (`gen`, `gen_range`, `gen_bool`). Streams differ from rand 0.8's
//! ChaCha-based `StdRng`, but the workspace only relies on seeded
//! determinism. See `shims/README.md`.

use std::ops::{Range, RangeInclusive};

/// Raw random-word source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Value-producing convenience layer over [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// A uniformly random value of `T` (unit-interval for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// True with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

fn unit_f64(word: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly from their full (or unit) domain.
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one value from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// SplitMix64 (Blackman & Vigna).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(2u32..=8);
            assert!((2..=8).contains(&y));
            let f = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }
}
