//! Offline shim for the `crossbeam` crate: MPMC channels (bounded and
//! unbounded) built on `Mutex` + `Condvar`, and `thread::scope` built on
//! `std::thread::scope`. See `shims/README.md`.

pub mod channel {
    //! Multi-producer multi-consumer channels with disconnect semantics.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is drained and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Blocks until the value is enqueued (bounded channels apply
        /// backpressure) or every receiver has been dropped.
        ///
        /// # Errors
        ///
        /// Returns the value back when all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel lock");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.shared.not_full.wait(st).expect("channel lock");
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel lock");
            st.senders -= 1;
            let none_left = st.senders == 0;
            drop(st);
            if none_left {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or the channel is drained with no
        /// senders left.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when empty and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).expect("channel lock");
            }
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when additionally no sender remains.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().expect("channel lock");
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel lock");
            st.receivers -= 1;
            let none_left = st.receivers == 0;
            drop(st);
            if none_left {
                // Wake blocked senders so they observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// A channel holding at most `capacity` queued values.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (rendezvous channels are not supported
    /// by this shim).
    #[must_use]
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity > 0, "zero-capacity channels unsupported");
        channel(Some(capacity))
    }

    /// A channel with no capacity bound.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }
}

pub mod thread {
    //! Scoped threads with the crossbeam calling convention (the spawn
    //! closure receives a scope argument).

    /// The scope handle passed to [`scope`] closures.
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope (by
        /// crossbeam convention); this shim passes a fresh handle.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which threads borrowing local state can be
    /// spawned; all are joined before returning.
    ///
    /// # Errors
    ///
    /// Never returns `Err`: panics from scoped threads propagate at join,
    /// matching how this workspace uses crossbeam (`.expect(..)` on the
    /// result).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError};

    #[test]
    fn unbounded_roundtrip_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let h = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a slot frees
            tx.send(4).unwrap();
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.recv(), Ok(4));
        h.join().unwrap();
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn scope_joins_workers() {
        let mut data = vec![0u64; 8];
        super::thread::scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u64 + 1);
            }
        })
        .unwrap();
        assert_eq!(data, (1..=8).collect::<Vec<_>>());
    }
}
