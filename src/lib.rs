//! `tlp`: the facade crate for the TLP (Two Level Perceptron) reproduction.
//!
//! Re-exports the workspace crates under short names. See the README for a
//! tour and `examples/` for runnable entry points.

pub use tlp_baselines as baselines;
pub use tlp_core as core;
pub use tlp_events as events;
pub use tlp_harness as harness;
pub use tlp_obs as obs;
pub use tlp_perceptron as perceptron;
pub use tlp_plugin as plugin;
pub use tlp_prefetch as prefetch;
pub use tlp_rl as rl;
pub use tlp_serve as serve;
pub use tlp_sim as sim;
pub use tlp_timeline as timeline;
pub use tlp_trace as trace;
pub use tlp_tracestore as tracestore;
