//! Workload census: audit the synthetic catalog against the behaviours the
//! paper relies on (Table IV / §V-B) — instruction mix, memory footprint,
//! dependent-load fraction (indirect accesses) and stride regularity
//! (prefetchability), per workload.
//!
//! ```text
//! cargo run --release --example workload_census [records_per_workload]
//! ```

use tlp::trace::catalog::{self, Scale};
use tlp::trace::stats::profile;
use tlp::trace::{capture, emit::Suite};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budget: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(50_000);
    let scale = Scale::Quick;

    println!(
        "{:<18} {:>6} {:>7} {:>7} {:>9} {:>8} {:>7} {:>7}",
        "workload", "ld/ki", "st/ki", "br/ki", "footprint", "pages", "dep-ld", "stride"
    );
    let mut by_suite: std::collections::HashMap<Suite, Vec<(f64, f64)>> = Default::default();
    for w in catalog::single_core_set(scale) {
        let recs = capture(w.as_ref(), budget);
        let p = profile(&recs);
        println!(
            "{:<18} {:>6.0} {:>7.0} {:>7.0} {:>8.1}K {:>8} {:>6.1}% {:>6.1}%",
            w.name(),
            p.loads_pki(),
            p.stores as f64 * 1000.0 / p.instructions as f64,
            p.branches as f64 * 1000.0 / p.instructions as f64,
            p.footprint_bytes() as f64 / 1024.0,
            p.footprint_pages,
            p.dependent_load_fraction() * 100.0,
            p.stride_regularity * 100.0,
        );
        by_suite
            .entry(w.suite())
            .or_default()
            .push((p.stride_regularity, p.dependent_load_fraction()));
    }
    println!();
    for (suite, vals) in &by_suite {
        let stride: f64 = vals.iter().map(|v| v.0).sum::<f64>() / vals.len() as f64;
        let dep: f64 = vals.iter().map(|v| v.1).sum::<f64>() / vals.len() as f64;
        println!(
            "{suite}: mean stride regularity {:.1}%, mean dependent loads {:.1}% over {} workloads",
            stride * 100.0,
            dep * 100.0,
            vals.len()
        );
    }
    println!(
        "\nReading the columns: graph traversals live off *dependent* loads\n\
         (index load feeds data load) — their DRAM-bound prefetches are what\n\
         SLP filters. Stride regularity separates the stream/stencil SPEC\n\
         kernels (prefetchable) from pointer-chasing ones within each suite."
    );
}
