//! Standalone RL-agent training: run one persistent Athena-style agent
//! for several epochs of a single workload and watch the policy sharpen
//! (the extension-E7 learning curve, per-workload).
//!
//! ```text
//! cargo run --release --example rl_agent [workload] [epochs]
//! ```

use tlp::harness::{Harness, L1Pf, RunConfig, Scheme};
use tlp::rl::{shared_agent, storage, RlConfig};
use tlp::sim::engine::System;
use tlp::sim::types::Level;
use tlp::sim::SystemConfig;
use tlp::trace::catalog;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map_or("bfs.kron", String::as_str);
    let epochs: usize = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .filter(|&e| e > 0)
        .unwrap_or(5);
    let rc = RunConfig::quick();
    let h = Harness::new(rc);
    let Some(w) = catalog::workload(name, rc.scale) else {
        eprintln!("unknown workload {name}");
        std::process::exit(1);
    };

    let cfg = RlConfig::default_config();
    let report = storage::storage_report(&cfg);
    println!(
        "agent: {} states/head, {:.2} KB total ({:.2} KB Q-tables), budget {} KB\n",
        1usize << cfg.state_bits,
        report.total_kb(),
        report.q_tables_kb(),
        storage::BUDGET_KB,
    );

    // One agent persists across epochs; each epoch restarts the
    // architectural state (caches, DRAM) around it.
    let agent = shared_agent(cfg);
    println!(
        "{:>8} {:>10} {:>12} {:>8} {:>8} {:>10}",
        "epoch", "issue acc%", "issued/kld", "IPC", "eps/256", "drop%"
    );
    for epoch in 1..=epochs {
        // The same wiring Scheme::AthenaRl uses, around the persistent agent.
        let setup = Scheme::athena_rl_setup(h.trace_for(&w), L1Pf::Ipcp, agent.clone());
        let mut sys = System::new(SystemConfig::cascade_lake(1), vec![setup]);
        let r = sys.run(rc.warmup, rc.instructions);
        let oc = &r.cores[0].offchip;
        let issued: u64 = oc.issued_outcome.iter().sum();
        let correct = oc.issued_outcome[Level::Dram.index()];
        let a = agent.lock();
        let s = a.stats();
        let pf_total: u64 = s.pf_decisions.iter().sum();
        println!(
            "{epoch:>8} {:>10.2} {:>12.2} {:>8.3} {:>8} {:>10.2}",
            if issued == 0 {
                0.0
            } else {
                correct as f64 * 100.0 / issued as f64
            },
            issued as f64 * 1000.0 / r.cores[0].core.loads.max(1) as f64,
            r.ipc(),
            a.epsilon(),
            if pf_total == 0 {
                0.0
            } else {
                s.pf_decisions[1] as f64 * 100.0 / pf_total as f64
            },
        );
    }

    let a = agent.lock();
    let s = a.stats();
    let p = a.pressure();
    println!(
        "\ntotals: {} load decisions ({} updates), {} prefetch decisions ({} updates), {} explorations",
        s.load_decisions.iter().sum::<u64>(),
        s.load_updates,
        s.pf_decisions.iter().sum::<u64>(),
        s.pf_updates,
        s.explorations,
    );
    println!(
        "pressure: DRAM-load rate {}/256, prefetch-DRAM rate {}/256",
        p.dram_load_rate, p.pf_dram_rate,
    );
    println!(
        "cumulative reward: load {:+.1}, prefetch {:+.1} (1.0 = one full reward unit)",
        s.load_reward as f64 / f64::from(tlp::rl::REWARD_ONE),
        s.pf_reward as f64 / f64::from(tlp::rl::REWARD_ONE),
    );
}
