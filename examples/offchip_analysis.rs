//! Off-chip predictor anatomy: run the three off-chip prediction
//! strategies (Hermes, LP, TLP's FLP) on one workload and print a full
//! confusion breakdown — where each issued speculative DRAM request's
//! block actually lived, plus precision/coverage and the DRAM bill.
//!
//! ```text
//! cargo run --release --example offchip_analysis [workload]
//! ```

use tlp::harness::{Harness, L1Pf, RunConfig, Scheme};
use tlp::sim::types::Level;
use tlp::trace::catalog;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map_or("sssp.kron", String::as_str);
    let rc = RunConfig::quick();
    let h = Harness::new(rc);
    let Some(w) = catalog::workload(name, rc.scale) else {
        eprintln!("unknown workload {name}");
        std::process::exit(1);
    };

    let base = h.run_single(&w, Scheme::Baseline, L1Pf::Ipcp);
    println!(
        "workload {name}: baseline IPC {:.3}, {} DRAM transactions\n",
        base.ipc(),
        base.dram_transactions()
    );
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10} {:>9} {:>8}",
        "scheme", "→L1D", "→L2C", "→LLC", "→DRAM", "precision", "coverage", "ΔDRAM%", "speedup%"
    );
    for scheme in [Scheme::Hermes, Scheme::Lp, Scheme::Tlp] {
        let r = h.run_single(&w, scheme, L1Pf::Ipcp);
        let oc = &r.cores[0].offchip;
        let issued: u64 = oc.issued_outcome.iter().sum();
        let pct = |l: Level| {
            if issued == 0 {
                0.0
            } else {
                oc.issued_outcome[l.index()] as f64 * 100.0 / issued as f64
            }
        };
        let dram_hits = oc.issued_outcome[Level::Dram.index()];
        let coverage = {
            let truly = dram_hits + oc.missed_offchip;
            if truly == 0 {
                0.0
            } else {
                dram_hits as f64 * 100.0 / truly as f64
            }
        };
        println!(
            "{:<10} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>9.1}% {:>9.1}% {:>8.1}% {:>7.1}%",
            scheme.name(),
            pct(Level::L1d),
            pct(Level::L2),
            pct(Level::Llc),
            pct(Level::Dram),
            oc.issue_accuracy() * 100.0,
            coverage,
            (r.dram_transactions() as f64 / base.dram_transactions() as f64 - 1.0) * 100.0,
            (r.ipc() / base.ipc() - 1.0) * 100.0,
        );
    }
    println!(
        "\nEvery issued prediction whose block was in L1D/L2C/LLC is a wasted\n\
         DRAM transaction (paper Figure 4); TLP's selective delay converts the\n\
         L1D-resident slice into on-chip lookups."
    );
}
