//! Bandwidth-sensitivity mini-study (the paper's Figure 16): sweep the
//! per-core DRAM bandwidth on one 4-core mix and watch the schemes reorder
//! as the system moves across the saturation knee.
//!
//! ```text
//! cargo run --release --example bandwidth_sweep
//! ```

use tlp::harness::mix::generate_mixes;
use tlp::harness::{Harness, L1Pf, RunConfig, Scheme};

fn main() {
    let rc = RunConfig::quick();
    let h = Harness::new(rc);
    let mixes = generate_mixes(&h.active_workloads(), 2);
    let mix = mixes
        .iter()
        .find(|m| !m.homogeneous)
        .expect("heterogeneous mix exists");
    println!(
        "mix {}: {}\n",
        mix.name,
        mix.workloads
            .iter()
            .map(|w| w.name().to_owned())
            .collect::<Vec<_>>()
            .join(" + ")
    );
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "GB/s/core", "Baseline IPC", "Hermes IPC", "TLP IPC"
    );
    for bw in [1.6, 3.2, 6.4, 12.8, 25.6] {
        let sum_ipc = |scheme: Scheme| -> f64 {
            let r = h.run_mix(&mix.workloads, scheme, L1Pf::Ipcp, Some(bw));
            r.cores.iter().map(|c| c.core.ipc()).sum()
        };
        println!(
            "{bw:>10} {:>14.3} {:>14.3} {:>14.3}",
            sum_ipc(Scheme::Baseline),
            sum_ipc(Scheme::Hermes),
            sum_ipc(Scheme::Tlp),
        );
    }
}
