//! Writes a synthetic ChampSim trace file (the raw 64-byte `input_instr`
//! layout), for exercising `tlp_repro --import-trace` without shipping
//! binary fixtures.
//!
//! ```text
//! cargo run --example gen_champsim -- out.champsim [instructions] [seed]
//! ```

use tlp::tracestore::champsim::{synthetic_champsim, write_champsim};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = args.first().map_or("out.champsim", String::as_str);
    let n: usize = args
        .get(1)
        .map_or(Ok(65_536), |v| v.parse())
        .expect("instructions must be a number");
    let seed: u64 = args
        .get(2)
        .map_or(Ok(0xC0FFEE), |v| v.parse())
        .expect("seed must be a number");
    let instrs = synthetic_champsim(n, seed);
    write_champsim(path, &instrs).expect("cannot write trace");
    println!(
        "# wrote {path}: {} ChampSim instructions ({} bytes)",
        instrs.len(),
        instrs.len() * 64
    );
}
