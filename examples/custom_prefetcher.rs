//! Extending the simulator through the composition API: register a
//! custom L1D prefetcher with the plugin registry, compose it into a
//! scheme with a [`SchemeSpec`], and race it against IPCP through a
//! [`Session`] — no harness code is edited anywhere.
//!
//! ```text
//! cargo run --release --example custom_prefetcher
//! ```

use std::sync::Arc;

use tlp::harness::{RunConfig, Session};
use tlp::plugin::{ComponentRef, SchemeSpec};
use tlp::sim::hooks::{DemandAccess, L1Prefetcher, PrefetchCandidate};
use tlp::sim::types::LINE_SIZE;

/// A toy "sandwich" prefetcher: on every miss, fetch both neighbors of the
/// missing line. Implementing [`L1Prefetcher`] is all a component needs to
/// run on the full system.
#[derive(Debug, Default)]
struct Sandwich;

impl L1Prefetcher for Sandwich {
    fn on_access(&mut self, access: &DemandAccess, out: &mut Vec<PrefetchCandidate>) {
        if access.hit {
            return;
        }
        let line = access.vaddr & !(LINE_SIZE - 1);
        out.push(PrefetchCandidate {
            vaddr: line + LINE_SIZE,
            fill_l1: true,
        });
        if line >= LINE_SIZE {
            out.push(PrefetchCandidate {
                vaddr: line - LINE_SIZE,
                fill_l1: false,
            });
        }
    }

    fn name(&self) -> &'static str {
        "sandwich"
    }
}

fn main() {
    // 1. A session: a private clone of the built-in registry plus the
    //    shared result cache and worker pool.
    let mut session = Session::new(RunConfig::quick());

    // 2. Register the custom component. It lands in the collision-checked
    //    `custom:` namespace, so it can never alias a built-in cache key.
    let sandwich = session
        .registry_mut()
        .register_custom_l1_prefetcher(
            "sandwich",
            Arc::new(|params, _ctx| {
                params.allow_keys("sandwich", &[])?;
                Ok(Box::new(Sandwich))
            }),
        )
        .expect("fresh name");

    // 3. Compose schemes declaratively. Both pin the full TLP filter
    //    stack (FLP off-chip predictor + SLP prefetch filter + standard
    //    SPP at L2); they differ only in the L1D prefetcher seam.
    let tlp_stack = |name: &str| {
        SchemeSpec::new(name)
            .offchip("flp")
            .l1_filter("slp")
            .l2_prefetcher(ComponentRef::new("spp").param("profile", "standard"))
    };
    let with_sandwich = tlp_stack("TLP+sandwich").l1_prefetcher(sandwich.as_str());
    let with_ipcp = tlp_stack("TLP+ipcp").l1_prefetcher("ipcp");

    // Registering the composition by name also makes it addressable the
    // way `tlp_repro --scheme <name>` addresses schemes.
    session
        .registry_mut()
        .register_custom_scheme(with_sandwich.clone())
        .expect("fresh scheme name");

    // 4. Run both through the session (planned, deduplicated, cached).
    println!(
        "{:<14} {:>10} {:>14} {:>10} {:>14}",
        "workload", "ipcp IPC", "sandwich IPC", "ipcp DRAM", "sandwich DRAM"
    );
    for workload in ["spec.milc_06", "bfs.web", "pr.kron"] {
        let a = session
            .run_single(workload, &with_ipcp, "none")
            .expect("ipcp run");
        let b = session
            .run_single(workload, &with_sandwich, "none")
            .expect("sandwich run");
        println!(
            "{workload:<14} {:>10.3} {:>14.3} {:>10} {:>14}",
            a.ipc(),
            b.ipc(),
            a.dram_transactions(),
            b.dram_transactions()
        );
    }
    eprintln!("# run-engine: {}", session.engine_stats().summary_line());
}
