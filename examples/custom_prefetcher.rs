//! Extending the simulator: plug a custom L1D prefetcher into the hook
//! traits and race it against IPCP under the TLP filter.
//!
//! ```text
//! cargo run --release --example custom_prefetcher
//! ```

use tlp::core::variants::TlpVariant;
use tlp::core::TlpConfig;
use tlp::prefetch::Spp;
use tlp::sim::engine::{CoreSetup, System};
use tlp::sim::hooks::{DemandAccess, L1Prefetcher, PrefetchCandidate};
use tlp::sim::types::LINE_SIZE;
use tlp::sim::SystemConfig;
use tlp::trace::catalog::{self, Scale};
use tlp::trace::VecTrace;

/// A toy "sandwich" prefetcher: on every miss, fetch both neighbors of the
/// missing line. Implementing [`L1Prefetcher`] is all it takes to run on
/// the full system.
#[derive(Debug, Default)]
struct Sandwich;

impl L1Prefetcher for Sandwich {
    fn on_access(&mut self, access: &DemandAccess, out: &mut Vec<PrefetchCandidate>) {
        if access.hit {
            return;
        }
        let line = access.vaddr & !(LINE_SIZE - 1);
        out.push(PrefetchCandidate {
            vaddr: line + LINE_SIZE,
            fill_l1: true,
        });
        if line >= LINE_SIZE {
            out.push(PrefetchCandidate {
                vaddr: line - LINE_SIZE,
                fill_l1: false,
            });
        }
    }

    fn name(&self) -> &'static str {
        "sandwich"
    }
}

fn run(workload: &str, custom: bool) -> (f64, u64) {
    let w = catalog::workload(workload, Scale::Quick).expect("known workload");
    let trace = VecTrace::from_workload(w.as_ref(), 120_000);
    let mut setup = CoreSetup::new(Box::new(trace))
        .with_l2_prefetcher(Box::new(Spp::new(tlp::prefetch::SppConfig::standard())));
    setup = if custom {
        setup.with_l1_prefetcher(Box::new(Sandwich))
    } else {
        setup.with_l1_prefetcher(Box::new(tlp::prefetch::Ipcp::new()))
    };
    // Put the TLP filter on top in both cases.
    let (flp, slp) = TlpVariant::Full.build(&TlpConfig::paper());
    setup = setup
        .with_offchip(Box::new(flp.expect("full TLP has FLP")))
        .with_l1_filter(Box::new(slp.expect("full TLP has SLP")));
    let mut sys = System::new(SystemConfig::cascade_lake(1), vec![setup]);
    let r = sys.run(20_000, 100_000);
    (r.ipc(), r.dram_transactions())
}

fn main() {
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "workload", "ipcp IPC", "sandwich IPC", "ipcp DRAM", "sandwich DRAM"
    );
    for workload in ["spec.milc_06", "bfs.web", "pr.kron"] {
        let (ipc_a, dram_a) = run(workload, false);
        let (ipc_b, dram_b) = run(workload, true);
        println!("{workload:<14} {ipc_a:>12.3} {ipc_b:>12.3} {dram_a:>12} {dram_b:>12}");
    }
}
