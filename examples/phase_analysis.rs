//! SimPoint phase analysis: the paper's traces are 1B-instruction
//! SimPoints (§V-B). This example runs the same methodology end-to-end on
//! a workspace workload — capture a long trace, cluster its basic-block
//! vectors, pick representatives — and then *validates* it: the
//! weighted IPC over the SimPoint slices should approximate the IPC of
//! simulating the whole trace at a fraction of the cost.
//!
//! ```text
//! cargo run --release --example phase_analysis [workload]
//! ```

use tlp::sim::engine::{CoreSetup, System};
use tlp::sim::SystemConfig;
use tlp::trace::catalog::{self, Scale};
use tlp::trace::simpoint::{simpoints_of, BbvConfig};
use tlp::trace::{capture, VecTrace};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map_or("pr.kron", String::as_str);
    let Some(w) = catalog::workload(name, Scale::Quick) else {
        eprintln!("unknown workload {name}");
        std::process::exit(1);
    };

    const TOTAL: usize = 400_000;
    let cfg = BbvConfig {
        interval: 20_000,
        dims: 32,
    };
    println!("capturing {TOTAL} instructions of {name}...");
    let records = capture(w.as_ref(), TOTAL);

    let points = simpoints_of(&records, cfg, 4, 42);
    println!(
        "\n{} intervals of {} instructions → {} SimPoints:",
        TOTAL / cfg.interval,
        cfg.interval,
        points.len()
    );
    for p in &points {
        println!(
            "  interval {:>3} (instructions {:>7}..{:>7})  weight {:.3}",
            p.interval,
            p.interval * cfg.interval,
            (p.interval + 1) * cfg.interval,
            p.weight
        );
    }

    let simulate = |recs: Vec<tlp::trace::TraceRecord>, budget: u64| -> f64 {
        let mut sys = System::new(
            SystemConfig::cascade_lake(1),
            vec![CoreSetup::new(Box::new(VecTrace::looping(name, recs)))],
        );
        sys.run(budget / 5, budget).ipc()
    };

    println!("\nsimulating the full trace...");
    let full_ipc = simulate(records.clone(), TOTAL as u64);

    println!("simulating each SimPoint slice...");
    let mut weighted_ipc = 0.0;
    let mut simulated = 0u64;
    for p in &points {
        let start = p.interval * cfg.interval;
        let slice = records[start..start + cfg.interval].to_vec();
        let ipc = simulate(slice, cfg.interval as u64);
        weighted_ipc += p.weight * ipc;
        simulated += cfg.interval as u64;
        println!(
            "  interval {:>3}: IPC {ipc:.3} (weight {:.3})",
            p.interval, p.weight
        );
    }

    let err = (weighted_ipc / full_ipc - 1.0) * 100.0;
    println!(
        "\nfull-trace IPC      {full_ipc:.3}  ({TOTAL} instructions)\n\
         SimPoint-weighted   {weighted_ipc:.3}  ({simulated} instructions, {:.0}× cheaper)\n\
         error               {err:+.1}%",
        TOTAL as f64 / simulated as f64
    );
}
