//! Quickstart: simulate one workload on the paper's baseline system and on
//! TLP, and print the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart [workload] [instructions]
//! ```

use tlp::harness::{Harness, L1Pf, RunConfig, Scheme};
use tlp::sim::types::Level;
use tlp::trace::catalog;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map_or("bfs.kron", String::as_str);
    let mut rc = RunConfig::quick();
    if let Some(n) = args.get(1).and_then(|s| s.parse().ok()) {
        rc.instructions = n;
        rc.warmup = n / 5;
    }

    let h = Harness::new(rc);
    let Some(w) = catalog::workload(name, rc.scale) else {
        eprintln!("unknown workload {name}; try one of:");
        for n in catalog::all_names(rc.scale) {
            eprintln!("  {n}");
        }
        std::process::exit(1);
    };

    println!(
        "workload {name}: {} instructions after {} warmup\n",
        rc.instructions, rc.warmup
    );
    for scheme in [Scheme::Baseline, Scheme::Hermes, Scheme::Tlp] {
        let r = h.run_single(&w, scheme, L1Pf::Ipcp);
        let c = &r.cores[0];
        let instr = c.core.instructions;
        println!("== {}", scheme.name());
        println!(
            "   IPC {:.3}  cycles {}  DRAM transactions {}",
            c.core.ipc(),
            c.core.cycles,
            r.dram_transactions()
        );
        println!(
            "   MPKI: L1D {:.1}  L2C {:.1}  LLC {:.1}",
            c.l1d.mpki(instr),
            c.l2.mpki(instr),
            r.llc.mpki(instr)
        );
        println!(
            "   L1 prefetcher: {} candidates, {} filtered, {} issued, accuracy {:.1}%",
            c.l1_prefetch.candidates,
            c.l1_prefetch.filtered,
            c.l1_prefetch.issued,
            c.l1_prefetch.accuracy() * 100.0
        );
        println!(
            "   L1 pf filled by level: L2 {} LLC {} DRAM {}",
            c.l1_prefetch.filled_by_level[Level::L2.index()],
            c.l1_prefetch.filled_by_level[Level::Llc.index()],
            c.l1_prefetch.filled_by_level[Level::Dram.index()],
        );
        println!(
            "   L2 prefetcher (SPP): {} candidates, {} issued, accuracy {:.1}%",
            c.l2_prefetch.candidates,
            c.l2_prefetch.issued,
            c.l2_prefetch.accuracy() * 100.0
        );
        println!(
            "   off-chip predictor: {} issued-now, {} delayed-tags, {} delayed-issued, issue accuracy {:.1}%",
            c.offchip.issued_now,
            c.offchip.tagged_delayed,
            c.offchip.delayed_issued,
            c.offchip.issue_accuracy() * 100.0
        );
        println!(
            "   DRAM: {} reads, {} spec reads, {} writes, row-hit {:.0}%\n",
            r.dram.reads,
            r.dram.spec_reads,
            r.dram.writes,
            100.0 * r.dram.row_hits as f64 / (r.dram.row_hits + r.dram.row_conflicts).max(1) as f64
        );
    }
}
