//! Graph-analytics tour: run all six GAP kernels over one input graph and
//! compare the baseline system with TLP — the paper's motivating workload
//! class (§III).
//!
//! ```text
//! cargo run --release --example graph_analytics [graph]
//! ```

use std::sync::Arc;

use tlp::harness::{Harness, L1Pf, RunConfig, Scheme};
use tlp::trace::emit::Workload;
use tlp::trace::gap::{GapWorkload, Graph, GraphKind, GraphScale, Kernel};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kind = args
        .first()
        .and_then(|s| GraphKind::from_name(s))
        .unwrap_or(GraphKind::Kron);
    let rc = RunConfig::quick();
    let h = Harness::new(rc);

    println!("building {} at quick scale...", kind.name());
    let graph = Arc::new(Graph::build(kind, GraphScale::Quick, 7));
    println!(
        "graph: {} vertices, {} directed edges\n",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "kernel", "base IPC", "TLP IPC", "base DRAM", "TLP DRAM", "ΔDRAM %"
    );
    for kernel in Kernel::ALL {
        let w: Arc<dyn Workload> =
            Arc::new(GapWorkload::with_graph(kernel, kind, Arc::clone(&graph)));
        let base = h.run_single(&w, Scheme::Baseline, L1Pf::Ipcp);
        let tlp = h.run_single(&w, Scheme::Tlp, L1Pf::Ipcp);
        let delta =
            (tlp.dram_transactions() as f64 / base.dram_transactions().max(1) as f64 - 1.0) * 100.0;
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>12} {:>12} {:>+10.1}",
            w.name(),
            base.ipc(),
            tlp.ipc(),
            base.dram_transactions(),
            tlp.dram_transactions(),
            delta
        );
    }
}
