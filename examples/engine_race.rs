//! Races the cycle engine against the event engine on memory-bound
//! workloads and *appends* a timestamped run to `BENCH_engine.json`
//! (mode, workload, wall-clock, simulated cycles/second), so the file
//! is a perf trajectory across commits rather than a single point.
//! `scripts/bench-engine.sh` is the packaged entry point (it stamps the
//! run via `TLP_BENCH_STAMP`); legacy single-run files are wrapped into
//! the trajectory as a `pre-trajectory` entry rather than overwritten.
//!
//! Both engines simulate the identical system; the example asserts their
//! reports are field-identical before recording any timing, so the JSON
//! can never advertise a speedup bought with accuracy.
//!
//! `--sanity` instead runs only the busiest workload (`bfs.urand`) and
//! exits nonzero when the event engine falls below `TLP_BENCH_MIN_RATIO`
//! (default 0.95) of cycle-mode speed — CI's guard against the event
//! scheduling pass regressing on compute-bound phases. No JSON is
//! written in this mode.
//!
//! `--timing-only` runs `bfs.urand` under the cycle engine once and
//! prints the wall-clock seconds (and nothing else) to stdout.
//! `scripts/bench-engine.sh` invokes it compiled with `--features obs`
//! and feeds the result back through `TLP_BENCH_OBS_WALL`, so the
//! recording run can embed the obs-feature overhead ratio in the same
//! trajectory entry — "observation is free" gets tracked, not asserted.

use std::fmt::Write as _;
use std::time::Instant;

use tlp::harness::{L1Pf, Scheme};
use tlp::sim::engine::System;
use tlp::sim::{EngineMode, SimReport, SystemConfig};
use tlp::trace::catalog::{self, Scale};
use tlp::trace::simpoint::{simpoints_of, BbvConfig};
use tlp::trace::{capture, TraceSource, VecTrace};
use tlp::tracestore::{
    capture_desc, trace_info, StreamTrace, TraceKey, TraceStore, CAPTURE_SIMPOINT_K,
    CAPTURE_SIMPOINT_SEED,
};

const WARMUP: u64 = 20_000;
const INSTRUCTIONS: u64 = 200_000;

struct Sample {
    workload: &'static str,
    mode: EngineMode,
    wall_s: f64,
    simulated_cycles: u64,
    ticks_executed: u64,
    report: SimReport,
}

impl Sample {
    fn cycles_per_sec(&self) -> f64 {
        self.simulated_cycles as f64 / self.wall_s.max(1e-9)
    }
}

struct TraceBench {
    workload: &'static str,
    records: usize,
    cold_capture_s: f64,
    warm_stream_s: f64,
    file_bytes: u64,
    compression_ratio: f64,
}

/// Times the trace tier on the bench workload: a cold capture (generate
/// the records, compute capture-time SimPoints, compress, persist)
/// against a warm store (open the file — every block checksum- and
/// decode-verified — then stream every record back), plus the on-disk
/// v1-over-v2 compression ratio. Appended to the trajectory so capture
/// cost, replay cost, and format density are tracked across commits
/// alongside the engine timings.
fn trace_store_bench() -> TraceBench {
    let wl = "bfs.urand";
    let budget = (WARMUP + INSTRUCTIONS) as usize + 4096;
    let dir = std::env::temp_dir().join(format!("tlp-bench-traces-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = TraceStore::open(&dir).expect("open bench trace dir");
    let key = TraceKey::from_desc(&capture_desc(
        &format!("{:?}|w{WARMUP}|i{INSTRUCTIONS}", Scale::Quick),
        wl,
        budget,
    ));
    let w = catalog::workload(wl, Scale::Quick).expect("workload in catalog");
    let t0 = Instant::now();
    let recs = capture(w.as_ref(), budget);
    let cfg = BbvConfig::standard();
    let sps = simpoints_of(&recs, cfg, CAPTURE_SIMPOINT_K, CAPTURE_SIMPOINT_SEED);
    let path = store
        .save(key, wl, true, &recs, &sps, cfg.interval)
        .expect("save bench trace");
    let cold_capture_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let mut stream = StreamTrace::open(&path).expect("open saved trace");
    for _ in 0..recs.len() {
        let _ = stream.next_record();
    }
    let warm_stream_s = t1.elapsed().as_secs_f64();
    let info = trace_info(&path).expect("trace info");
    let _ = std::fs::remove_dir_all(&dir);
    TraceBench {
        workload: wl,
        records: recs.len(),
        cold_capture_s,
        warm_stream_s,
        file_bytes: info.file_bytes,
        compression_ratio: info.compression_ratio(),
    }
}

fn run_one(workload: &'static str, mode: EngineMode) -> Sample {
    let w = catalog::workload(workload, Scale::Quick).expect("workload in catalog");
    let trace = VecTrace::from_workload(w.as_ref(), (WARMUP + INSTRUCTIONS) as usize + 4096);
    // The paper's baseline system (IPCP at L1D, SPP at L2): a realistic
    // amount of MLP, so the idle windows are the ones real runs have.
    let setup = Scheme::Baseline.build_setup(Box::new(trace), L1Pf::Ipcp);
    let mut sys = System::new(SystemConfig::cascade_lake(1), vec![setup]).with_engine_mode(mode);
    let t0 = Instant::now();
    let report = sys.run(WARMUP, INSTRUCTIONS);
    let wall_s = t0.elapsed().as_secs_f64();
    Sample {
        workload,
        mode,
        wall_s,
        simulated_cycles: sys.cycle(),
        ticks_executed: sys.ticks_executed(),
        report,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--sanity`: CI perf gate. Race only bfs.urand — the busiest
    // workload, where event mode historically regressed below cycle
    // mode — and fail (no JSON written) if event/cycle drops under the
    // threshold. 0.95 rather than 1.0 absorbs shared-runner timing
    // noise; a real regression (the pre-fix state was ~0.9x and the
    // scheduling overhead only grows with load) still lands well below.
    if args.iter().any(|a| a == "--sanity") {
        sanity_gate();
        return;
    }
    // `--timing-only`: one cycle-engine run of bfs.urand, wall seconds
    // on stdout. The obs-overhead pass compiles this with
    // `--features obs`; printing only the number keeps the shell's
    // capture trivial.
    if args.iter().any(|a| a == "--timing-only") {
        eprintln!(
            "# timing-only: bfs.urand / cycle engine (obs feature {})",
            if cfg!(feature = "obs") { "on" } else { "off" }
        );
        let s = run_one("bfs.urand", EngineMode::Cycle);
        println!("{:.4}", s.wall_s);
        return;
    }
    let out_path = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".into());
    // One memory-bound workload per suite: mcf's pointer chasing is the
    // paper's canonical high-MPKI SPEC case; bfs on the uniform-random
    // graph is the most off-chip-bound GAP workload at this scale
    // (irregular frontier expansion defeats both prefetchers).
    let workloads: [&'static str; 2] = ["spec.mcf_06", "bfs.urand"];
    let mut samples: Vec<Sample> = Vec::new();
    for wl in workloads {
        for mode in EngineMode::ALL {
            eprintln!("# racing {wl} under the {mode} engine...");
            samples.push(run_one(wl, mode));
        }
    }
    // Equivalence gate: timings only count if the reports agree.
    for pair in samples.chunks(2) {
        assert_eq!(
            pair[0].report, pair[1].report,
            "{}: engines disagree — timing void",
            pair[0].workload
        );
    }

    // When the packaged script ran the extra `--features obs` pass, its
    // wall time arrives via the environment; the baseline is this run's
    // own bfs.urand/cycle sample, so both numbers are single-sample
    // measurements of the identical configuration.
    let obs_overhead = std::env::var("TLP_BENCH_OBS_WALL")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .and_then(|obs_wall| {
            samples
                .iter()
                .find(|s| s.workload == "bfs.urand" && s.mode == EngineMode::Cycle)
                .map(|base| (base.wall_s, obs_wall))
        });

    eprintln!("# timing the trace store (cold capture vs warm streamed replay)...");
    let trace = trace_store_bench();
    println!(
        "trace store ({}): cold capture {:.3}s, warm streamed replay {:.3}s, {} records in {} bytes ({:.1}x vs v1)",
        trace.workload,
        trace.cold_capture_s,
        trace.warm_stream_s,
        trace.records,
        trace.file_bytes,
        trace.compression_ratio,
    );

    let run = render_run(&stamp(), &samples, obs_overhead, &trace);
    for pair in samples.chunks(2) {
        let speedup = pair[0].wall_s / pair[1].wall_s.max(1e-9);
        let skipped =
            100.0 * (1.0 - pair[1].ticks_executed as f64 / pair[1].simulated_cycles.max(1) as f64);
        println!(
            "{}: cycle {:.3}s, event {:.3}s → {:.2}x (event executed {} of {} cycles, {:.1}% skipped)",
            pair[0].workload,
            pair[0].wall_s,
            pair[1].wall_s,
            speedup,
            pair[1].ticks_executed,
            pair[1].simulated_cycles,
            skipped,
        );
    }
    let json = match std::fs::read_to_string(&out_path) {
        Ok(existing) => append_run(&existing, &run),
        Err(_) => fresh_trajectory(&run),
    };
    std::fs::write(&out_path, json).expect("write BENCH_engine.json");
    println!("appended run to {out_path}");
}

/// The CI perf gate behind `--sanity`. Best-of-two per mode: on a busy
/// shared runner a single wall-clock sample is too noisy to gate on,
/// and the minimum is the sample least polluted by scheduler preemption.
fn sanity_gate() {
    let min_ratio: f64 = std::env::var("TLP_BENCH_MIN_RATIO")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.95);
    let mut cycle_best = f64::INFINITY;
    let mut event_best = f64::INFINITY;
    for round in 0..2 {
        eprintln!("# sanity round {}: racing bfs.urand...", round + 1);
        let c = run_one("bfs.urand", EngineMode::Cycle);
        let e = run_one("bfs.urand", EngineMode::Event);
        assert_eq!(
            c.report, e.report,
            "bfs.urand: engines disagree — timing void"
        );
        cycle_best = cycle_best.min(c.wall_s);
        event_best = event_best.min(e.wall_s);
    }
    let ratio = cycle_best / event_best.max(1e-9);
    println!(
        "bfs.urand sanity: cycle {cycle_best:.3}s, event {event_best:.3}s → {ratio:.2}x (floor {min_ratio:.2}x)"
    );
    assert!(
        ratio >= min_ratio,
        "event engine regressed on the busy workload: {ratio:.2}x < {min_ratio:.2}x floor"
    );
}

/// The run's timestamp: `TLP_BENCH_STAMP` when the caller provides one
/// (`scripts/bench-engine.sh` sets a UTC `date` string), otherwise Unix
/// seconds — the example stays dependency-free either way.
fn stamp() -> String {
    std::env::var("TLP_BENCH_STAMP").unwrap_or_else(|_| {
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        format!("unix:{secs}")
    })
}

/// One trajectory entry: stamp, config, per-(workload, mode) results,
/// the derived speedups, the trace-store timings, and — when the script
/// supplied the extra `--features obs` pass — the obs-feature overhead
/// ratio. Indented to sit inside `"runs": [...]`.
fn render_run(
    stamp: &str,
    samples: &[Sample],
    obs_overhead: Option<(f64, f64)>,
    trace: &TraceBench,
) -> String {
    let mut run = String::from("    {\n");
    let _ = writeln!(run, "      \"stamp\": \"{stamp}\",");
    let _ = writeln!(
        run,
        "      \"config\": {{\"scale\": \"quick\", \"warmup\": {WARMUP}, \"instructions\": {INSTRUCTIONS}, \"scheme\": \"baseline\", \"l1_prefetcher\": \"ipcp\"}},"
    );
    run.push_str("      \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = writeln!(
            run,
            "        {{\"workload\": \"{}\", \"mode\": \"{}\", \"wall_s\": {:.4}, \"simulated_cycles\": {}, \"ticks_executed\": {}, \"sim_cycles_per_sec\": {:.0}}}{}",
            s.workload,
            s.mode,
            s.wall_s,
            s.simulated_cycles,
            s.ticks_executed,
            s.cycles_per_sec(),
            if i + 1 < samples.len() { "," } else { "" },
        );
    }
    run.push_str("      ],\n      \"speedups\": [\n");
    for (i, pair) in samples.chunks(2).enumerate() {
        let speedup = pair[0].wall_s / pair[1].wall_s.max(1e-9);
        let skipped =
            100.0 * (1.0 - pair[1].ticks_executed as f64 / pair[1].simulated_cycles.max(1) as f64);
        let _ = writeln!(
            run,
            "        {{\"workload\": \"{}\", \"event_over_cycle\": {:.2}, \"idle_cycles_skipped_pct\": {:.1}}}{}",
            pair[0].workload,
            speedup,
            skipped,
            if (i + 1) * 2 < samples.len() { "," } else { "" },
        );
    }
    run.push_str("      ],\n");
    let _ = write!(
        run,
        "      \"trace_store\": {{\"workload\": \"{}\", \"records\": {}, \"cold_capture_s\": {:.4}, \"warm_stream_s\": {:.4}, \"file_bytes\": {}, \"compression_v1_over_v2\": {:.2}}}",
        trace.workload,
        trace.records,
        trace.cold_capture_s,
        trace.warm_stream_s,
        trace.file_bytes,
        trace.compression_ratio,
    );
    if let Some((base_wall, obs_wall)) = obs_overhead {
        let ratio = obs_wall / base_wall.max(1e-9);
        println!(
            "obs overhead (bfs.urand, cycle): base {base_wall:.3}s, obs {obs_wall:.3}s → {ratio:.2}x"
        );
        run.push_str(",\n");
        let _ = writeln!(
            run,
            "      \"obs_overhead\": {{\"workload\": \"bfs.urand\", \"mode\": \"cycle\", \"base_wall_s\": {base_wall:.4}, \"obs_wall_s\": {obs_wall:.4}, \"obs_over_base\": {ratio:.3}}}"
        );
        run.push_str("    }");
    } else {
        run.push_str("\n    }");
    }
    run
}

/// A brand-new trajectory file holding one run.
fn fresh_trajectory(run: &str) -> String {
    format!("{{\n  \"benchmark\": \"engine-race\",\n  \"runs\": [\n{run}\n  ]\n}}\n")
}

/// Appends `run` to an existing trajectory. A legacy single-run file
/// (top-level `results`, no `runs` array) is first wrapped into the
/// trajectory as a `pre-trajectory` entry; anything unrecognizable is
/// replaced by a fresh trajectory rather than corrupted further.
fn append_run(existing: &str, run: &str) -> String {
    let text = match wrap_legacy(existing) {
        Some(wrapped) => wrapped,
        None => existing.to_owned(),
    };
    let Some(body) = text.strip_suffix("  ]\n}\n").map(str::trim_end) else {
        return fresh_trajectory(run);
    };
    if !text.contains("\"runs\": [") {
        return fresh_trajectory(run);
    }
    format!("{body},\n{run}\n  ]\n}}\n")
}

/// Re-indents a legacy single-run `BENCH_engine.json` as the first entry
/// of a `runs` trajectory, stamped `pre-trajectory`. Returns `None` when
/// the text is not the legacy shape.
fn wrap_legacy(text: &str) -> Option<String> {
    if text.contains("\"runs\"") || !text.contains("\"results\"") {
        return None;
    }
    let mut run = String::from("    {\n      \"stamp\": \"pre-trajectory\",\n");
    for line in text.lines() {
        let t = line.trim();
        if t == "{" || t == "}" || t.starts_with("\"benchmark\"") {
            continue;
        }
        run.push_str("    ");
        run.push_str(line);
        run.push('\n');
    }
    // The legacy object's last inner line ends with no comma; the wrapped
    // run closes right after it.
    let body = run.trim_end().trim_end_matches(',').to_owned();
    Some(format!(
        "{{\n  \"benchmark\": \"engine-race\",\n  \"runs\": [\n{body}\n    }}\n  ]\n}}\n"
    ))
}
