//! Threshold tuning: sweep TLP's three thresholds on a workload of your
//! choice and report the operating curve — how speedup and DRAM traffic
//! move as each knob turns (the extension-E3 sweep, per-workload).
//!
//! ```text
//! cargo run --release --example threshold_tuning [workload]
//! ```

use tlp::harness::{Harness, L1Pf, RunConfig, Scheme, TlpParams};
use tlp::trace::catalog;

fn sweep(
    h: &Harness,
    w: &std::sync::Arc<dyn tlp::trace::emit::Workload>,
    knob: &str,
    points: &[i32],
    make: impl Fn(i32) -> TlpParams,
    base_ipc: f64,
    base_txn: f64,
) {
    println!("-- {knob} sweep");
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>12}",
        knob, "speedup%", "ΔDRAM%", "spec-issued", "pf-filtered"
    );
    for &t in points {
        let r = h.run_single(w, Scheme::TlpCustom(make(t)), L1Pf::Ipcp);
        let c = &r.cores[0];
        println!(
            "{:>8} {:>9.2}% {:>9.2}% {:>12} {:>12}",
            t,
            (r.ipc() / base_ipc - 1.0) * 100.0,
            (r.dram_transactions() as f64 / base_txn - 1.0) * 100.0,
            c.offchip.issued_now + c.offchip.delayed_issued,
            c.l1_prefetch.filtered,
        );
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map_or("bfs.urand", String::as_str);
    let rc = RunConfig::quick();
    let h = Harness::new(rc);
    let Some(w) = catalog::workload(name, rc.scale) else {
        eprintln!("unknown workload {name}");
        std::process::exit(1);
    };

    let base = h.run_single(&w, Scheme::Baseline, L1Pf::Ipcp);
    let (base_ipc, base_txn) = (base.ipc(), base.dram_transactions() as f64);
    println!("workload {name} (paper operating point: τ_high=14 τ_low=2 τ_pref=6)\n");

    sweep(
        &h,
        &w,
        "τ_high",
        &[6, 10, 14, 18, 24],
        |t| TlpParams {
            tau_high: t,
            ..TlpParams::paper()
        },
        base_ipc,
        base_txn,
    );
    sweep(
        &h,
        &w,
        "τ_low",
        &[-2, 0, 2, 6, 10],
        |t| TlpParams {
            tau_low: t,
            ..TlpParams::paper()
        },
        base_ipc,
        base_txn,
    );
    sweep(
        &h,
        &w,
        "τ_pref",
        &[0, 3, 6, 12, 24],
        |t| TlpParams {
            tau_pref: t,
            ..TlpParams::paper()
        },
        base_ipc,
        base_txn,
    );

    println!(
        "Reading the curves: raising τ_high trades latency hiding for DRAM\n\
         savings (more predictions wait for the L1D miss); raising τ_low\n\
         narrows off-chip coverage; raising τ_pref lets more prefetches\n\
         through (τ_pref=24 ≈ no filtering)."
    );
}
