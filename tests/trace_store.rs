//! Workspace-level pins for the trace store: the TLPT v2 compression
//! floor on real catalog workloads, warm-store capture avoidance across
//! harness instances, and SimPoint determinism plus reconstitution
//! accuracy — the trace tier's acceptance criteria, tested through the
//! public `tlp` facade like a downstream user would.

use std::path::PathBuf;

use tlp::harness::{Harness, L1Pf, RunConfig, Scheme};
use tlp::trace::catalog::{single_core_set, Scale};
use tlp::trace::emit::Suite;
use tlp::trace::file::encode_trace;
use tlp::trace::source::capture;
use tlp::tracestore::{encode_trace_v2, trace_info, TraceReader};

fn rc() -> RunConfig {
    let mut rc = RunConfig::test();
    rc.warmup = 1_000;
    rc.instructions = 5_000;
    rc.workloads_per_suite = Some(1);
    rc.mixes_per_suite = 1;
    rc.threads = 2;
    rc
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tlp-tracestore-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The compression floor from the issue: on every GAP workload in the
/// catalog, the delta/varint block encoding must be at least 3x smaller
/// than the flat v1 record array. (Graph workloads are the worst case —
/// irregular neighbour-list addresses delta-compress poorly compared to
/// SPEC's pointer-chasing loops.)
#[test]
fn v2_is_at_least_3x_smaller_than_v1_on_gap_workloads() {
    let budget = 10_096; // one test-scale cell: warmup + instructions + slack
    let gap: Vec<_> = single_core_set(Scale::Tiny)
        .into_iter()
        .filter(|w| matches!(w.suite(), Suite::Gap))
        .collect();
    assert!(!gap.is_empty(), "catalog has GAP workloads");
    for w in gap {
        let recs = capture(w.as_ref(), budget);
        let v1 = encode_trace(w.name(), true, &recs).len();
        let v2 = encode_trace_v2(w.name(), true, &recs, &[], 0).len();
        let ratio = v1 as f64 / v2 as f64;
        assert!(
            ratio >= 3.0,
            "{}: v2 is only {ratio:.2}x smaller than v1 ({v1} -> {v2} bytes)",
            w.name()
        );
    }
}

/// A warm trace dir must make a fresh harness capture-free: the second
/// instance streams every trace from disk and reproduces the first
/// instance's report bit-for-bit.
#[test]
fn warm_trace_dir_serves_a_fresh_harness_without_capturing() {
    let dir = tmp_dir("warm");
    let cold = Harness::new(rc()).with_trace_dir(&dir).expect("trace dir");
    let w = cold.active_workloads()[0].clone();
    let cold_report = cold.run_single(&w, Scheme::Tlp, L1Pf::Ipcp);
    assert!(cold.trace_stats().captures > 0, "cold harness captures");

    let warm = Harness::new(rc()).with_trace_dir(&dir).expect("trace dir");
    let ww = warm.active_workloads()[0].clone();
    assert_eq!(ww.name(), w.name());
    let warm_report = warm.run_single(&ww, Scheme::Tlp, L1Pf::Ipcp);
    let ts = warm.trace_stats();
    assert_eq!(ts.captures, 0, "warm harness must not capture");
    assert!(ts.disk_hits > 0, "warm harness streams from the store");
    assert_eq!(cold_report, warm_report);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Capture is a pure function of the workload and environment: two
/// independent harnesses writing to two independent stores produce
/// byte-identical trace files — same records, same capture-time
/// SimPoints in the footer, same checksums.
#[test]
fn independent_captures_are_byte_identical_including_simpoints() {
    let dirs = [tmp_dir("det-a"), tmp_dir("det-b")];
    let mut files: Vec<(PathBuf, Vec<u8>)> = Vec::new();
    for dir in &dirs {
        let h = Harness::new(rc()).with_trace_dir(dir).expect("trace dir");
        let w = h.active_workloads()[0].clone();
        let _ = h.run_single(&w, Scheme::Baseline, L1Pf::Ipcp);
        let entries = h
            .trace_store()
            .expect("store attached")
            .entries()
            .expect("list");
        assert_eq!(entries.len(), 1, "exactly one capture");
        let bytes = std::fs::read(&entries[0].0).expect("read trace file");
        files.push((entries[0].0.clone(), bytes));
    }
    assert_eq!(
        files[0].0.file_name(),
        files[1].0.file_name(),
        "content address is deterministic"
    );
    assert_eq!(files[0].1, files[1].1, "capture bytes are deterministic");

    // The footer carries usable capture-time SimPoints.
    let info = trace_info(&files[0].0).expect("trace info");
    assert_eq!(info.version, 2);
    assert!(!info.simpoints.is_empty(), "footer has SimPoints");
    let total: f64 = info.simpoints.iter().map(|p| p.weight).sum();
    assert!((total - 1.0).abs() < 1e-9, "SimPoint weights sum to 1");
    // And the streaming reader surfaces the same regions.
    match TraceReader::open(&files[0].0).expect("open") {
        TraceReader::V2(t) => assert_eq!(t.simpoints(), &info.simpoints[..]),
        TraceReader::V1(_) => panic!("captures are written as v2"),
    }
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Weighted reconstitution tracks the full run: on a catalog workload
/// whose trace spans several BBV intervals, the SimPoint estimate's IPC
/// must land within 25% of the full-trace simulation. (The regions cover
/// the trace exactly, so most of the residual error is warmup state.)
#[test]
fn simpoint_estimate_tracks_the_full_run() {
    let mut rc = rc();
    rc.warmup = 2_000;
    rc.instructions = 28_000; // budget spans 3 BBV intervals of 10k
    let h = Harness::new(rc);
    // A graph workload with real phase structure: bc.web clusters into
    // three regions at this budget (SPEC's tiny-scale loops collapse to
    // one cluster, which would make the estimate trivially exact).
    let w = h
        .workloads()
        .iter()
        .find(|w| w.name() == "bc.web")
        .expect("bc.web in the catalog")
        .clone();
    let full = h.run_single(&w, Scheme::Tlp, L1Pf::Ipcp);
    let run = h.run_simpoints(&w, Scheme::Tlp, L1Pf::Ipcp, 3);
    assert!(run.regions.len() > 1, "multi-region estimate");
    assert_eq!(run.region_reports.len(), run.regions.len());
    let rel = (run.estimate.ipc() - full.ipc()).abs() / full.ipc();
    assert!(
        rel <= 0.25,
        "SimPoint IPC estimate off by {:.1}% (full {:.4}, estimate {:.4})",
        rel * 100.0,
        full.ipc(),
        run.estimate.ipc()
    );
}
