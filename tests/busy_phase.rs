//! Busy-phase stress pins for the zero-alloc engine refactor: the
//! scratch-buffer hot loop, the move-based DRAM handoff, and the event
//! engine's scheduling pass must all be invisible in simulated results.
//! Each test races the cycle engine against the event engine (or a
//! second identical run) and requires field-identical `SimReport`s.

use tlp::harness::{L1Pf, Scheme};
use tlp::sim::engine::System;
use tlp::sim::{EngineMode, SimReport, SystemConfig};
use tlp::trace::catalog::{self, Scale};
use tlp::trace::{TraceRecord, VecTrace};

const WARMUP: u64 = 2_000;
const INSTRUCTIONS: u64 = 20_000;

/// One captured trace, replayed identically into every run.
fn capture(name: &str) -> Vec<TraceRecord> {
    let w = catalog::workload(name, Scale::Quick).expect("workload in catalog");
    tlp::trace::source::capture(w.as_ref(), (WARMUP + INSTRUCTIONS) as usize + 4096)
}

fn run_with(records: &[TraceRecord], cfg: SystemConfig, mode: EngineMode) -> SimReport {
    let trace = VecTrace::new("busy", records.to_vec());
    let setup = Scheme::Baseline.build_setup(Box::new(trace), L1Pf::Ipcp);
    let mut sys = System::new(cfg, vec![setup]).with_engine_mode(mode);
    sys.run(WARMUP, INSTRUCTIONS)
}

/// bfs.urand is the busiest workload in the catalog at this scale (the
/// one where event mode historically regressed): with prefetchers and
/// off-chip prediction live, the event engine's scheduling pass must
/// reproduce the cycle engine bit-for-bit through the busy phases.
#[test]
fn bfs_busy_phase_cycle_and_event_reports_identical() {
    let records = capture("bfs.urand");
    let cfg = SystemConfig::cascade_lake(1);
    let cycle = run_with(&records, cfg.clone(), EngineMode::Cycle);
    let event = run_with(&records, cfg, EngineMode::Event);
    assert_eq!(cycle, event, "engines disagree on bfs.urand");
}

/// Two back-to-back runs in one process: the second run starts with a
/// warmed allocator (freelists, scratch capacities from the first run's
/// process state have no way to leak between `System`s, but a stale
/// buffer reused across cycles inside one engine would show up here as
/// a drifted report).
#[test]
fn warm_process_second_run_identical() {
    let records = capture("bfs.urand");
    let cfg = SystemConfig::cascade_lake(1);
    let first = run_with(&records, cfg.clone(), EngineMode::Cycle);
    let second = run_with(&records, cfg, EngineMode::Cycle);
    assert_eq!(first, second, "second in-process run drifted");
}

/// A near-degenerate DRAM read queue forces the retry path (rejected
/// `push_read`, requeued front-of-line) to run constantly. The rejected
/// request is moved back and forth, never rebuilt — any field damage or
/// ordering slip on that path diverges the two engines.
#[test]
fn tiny_read_queue_retry_path_is_mode_invariant() {
    let records = capture("bfs.urand");
    let mut cfg = SystemConfig::cascade_lake(1);
    cfg.dram.read_queue = 4;
    cfg.dram.write_queue = 4;
    let cycle = run_with(&records, cfg.clone(), EngineMode::Cycle);
    let event = run_with(&records, cfg, EngineMode::Event);
    assert!(
        cycle.dram.read_queue_full > 0,
        "queue never filled: the retry path was not exercised"
    );
    assert_eq!(cycle, event, "engines disagree under retry pressure");
}
