//! Integration tests for the extension features: the LP baseline, the
//! parameterized TLP, the LLC victim cache, non-LRU replacement, and
//! trace-file persistence.

use tlp::harness::{Harness, L1Pf, RunConfig, Scheme, TlpParams};
use tlp::sim::engine::{CoreSetup, System};
use tlp::sim::replacement::ReplKind;
use tlp::sim::SystemConfig;
use tlp::trace::catalog::{self, Scale};
use tlp::trace::{capture, FileTrace, TraceSource, VecTrace};

fn harness() -> Harness {
    Harness::new(RunConfig::test())
}

#[test]
fn lp_scheme_runs_and_issues_predictions() {
    let h = harness();
    let w = catalog::workload("bfs.kron", Scale::Tiny).expect("catalog name");
    let base = h.run_single(&w, Scheme::Baseline, L1Pf::Ipcp);
    let lp = h.run_single(&w, Scheme::Lp, L1Pf::Ipcp);
    assert_eq!(
        lp.cores[0].core.instructions,
        base.cores[0].core.instructions
    );
    let oc = &lp.cores[0].offchip;
    assert!(
        oc.issued_now > 0,
        "LP must route some loads to DRAM on a graph workload"
    );
    assert_eq!(oc.tagged_delayed, 0, "LP has no delay mechanism");
}

#[test]
fn lp_is_less_precise_than_flp_on_prefetched_streams() {
    // LP tracks residency only through demand completions, so lines brought
    // in by the prefetchers look off-chip to it — the false-positive
    // weakness the paper's related work calls out.
    let h = harness();
    let w = catalog::workload("pr.kron", Scale::Tiny).expect("catalog name");
    let lp = h.run_single(&w, Scheme::Lp, L1Pf::Ipcp);
    let tlp = h.run_single(&w, Scheme::Tlp, L1Pf::Ipcp);
    let precision = |r: &tlp::sim::SimReport| r.cores[0].offchip.issue_accuracy();
    assert!(
        precision(&lp) <= precision(&tlp) + 0.15,
        "LP precision {:.2} should not beat TLP {:.2} materially",
        precision(&lp),
        precision(&tlp)
    );
}

#[test]
fn custom_params_at_paper_point_match_tlp() {
    let h = harness();
    let w = catalog::workload("cc.road", Scale::Tiny).expect("catalog name");
    let tlp = h.run_single(&w, Scheme::Tlp, L1Pf::Ipcp);
    let custom = h.run_single(&w, Scheme::TlpCustom(TlpParams::paper()), L1Pf::Ipcp);
    assert_eq!(tlp.total_cycles, custom.total_cycles);
    assert_eq!(tlp.dram_transactions(), custom.dram_transactions());
}

#[test]
fn lower_tau_pref_filters_more_prefetches() {
    let h = harness();
    let w = catalog::workload("bfs.kron", Scale::Tiny).expect("catalog name");
    let strict = Scheme::TlpCustom(TlpParams {
        tau_pref: -4,
        ..TlpParams::paper()
    });
    let lax = Scheme::TlpCustom(TlpParams {
        tau_pref: 1_000,
        ..TlpParams::paper()
    });
    let r_strict = h.run_single(&w, strict, L1Pf::Ipcp);
    let r_lax = h.run_single(&w, lax, L1Pf::Ipcp);
    assert!(
        r_strict.cores[0].l1_prefetch.filtered > r_lax.cores[0].l1_prefetch.filtered,
        "τ_pref=-4 must drop more prefetches than τ_pref=1000 ({} vs {})",
        r_strict.cores[0].l1_prefetch.filtered,
        r_lax.cores[0].l1_prefetch.filtered
    );
    assert_eq!(
        r_lax.cores[0].l1_prefetch.filtered, 0,
        "an unreachable threshold must never filter"
    );
}

#[test]
fn raised_tau_high_shifts_issue_now_to_delayed() {
    let h = harness();
    let w = catalog::workload("sssp.urand", Scale::Tiny).expect("catalog name");
    let eager = Scheme::TlpCustom(TlpParams {
        tau_high: 3,
        ..TlpParams::paper()
    });
    let cautious = Scheme::TlpCustom(TlpParams {
        tau_high: 1_000,
        ..TlpParams::paper()
    });
    let r_eager = h.run_single(&w, eager, L1Pf::Ipcp);
    let r_cautious = h.run_single(&w, cautious, L1Pf::Ipcp);
    assert_eq!(
        r_cautious.cores[0].offchip.issued_now, 0,
        "an unreachable τ_high must never issue at the core"
    );
    assert!(
        r_eager.cores[0].offchip.issued_now >= r_cautious.cores[0].offchip.issued_now,
        "lower τ_high must issue at least as many immediate requests"
    );
}

#[test]
fn every_replacement_policy_completes_a_graph_workload() {
    let h = harness();
    let w = catalog::workload("bc.web", Scale::Tiny).expect("catalog name");
    for kind in ReplKind::ALL {
        let mut cfg = SystemConfig::cascade_lake(1);
        cfg.llc_repl = kind;
        let r = h.run_single_custom(&w, Scheme::Baseline, L1Pf::Ipcp, cfg, kind.name());
        assert!(
            r.cores[0].core.instructions >= h.rc.instructions,
            "{} did not complete",
            kind.name()
        );
    }
}

#[test]
fn victim_cache_stats_surface_in_reports() {
    let h = harness();
    let w = catalog::workload("tc.twitter", Scale::Tiny).expect("catalog name");
    let plain = h.run_single(&w, Scheme::Baseline, L1Pf::Ipcp);
    assert_eq!(plain.victim.insertions, 0, "disabled VC must stay silent");
    // A deliberately tiny hierarchy guarantees LLC evictions.
    let mut cfg = SystemConfig::test_tiny(1);
    cfg.victim_cache_entries = 64;
    let vc = h.run_single_custom(&w, Scheme::Baseline, L1Pf::Ipcp, cfg, "tiny+vc64");
    assert!(
        vc.victim.insertions > 0,
        "an evicting LLC must feed the victim cache"
    );
}

#[test]
fn trace_files_replay_identically_to_captures() {
    let w = catalog::workload("spec.mcf_06", Scale::Tiny).expect("catalog name");
    let records = capture(w.as_ref(), 30_000);
    let dir = std::env::temp_dir().join("tlp-ext-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("mcf.tlpt");
    tlp::trace::write_trace(&path, "spec.mcf_06", true, &records).expect("write");

    let run = |trace: Box<dyn TraceSource>| {
        let mut sys = System::new(SystemConfig::test_tiny(1), vec![CoreSetup::new(trace)]);
        let r = sys.run(1_000, 20_000);
        (r.total_cycles, r.dram_transactions())
    };
    let from_vec = run(Box::new(VecTrace::looping("spec.mcf_06", records)));
    let from_file = run(Box::new(FileTrace::open(&path).expect("open")));
    assert_eq!(
        from_vec, from_file,
        "file-backed replay must be cycle-identical"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn dropping_any_single_feature_still_works() {
    let h = harness();
    let w = catalog::workload("spec.omnetpp_17", Scale::Tiny).expect("catalog name");
    for f in 0..5u8 {
        let scheme = Scheme::TlpCustom(TlpParams {
            drop_feature: Some(f),
            ..TlpParams::paper()
        });
        let r = h.run_single(&w, scheme, L1Pf::Ipcp);
        assert!(
            r.cores[0].core.instructions >= h.rc.instructions,
            "feature {f} drop broke the run"
        );
    }
}

#[test]
fn resized_tables_change_storage_but_not_instruction_count() {
    let h = harness();
    let w = catalog::workload("spec.soplex_06", Scale::Tiny).expect("catalog name");
    let small = Scheme::TlpCustom(TlpParams {
        resize: (1, 4),
        ..TlpParams::paper()
    });
    let big = Scheme::TlpCustom(TlpParams {
        resize: (4, 1),
        ..TlpParams::paper()
    });
    let r_small = h.run_single(&w, small, L1Pf::Ipcp);
    let r_big = h.run_single(&w, big, L1Pf::Ipcp);
    // Both complete the budget (4-wide retirement may overshoot by <4,
    // and differently for the two configurations).
    for r in [&r_small, &r_big] {
        let retired = r.cores[0].core.instructions;
        assert!(retired >= h.rc.instructions && retired < h.rc.instructions + 4);
    }
    // Storage genuinely differs by ~16×.
    let kb = |p: TlpParams| tlp::core::storage::storage_report(&p.build_config()).total_kb();
    let small_kb = kb(TlpParams {
        resize: (1, 4),
        ..TlpParams::paper()
    });
    let big_kb = kb(TlpParams {
        resize: (4, 1),
        ..TlpParams::paper()
    });
    assert!(big_kb > 3.0 * small_kb, "{small_kb} vs {big_kb}");
}
