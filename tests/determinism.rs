//! Determinism pins for the run engine: results must be bit-identical
//! regardless of worker-thread count and cache state (cold memory, warm
//! memory, cold disk, warm disk). Every other guarantee of the engine —
//! content addressing, cross-experiment reuse, golden fixtures — rests on
//! this property.

use std::path::PathBuf;

use tlp::harness::experiments::{ext07_rl, fig01, fig03};
use tlp::harness::{EngineMode, Harness, L1Pf, RunConfig, Scheme};

/// Small but non-trivial budget: one workload per suite, four 4-core
/// mixes, enough instructions to exercise prefetchers and the off-chip
/// predictors. (These tests run in debug, so every simulated instruction
/// counts.)
fn rc_with_threads(threads: usize) -> RunConfig {
    let mut rc = RunConfig::test();
    rc.warmup = 1_000;
    rc.instructions = 5_000;
    rc.workloads_per_suite = Some(1);
    rc.mixes_per_suite = 1;
    rc.threads = threads;
    rc
}

fn tmp_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tlp-determinism-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const SCHEMES: [Scheme; 3] = [Scheme::Baseline, Scheme::Tlp, Scheme::AthenaRl];

#[test]
fn single_cell_reports_are_field_identical_across_thread_counts() {
    let h1 = Harness::new(rc_with_threads(1));
    let h8 = Harness::new(rc_with_threads(8));
    // Simulate the whole grid through each engine first — sequentially on
    // h1, on the 8-worker pool on h8 — so the comparison below actually
    // pits the pooled execution against the serial one.
    for h in [&h1, &h8] {
        let cells = h
            .active_workloads()
            .iter()
            .flat_map(|w| SCHEMES.map(|s| h.cell_single(w, s, L1Pf::Ipcp, None)))
            .collect();
        h.run_cells(cells);
    }
    for w in h1.active_workloads() {
        let w8 = h8
            .active_workloads()
            .into_iter()
            .find(|x| x.name() == w.name())
            .expect("same catalog at both thread counts");
        for scheme in SCHEMES {
            let a = h1.run_single(&w, scheme, L1Pf::Ipcp);
            let b = h8.run_single(&w8, scheme, L1Pf::Ipcp);
            assert_eq!(a, b, "{} / {scheme:?} differs by thread count", w.name());
        }
    }
    // Collection never simulated inline: the batches covered the grid.
    assert_eq!(h1.engine_stats().inline_simulated, 0);
    assert_eq!(h8.engine_stats().inline_simulated, 0);
}

#[test]
fn experiment_tables_are_identical_across_thread_counts() {
    let h1 = Harness::new(rc_with_threads(1));
    let h8 = Harness::new(rc_with_threads(8));
    // One single-core sweep and one mix-based experiment...
    assert_eq!(fig01::run(&h1).render(), fig01::run(&h8).render());
    assert_eq!(fig03::run(&h1).render(), fig03::run(&h8).render());
    // ...plus weighted speedup, whose isolation-IPC cells ride the same
    // engine grid.
    let mix = tlp::harness::mix::generate_mixes(&h1.active_workloads(), 1)
        .into_iter()
        .next()
        .expect("at least one mix");
    let r1 = h1.run_mix(&mix.workloads, Scheme::Tlp, L1Pf::Ipcp, None);
    let r8 = h8.run_mix(&mix.workloads, Scheme::Tlp, L1Pf::Ipcp, None);
    assert_eq!(r1, r8, "mix report differs by thread count");
    let w1 = h1.weighted_ipc(&mix.workloads, &r1, Scheme::Tlp, L1Pf::Ipcp, 12.8);
    let w8 = h8.weighted_ipc(&mix.workloads, &r8, Scheme::Tlp, L1Pf::Ipcp, 12.8);
    assert!(
        (w1 - w8).abs() == 0.0,
        "weighted IPC differs by thread count: {w1} vs {w8}"
    );
}

#[test]
fn warm_disk_cache_reproduces_cold_results_without_simulating() {
    let dir = tmp_cache_dir("warm");

    // Cold pass: everything is simulated and spilled to disk.
    let cold = Harness::new(rc_with_threads(4))
        .with_cache_dir(&dir)
        .expect("cache dir");
    let cold_fig01 = fig01::run(&cold);
    let cold_ext07 = ext07_rl::run(&cold);
    let cold_stats = cold.engine_stats();
    assert!(cold_stats.simulated > 0, "cold run must simulate");

    // Warm pass in a fresh harness (fresh memory tier): every cell must
    // come from disk, and every number must match the cold pass exactly.
    let warm = Harness::new(rc_with_threads(4))
        .with_cache_dir(&dir)
        .expect("cache dir");
    let warm_fig01 = fig01::run(&warm);
    let warm_ext07 = ext07_rl::run(&warm);
    let warm_stats = warm.engine_stats();
    assert_eq!(warm_stats.simulated, 0, "warm run must not simulate");
    assert!(warm_stats.disk_hits > 0, "warm run reads the disk tier");
    assert_eq!(
        warm_stats.hits(),
        warm_stats.requested,
        "warm run is 100% cache hits: {}",
        warm_stats.summary_line()
    );
    assert_eq!(cold_fig01.render(), warm_fig01.render());
    assert_eq!(cold_ext07.render(), warm_ext07.render());

    // Field-identical reports through the serde round-trip: a cell read
    // back from disk equals the one simulated in-process.
    let w = cold.active_workloads()[0].clone();
    assert_eq!(
        cold.run_single(&w, Scheme::Tlp, L1Pf::Ipcp),
        warm.run_single(&w, Scheme::Tlp, L1Pf::Ipcp),
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The event engine must be a pure wall-clock optimization: every cell it
/// simulates yields a `SimReport` bit-identical to the cycle engine's.
/// Sampled over a pseudo-random slice of the evaluation grid (workload ×
/// scheme × L1 prefetcher × bandwidth), plus a 4-core mix — the shapes
/// with the most intra-cycle interleaving to get wrong.
#[test]
fn event_engine_cells_are_bit_identical_to_cycle_engine() {
    let mut rc_cycle = rc_with_threads(2);
    rc_cycle.engine = EngineMode::Cycle;
    let mut rc_event = rc_with_threads(2);
    rc_event.engine = EngineMode::Event;
    let cyc = Harness::new(rc_cycle);
    let evt = Harness::new(rc_event);
    assert_eq!(cyc.rc.engine, EngineMode::Cycle);
    assert_eq!(evt.rc.engine, EngineMode::Event);

    // Deterministic xorshift sample over the full single-core grid.
    let schemes = [
        Scheme::Baseline,
        Scheme::Ppf,
        Scheme::Hermes,
        Scheme::HermesPpf,
        Scheme::Tlp,
        Scheme::AthenaRl,
    ];
    let l1pfs = [L1Pf::Ipcp, L1Pf::Berti];
    let bandwidths = [None, Some(12.8)];
    let workloads = cyc.workloads();
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut rand = move |bound: usize| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % bound as u64) as usize
    };
    let sample: Vec<(usize, usize, usize, usize)> = (0..10)
        .map(|_| {
            (
                rand(workloads.len()),
                rand(schemes.len()),
                rand(l1pfs.len()),
                rand(bandwidths.len()),
            )
        })
        .collect();

    for h in [&cyc, &evt] {
        let cells = sample
            .iter()
            .map(|&(w, s, p, b)| {
                h.cell_single(
                    &h.workloads()[w].clone(),
                    schemes[s],
                    l1pfs[p],
                    bandwidths[b],
                )
            })
            .collect();
        h.run_cells(cells);
    }
    for &(w, s, p, b) in &sample {
        let wl_c = workloads[w].clone();
        let wl_e = evt.workloads()[w].clone();
        let a = cyc.run_single_with_bandwidth(&wl_c, schemes[s], l1pfs[p], bandwidths[b]);
        let bb = evt.run_single_with_bandwidth(&wl_e, schemes[s], l1pfs[p], bandwidths[b]);
        assert_eq!(
            a,
            bb,
            "cell {} / {:?} / {:?} / {:?} differs between engines",
            wl_c.name(),
            schemes[s],
            l1pfs[p],
            bandwidths[b]
        );
    }

    // A 4-core mix: shared LLC/DRAM contention across cores.
    let mix = tlp::harness::mix::generate_mixes(&cyc.active_workloads(), 1)
        .into_iter()
        .next()
        .expect("at least one mix");
    let mix_e = tlp::harness::mix::generate_mixes(&evt.active_workloads(), 1)
        .into_iter()
        .next()
        .expect("same mix catalog");
    let a = cyc.run_mix(&mix.workloads, Scheme::Tlp, L1Pf::Ipcp, None);
    let b = evt.run_mix(&mix_e.workloads, Scheme::Tlp, L1Pf::Ipcp, None);
    assert_eq!(a, b, "mix report differs between engines");
}

/// Engine mode is not part of the content address: a disk cache written
/// by the cycle engine serves the event engine (and vice versa) without
/// re-simulating, because the reports are identical either way.
#[test]
fn engine_modes_share_the_result_cache() {
    let dir = tmp_cache_dir("engine-share");
    let mut rc = rc_with_threads(2);
    rc.engine = EngineMode::Cycle;
    let cold = Harness::new(rc).with_cache_dir(&dir).expect("cache dir");
    let cold_fig01 = fig01::run(&cold);
    assert!(cold.engine_stats().simulated > 0);

    let mut rc = rc_with_threads(2);
    rc.engine = EngineMode::Event;
    let warm = Harness::new(rc).with_cache_dir(&dir).expect("cache dir");
    let warm_fig01 = fig01::run(&warm);
    assert_eq!(
        warm.engine_stats().simulated,
        0,
        "event-mode run must be served entirely from the cycle-mode cache"
    );
    assert_eq!(cold_fig01.render(), warm_fig01.render());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A trace persisted to the store and streamed back block-by-block from
/// disk must be a pure storage optimization: the replay drives the
/// simulator to `SimReport`s bit-identical to in-memory capture, across
/// both engine modes and thread counts, with zero re-captures on the
/// warm store.
#[test]
fn streamed_trace_replay_is_bit_identical_to_in_memory_capture() {
    let dir = tmp_cache_dir("tracestore");
    let pairs = [(Scheme::Baseline, L1Pf::Ipcp), (Scheme::Tlp, L1Pf::Ipcp)];

    // Populate the store once: traces are addressed by environment and
    // workload — not engine mode or thread count — so a single cold pass
    // serves every configuration below.
    let cold = Harness::new(rc_with_threads(4))
        .with_trace_dir(&dir)
        .expect("trace dir");
    let cells = cold
        .active_workloads()
        .iter()
        .flat_map(|w| pairs.map(|(s, p)| cold.cell_single(w, s, p, None)))
        .collect();
    cold.run_cells(cells);
    assert!(
        cold.trace_stats().captures > 0,
        "cold pass must capture traces"
    );

    for engine in [EngineMode::Cycle, EngineMode::Event] {
        for threads in [1, 8] {
            let mut rc = rc_with_threads(threads);
            rc.engine = engine;
            // Reference: plain in-memory capture, no store attached.
            let mem = Harness::new(rc);
            // Warm store in a fresh harness: every trace streams from disk.
            let warm = Harness::new(rc).with_trace_dir(&dir).expect("trace dir");
            for h in [&mem, &warm] {
                let cells = h
                    .active_workloads()
                    .iter()
                    .flat_map(|w| pairs.map(|(s, p)| h.cell_single(w, s, p, None)))
                    .collect();
                h.run_cells(cells);
            }
            for w in mem.active_workloads() {
                let ww = warm
                    .active_workloads()
                    .into_iter()
                    .find(|x| x.name() == w.name())
                    .expect("same catalog with and without a store");
                for (s, p) in pairs {
                    assert_eq!(
                        mem.run_single(&w, s, p),
                        warm.run_single(&ww, s, p),
                        "{} / {s:?} differs between captured and streamed replay \
                         ({engine:?}, {threads} threads)",
                        w.name()
                    );
                }
            }
            let ts = warm.trace_stats();
            assert_eq!(
                ts.captures, 0,
                "warm store must not re-capture ({engine:?}, {threads} threads)"
            );
            assert!(ts.disk_hits > 0, "warm run streams traces from disk");
            assert_eq!(ts.corrupt, 0, "no trace file may fail validation");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn in_memory_rerun_of_an_experiment_is_simulation_free() {
    let h = Harness::new(rc_with_threads(4));
    let first = fig01::run(&h);
    let after_first = h.engine_stats().simulated;
    let second = fig01::run(&h);
    assert_eq!(
        h.engine_stats().simulated,
        after_first,
        "second in-process run must be pure cache hits"
    );
    assert_eq!(
        h.engine_stats().inline_simulated,
        0,
        "fig01 plans its whole grid before collecting"
    );
    assert_eq!(first.render(), second.render());
}
