//! Cross-crate property tests: invariants that must hold for arbitrary
//! workload slices and cache geometries.

use proptest::prelude::*;

use tlp::sim::cache::Cache;
use tlp::sim::config::{CacheConfig, SystemConfig};
use tlp::sim::engine::{CoreSetup, System};
use tlp::sim::hooks::OffChipTag;
use tlp::sim::replacement::{ReplCtx, ReplKind};
use tlp::sim::request::Request;
use tlp::sim::types::Level;
use tlp::sim::victim::VictimCache;
use tlp::trace::{Op, Reg, TraceRecord, VecTrace};

fn small_cache(sets: usize, ways: usize, mshrs: usize) -> Cache {
    Cache::new(
        "t",
        Level::L2,
        CacheConfig {
            sets,
            ways,
            latency: 1,
            mshrs,
            prefetch_queue: 8,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MSHR occupancy never exceeds its configured capacity regardless of
    /// the access pattern.
    #[test]
    fn mshrs_never_exceed_capacity(
        addrs in proptest::collection::vec(0u64..0x40_000, 1..200),
        mshrs in 1usize..8,
    ) {
        let mut c = small_cache(8, 2, mshrs);
        for (i, a) in addrs.iter().enumerate() {
            let r = Request::demand_load(
                i as u64, 0, 0x400, *a, *a, i as u64, OffChipTag::none(), 0,
            );
            c.push_demand(r, i as u64);
            c.tick(i as u64 + 100);
            prop_assert!(c.mshrs_in_use() <= mshrs);
        }
    }

    /// Hits + misses equals the demand accesses presented (after all fills).
    #[test]
    fn demand_accounting_is_conserved(
        addrs in proptest::collection::vec(0u64..0x10_000, 1..150),
    ) {
        let mut c = small_cache(8, 2, 64);
        let mut now = 0u64;
        for (i, a) in addrs.iter().enumerate() {
            let r = Request::demand_load(
                i as u64, 0, 0x400, *a, *a, i as u64, OffChipTag::none(), now,
            );
            c.push_demand(r, now);
            now += 10;
            let out = c.tick(now);
            for f in out.forwards {
                c.fill(f.line(), Level::Dram, now);
            }
        }
        let s = &c.stats;
        prop_assert_eq!(s.demand_hits + s.demand_misses, addrs.len() as u64);
    }

    /// A single-core system retires exactly the requested instruction count
    /// for arbitrary small load-address sequences, and total cycles are
    /// nonzero.
    #[test]
    fn system_retires_exact_budget(
        addrs in proptest::collection::vec(0u64..0x100_000, 20..120),
    ) {
        let recs: Vec<TraceRecord> = addrs
            .iter()
            .map(|&a| TraceRecord::load(0x400, a & !7, 8, tlp::trace::Reg(1), [None, None]))
            .collect();
        let n = recs.len() as u64;
        let mut sys = System::new(
            SystemConfig::test_tiny(1),
            vec![CoreSetup::new(Box::new(VecTrace::looping("p", recs)))],
        );
        let report = sys.run(0, n);
        // 4-wide retirement may overshoot by up to 3.
        let retired = report.cores[0].core.instructions;
        prop_assert!(retired >= n && retired < n + 4);
        prop_assert!(report.total_cycles > 0);
        // DRAM reads are bounded by re-fetches of distinct lines: the tiny
        // test hierarchy can evict and refetch, but never unboundedly
        // within one pass of the trace.
        let distinct_lines: std::collections::HashSet<u64> =
            addrs.iter().map(|a| a / 64).collect();
        prop_assert!(report.dram.reads <= 3 * distinct_lines.len() as u64 + 8);
    }

    /// DRAM bus conservation: the measured window cannot complete more
    /// transactions than the bus could physically transfer.
    #[test]
    fn dram_respects_bandwidth(
        stride in 1u64..20,
        n in 50usize..200,
    ) {
        let recs: Vec<TraceRecord> = (0..n)
            .map(|i| {
                TraceRecord::load(
                    0x400,
                    0x10_0000 + i as u64 * stride * 64,
                    8,
                    tlp::trace::Reg(1),
                    [None, None],
                )
            })
            .collect();
        let cfg = SystemConfig::test_tiny(1);
        let burst = cfg.dram.burst_cycles();
        let mut sys = System::new(
            cfg,
            vec![CoreSetup::new(Box::new(VecTrace::looping("b", recs)))],
        );
        let report = sys.run(0, n as u64);
        // Allow fills still in flight at the cut-off: transactions counted
        // at enqueue, so compare against cycles plus one full drain window.
        let max_txns = (report.total_cycles + 10_000) / burst + 1;
        prop_assert!(
            report.dram.transactions() <= max_txns,
            "{} transactions in {} cycles exceeds bus capacity",
            report.dram.transactions(),
            report.total_cycles
        );
    }

    /// Every replacement policy returns an in-range victim after arbitrary
    /// interleavings of fills and accesses.
    #[test]
    fn replacement_victims_always_in_range(
        ops in proptest::collection::vec((0usize..8, 0usize..4, any::<bool>()), 1..300),
    ) {
        for kind in ReplKind::ALL {
            let mut p = kind.build(8, 4);
            for &(set, way, is_fill) in &ops {
                let ctx = ReplCtx { line: (set * 4 + way) as u64, pc: 0x400 + way as u64 * 4 };
                if is_fill {
                    p.on_fill_ctx(set, way, &ctx);
                } else {
                    p.on_access_ctx(set, way, &ctx);
                }
                let v = p.victim(set, 4);
                prop_assert!(v < 4, "{}: victim {v} out of range", kind.name());
            }
        }
    }

    /// The victim cache never exceeds its capacity, and a line just
    /// inserted is recoverable until `capacity` further distinct inserts.
    #[test]
    fn victim_cache_capacity_and_recency(
        lines in proptest::collection::vec(0u64..64, 1..200),
        capacity in 1usize..16,
    ) {
        let mut vc = VictimCache::new(capacity);
        for &l in &lines {
            vc.insert(l);
            prop_assert!(vc.len() <= capacity);
        }
        // The most recently inserted line is always present.
        let last = *lines.last().expect("nonempty");
        prop_assert!(vc.probe_remove(last));
    }

    /// Trace files round-trip arbitrary record sequences bit-exactly.
    #[test]
    fn trace_file_roundtrip(
        seeds in proptest::collection::vec((0u8..5, any::<u64>(), any::<u64>(), 0u8..64), 1..100),
        looping in any::<bool>(),
    ) {
        let records: Vec<TraceRecord> = seeds
            .iter()
            .map(|&(op, pc, addr, reg)| match op {
                0 => TraceRecord::load(pc, addr, 8, Reg(reg), [Some(Reg((reg + 1) % 64)), None]),
                1 => TraceRecord::store(pc, addr, 4, Some(Reg(reg)), None),
                2 => TraceRecord::alu(pc, Some(Reg(reg)), [None, None]),
                3 => TraceRecord::fp(pc, Some(Reg(reg)), [Some(Reg(reg)), None]),
                _ => TraceRecord::branch(pc, addr % 2 == 0, addr, Some(Reg(reg))),
            })
            .collect();
        let bytes = tlp::trace::file::encode_trace("prop", looping, &records);
        let tf = tlp::trace::file::decode_trace(bytes).expect("roundtrip");
        prop_assert_eq!(tf.records, records);
        prop_assert_eq!(tf.looping, looping);
        prop_assert_eq!(tf.name.as_str(), "prop");
    }

    /// Decoding arbitrary bytes never panics — it returns an error or, for
    /// coincidentally valid input, a parsed trace.
    #[test]
    fn trace_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = tlp::trace::file::decode_trace(&bytes[..]);
    }

    /// The SHiP signature counter stays within its 2-bit bounds under
    /// arbitrary training.
    #[test]
    fn ship_counters_stay_bounded(
        ops in proptest::collection::vec((0usize..4, 0usize..2, any::<u64>(), any::<bool>()), 1..200),
    ) {
        let mut p = tlp::sim::replacement::ShipLite::new(4, 2);
        for &(set, way, pc, is_fill) in &ops {
            use tlp::sim::replacement::ReplacementPolicy;
            let ctx = ReplCtx { line: 0, pc };
            if is_fill {
                p.on_fill_ctx(set, way, &ctx);
            } else {
                p.on_access_ctx(set, way, &ctx);
            }
            prop_assert!(p.counter_for(pc) <= 3);
        }
    }

    /// A record's memory classification is consistent with its op.
    #[test]
    fn record_op_classification(pc in any::<u64>(), addr in any::<u64>()) {
        let l = TraceRecord::load(pc, addr, 8, Reg(1), [None, None]);
        prop_assert!(l.op.is_mem() && l.op.is_load() && !l.op.is_store());
        let s = TraceRecord::store(pc, addr, 8, None, None);
        prop_assert!(s.op.is_mem() && s.op.is_store());
        let a = TraceRecord::alu(pc, None, [None, None]);
        prop_assert!(!a.op.is_mem() && !a.op.is_branch());
        prop_assert_eq!(l.op, Op::Load);
    }
}

// ---------------------------------------------------------------------------
// Run-engine properties: content addressing and the on-disk cache codec.
// ---------------------------------------------------------------------------

use tlp::harness::cache::{bandwidth_desc, mix_desc, single_desc, RunKey};
use tlp::sim::serial::{report_from_json, report_to_json};
use tlp::sim::stats::{CoreReport, SimReport};

/// The axes a realistic grid cell can vary over, as canonical fragments.
const SCHEME_KEYS: [&str; 8] = [
    "Baseline",
    "PPF",
    "Hermes",
    "Hermes+PPF",
    "TLP",
    "LP",
    "AthenaRl",
    "variant:FLP",
];
const L1PFS: [&str; 5] = ["none", "ipcp", "berti", "ipcp+7KB", "next-line"];
const BANDWIDTHS: [Option<f64>; 6] = [
    None,
    Some(1.6),
    Some(3.2),
    Some(6.4),
    Some(12.8),
    Some(25.6),
];
const ENVS: [&str; 3] = [
    "Tiny|w5000|i25000",
    "Quick|w20000|i100000",
    "Full|w200000|i1000000",
];
const WORKLOADS: [&str; 4] = ["spec.mcf_06", "spec.lbm_17", "bfs.kron", "sssp.urand"];

fn desc_for(cell: (usize, usize, usize, usize, usize)) -> String {
    let (e, w, s, p, b) = cell;
    single_desc(
        ENVS[e % ENVS.len()],
        WORKLOADS[w % WORKLOADS.len()],
        SCHEME_KEYS[s % SCHEME_KEYS.len()],
        L1PFS[p % L1PFS.len()],
        &bandwidth_desc(BANDWIDTHS[b % BANDWIDTHS.len()]),
    )
}

/// Fills a report with pseudo-random counter values drawn from `vals`.
fn synth_report(ncores: usize, vals: &[u64]) -> SimReport {
    let mut it = vals.iter().copied().cycle();
    let mut next = move || it.next().expect("cycled iterator is infinite");
    let mut r = SimReport {
        total_cycles: next(),
        ..SimReport::default()
    };
    let fill_cache = |next: &mut dyn FnMut() -> u64| tlp::sim::stats::CacheStats {
        demand_hits: next(),
        demand_misses: next(),
        prefetch_hits: next(),
        prefetch_misses: next(),
        prefetch_fills: next(),
        prefetch_useful: next(),
        prefetch_useless: next(),
        writebacks: next(),
        mshr_stalls: next(),
    };
    let fill_prefetch = |next: &mut dyn FnMut() -> u64| tlp::sim::stats::PrefetchStats {
        candidates: next(),
        filtered: next(),
        dropped: next(),
        issued: next(),
        filled_by_level: [next(), next(), next(), next()],
        useful_by_level: [next(), next(), next(), next()],
        useless_by_level: [next(), next(), next(), next()],
    };
    r.llc = fill_cache(&mut next);
    r.dram = tlp::sim::stats::DramStats {
        reads: next(),
        spec_reads: next(),
        writes: next(),
        row_hits: next(),
        row_conflicts: next(),
        read_queue_full: next(),
        spec_dropped: next(),
        spec_consumed: next(),
        spec_wasted: next(),
    };
    r.victim.hits = next();
    r.victim.misses = next();
    r.victim.insertions = next();
    for i in 0..ncores {
        let mut c = CoreReport {
            workload: format!("workload-{i} \"with\" esc\\apes\n{}", next()),
            ..CoreReport::default()
        };
        c.core = tlp::sim::stats::CoreStats {
            instructions: next(),
            cycles: next(),
            loads: next(),
            stores: next(),
            branches: next(),
            mispredicts: next(),
            dtlb_misses: next(),
            stlb_misses: next(),
            store_forwards: next(),
        };
        c.l1d = fill_cache(&mut next);
        c.l2 = fill_cache(&mut next);
        c.offchip = tlp::sim::stats::OffChipStats {
            issued_now: next(),
            tagged_delayed: next(),
            delayed_issued: next(),
            predicted_onchip: next(),
            issued_outcome: [next(), next(), next(), next()],
            missed_offchip: next(),
            correct_onchip: next(),
        };
        c.l1_prefetch = fill_prefetch(&mut next);
        c.l2_prefetch = fill_prefetch(&mut next);
        r.cores.push(c);
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Distinct (env, workload, scheme, l1pf, bandwidth) tuples hash to
    /// distinct RunKeys — the content-addressing soundness property.
    #[test]
    fn distinct_cells_hash_to_distinct_keys(
        a in (0usize..3, 0usize..4, 0usize..8, 0usize..5, 0usize..6),
        b in (0usize..3, 0usize..4, 0usize..8, 0usize..5, 0usize..6),
    ) {
        let (da, db) = (desc_for(a), desc_for(b));
        if a == b {
            prop_assert_eq!(RunKey::from_desc(&da), RunKey::from_desc(&db));
        } else {
            prop_assert!(
                RunKey::from_desc(&da) != RunKey::from_desc(&db),
                "collision between '{}' and '{}'", da, db
            );
        }
    }

    /// Every cell key of the full realistic grid is unique (exhaustive
    /// pairwise check over 2880 cells, once per run).
    #[test]
    fn full_grid_has_no_key_collisions(_nonce in 0u8..1) {
        let mut keys = std::collections::HashSet::new();
        let mut cells = 0usize;
        for e in 0..ENVS.len() {
            for w in 0..WORKLOADS.len() {
                for s in 0..SCHEME_KEYS.len() {
                    for p in 0..L1PFS.len() {
                        for b in 0..BANDWIDTHS.len() {
                            keys.insert(RunKey::from_desc(&desc_for((e, w, s, p, b))));
                            cells += 1;
                        }
                    }
                }
            }
        }
        prop_assert_eq!(keys.len(), cells);
    }

    /// Mix descriptions are order-sensitive (a mix is not a set: core 0's
    /// workload matters) and never collide with single-core cells.
    #[test]
    fn mix_descs_are_position_sensitive(i in 0usize..4, j in 0usize..4) {
        let env = ENVS[0];
        let bw = bandwidth_desc(None);
        let m1 = mix_desc(env, [WORKLOADS[i], WORKLOADS[j], WORKLOADS[0], WORKLOADS[1]], "TLP", "ipcp", &bw);
        let m2 = mix_desc(env, [WORKLOADS[j], WORKLOADS[i], WORKLOADS[0], WORKLOADS[1]], "TLP", "ipcp", &bw);
        if i == j {
            prop_assert_eq!(&m1, &m2);
        } else {
            prop_assert!(m1 != m2);
        }
        let s = single_desc(env, WORKLOADS[i], "TLP", "ipcp", &bw);
        prop_assert!(RunKey::from_desc(&m1) != RunKey::from_desc(&s));
    }

    /// A SimReport with arbitrary u64 counters round-trips losslessly
    /// through the on-disk cache format.
    #[test]
    fn report_roundtrips_losslessly_through_cache_format(
        ncores in 1usize..5,
        vals in proptest::collection::vec(any::<u64>(), 8..64),
    ) {
        let report = synth_report(ncores, &vals);
        let json = report_to_json(&report);
        let back = report_from_json(&json).expect("cache format decodes");
        prop_assert_eq!(report, back);
    }
}
