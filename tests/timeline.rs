//! Determinism pins for simulated-time telemetry: the exported timeline
//! artifacts (Chrome trace + CSV) must be byte-identical across engine
//! modes, worker-thread counts, and cache temperature, and capturing a
//! timeline must never perturb a cell's `SimReport`.
//!
//! Everything in a timeline derives from simulated state only (window
//! boundaries in simulated cycles, journey stamps at simulated times,
//! integer milli-unit rates) — these tests are what keep it that way.

use std::path::PathBuf;
use std::sync::Arc;

use tlp::harness::timeline::{capture_runs, chrome_trace_value, windows_csv};
use tlp::harness::{EngineMode, Harness, L1Pf, RunConfig, Scheme, TimelineConfig};
use tlp::sim::engine::{CoreSetup, System};
use tlp::sim::SystemConfig;
use tlp::trace::emit::Workload;
use tlp::trace::{Reg, TraceRecord, VecTrace};

/// The two pinned workloads: one graph kernel, one SPEC trace.
const WORKLOADS: [&str; 2] = ["bfs.urand", "spec.mcf_06"];

fn rc(threads: usize, engine: EngineMode) -> RunConfig {
    let mut rc = RunConfig::test();
    rc.warmup = 1_000;
    rc.instructions = 5_000;
    rc.threads = threads;
    rc.engine = engine;
    rc
}

/// A short window and a dense journey modulus so the small test budget
/// still produces several windows and journeys per workload.
fn tcfg() -> TimelineConfig {
    TimelineConfig {
        window_cycles: 2_000,
        journey_every: 8,
        ..TimelineConfig::default()
    }
}

fn pinned_workloads(h: &Harness) -> Vec<Arc<dyn Workload>> {
    WORKLOADS
        .iter()
        .map(|name| {
            h.workloads()
                .iter()
                .find(|w| w.name() == *name)
                .unwrap_or_else(|| panic!("{name} missing from the catalog"))
                .clone()
        })
        .collect()
}

/// Renders both export formats for the pinned workloads under TLP/ipcp.
fn artifacts(h: &Harness) -> (String, String) {
    let runs = capture_runs(h, &pinned_workloads(h), Scheme::Tlp, L1Pf::Ipcp, tcfg());
    (chrome_trace_value(&runs).render(), windows_csv(&runs))
}

fn tmp_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tlp-timeline-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn artifacts_are_byte_identical_across_engines_and_thread_counts() {
    let (trace_cycle, csv_cycle) = artifacts(&Harness::new(rc(1, EngineMode::Cycle)));
    assert!(
        trace_cycle.contains("\"traceEvents\""),
        "trace renders events"
    );
    assert!(csv_cycle.lines().count() > 2, "CSV has window rows");

    let (trace_event, csv_event) = artifacts(&Harness::new(rc(1, EngineMode::Event)));
    assert_eq!(trace_cycle, trace_event, "Chrome trace differs by engine");
    assert_eq!(csv_cycle, csv_event, "CSV differs by engine");

    let (trace_8, csv_8) = artifacts(&Harness::new(rc(8, EngineMode::Event)));
    assert_eq!(trace_cycle, trace_8, "Chrome trace differs by thread count");
    assert_eq!(csv_cycle, csv_8, "CSV differs by thread count");
}

#[test]
fn warm_blob_cache_reproduces_cold_artifacts_from_disk() {
    let dir = tmp_cache_dir("warm");
    let cold = Harness::new(rc(2, EngineMode::Cycle))
        .with_cache_dir(&dir)
        .expect("cache dir");
    let (cold_trace, cold_csv) = artifacts(&cold);
    let blobs: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().ends_with(".timeline.json"))
        .collect();
    assert_eq!(
        blobs.len(),
        WORKLOADS.len(),
        "one timeline blob per captured cell"
    );

    // A fresh harness (empty memory tier) over the same directory must
    // answer every capture from the blob files, byte-for-byte.
    let warm = Harness::new(rc(2, EngineMode::Event))
        .with_cache_dir(&dir)
        .expect("cache dir");
    let (warm_trace, warm_csv) = artifacts(&warm);
    assert_eq!(
        warm.engine_stats().simulated,
        0,
        "warm captures must not re-simulate"
    );
    assert_eq!(cold_trace, warm_trace, "Chrome trace differs warm vs cold");
    assert_eq!(cold_csv, warm_csv, "CSV differs warm vs cold");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn capturing_a_timeline_never_perturbs_the_report() {
    let instrumented = Harness::new(rc(1, EngineMode::Cycle));
    let plain = Harness::new(rc(1, EngineMode::Cycle));
    let w_i = pinned_workloads(&instrumented);
    let w_p = pinned_workloads(&plain);
    // Capture first, then collect the report from the same harness.
    let _ = capture_runs(&instrumented, &w_i, Scheme::Tlp, L1Pf::Ipcp, tcfg());
    for (wi, wp) in w_i.iter().zip(&w_p) {
        assert_eq!(
            instrumented.run_single(wi, Scheme::Tlp, L1Pf::Ipcp),
            plain.run_single(wp, Scheme::Tlp, L1Pf::Ipcp),
            "{}: report differs when a timeline was captured first",
            wi.name()
        );
    }
}

/// Journey selection is a deterministic per-core modulus over demand
/// loads — no RNG anywhere. Driving `System::tick` directly pins which
/// loads carry a journey and that their stage stamps are well-ordered.
#[test]
fn every_kth_demand_load_is_sampled_with_ordered_stamps() {
    let recs: Vec<TraceRecord> = (0..40_000)
        .map(|i| {
            let addr = 0x20_0000 + (i as u64 % 512) * 64;
            TraceRecord::load(0x400, addr, 8, Reg(1), [None, None])
        })
        .collect();
    let mut sys = System::new(
        SystemConfig::test_tiny(1),
        vec![CoreSetup::new(Box::new(VecTrace::new("kth", recs)))],
    );
    sys.enable_timeline(TimelineConfig {
        window_cycles: 1_000,
        journey_every: 4,
        ..TimelineConfig::default()
    });
    for _ in 0..30_000 {
        sys.tick();
    }
    let timeline = sys.take_timeline().expect("timeline was enabled");
    assert!(
        timeline.journeys.len() > 10,
        "expected a healthy journey sample, got {}",
        timeline.journeys.len()
    );
    let mut prev_ordinal = None;
    for j in &timeline.journeys {
        assert_eq!(
            j.ordinal % 4,
            0,
            "journey ordinal {} is not a multiple of the modulus",
            j.ordinal
        );
        if let Some(p) = prev_ordinal {
            assert!(j.ordinal > p, "ordinals must be strictly increasing");
        }
        prev_ordinal = Some(j.ordinal);
        // Stage stamps only move forward in simulated time (0 = stage
        // never reached; a stage can't precede dispatch).
        let mut last = j.dispatch;
        for at in [j.l1_at, j.l2_at, j.dram_queue_at, j.bank_at, j.fill_at] {
            if at != 0 {
                assert!(
                    at >= last,
                    "stage stamp {at} precedes an earlier stage at {last}"
                );
                last = at;
            }
        }
    }
    // The modulus starts at the measurement restart: the very first
    // sampled ordinal is 0.
    assert_eq!(timeline.journeys[0].ordinal, 0);
    // Windows tile the measured range without gaps.
    for w in timeline.windows.windows(2) {
        assert_eq!(w[0].end_cycle, w[1].start_cycle, "windows must tile");
    }
}
