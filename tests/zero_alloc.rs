//! Pins the zero-allocation steady state of the engine's per-cycle
//! path: once scratch buffers, queues, freelists, and page mappings are
//! warm, ticking the system must not touch the global allocator at all.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! warms a bounded working set, snapshots the allocation count, ticks
//! tens of thousands more cycles, and requires a zero delta. This file
//! holds exactly one test — a second test running concurrently would
//! allocate into the same counter.

use std::alloc::{GlobalAlloc, Layout, System as SysAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

use tlp::sim::engine::{CoreSetup, System};
use tlp::sim::{SystemConfig, TimelineConfig};
use tlp::trace::{Reg, TraceRecord, VecTrace};
use tlp::tracestore::StreamTrace;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a relaxed atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { SysAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SysAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { SysAlloc.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { SysAlloc.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A long cyclic trace over a bounded working set: 128 distinct lines
/// (8 KiB, two pages) with a store every seventh record, so loads, LQ/SQ
/// churn, store-to-load forwarding, RFOs, dirty evictions, and DRAM
/// writebacks all reach steady state inside the warmup.
fn cyclic_trace(records: usize) -> VecTrace {
    let recs: Vec<TraceRecord> = (0..records)
        .map(|i| {
            let addr = 0x10_0000 + (i as u64 % 128) * 64;
            if i % 7 == 3 {
                TraceRecord::store(0x404, addr, 8, Some(Reg(1)), None)
            } else {
                TraceRecord::load(0x400, addr, 8, Reg(1), [None, None])
            }
        })
        .collect();
    VecTrace::new("cyclic", recs)
}

#[test]
fn steady_state_tick_never_allocates() {
    // Small caches miss constantly on the 128-line set, keeping the
    // whole hierarchy (MSHRs, DRAM queues, retry paths) busy.
    let cfg = SystemConfig::test_tiny(1);
    let mut sys = System::new(cfg, vec![CoreSetup::new(Box::new(cyclic_trace(400_000)))]);
    // Timeline telemetry rides the hot path (window sampling, journey
    // stamps) out of preallocated recorder storage — it must hold the
    // same zero-alloc bar as the engine itself.
    sys.enable_timeline(TimelineConfig::default());
    // Warm every pool: scratch buffers, queue capacities, waiter
    // freelists, page-table mappings for the two touched pages.
    for _ in 0..40_000 {
        sys.tick();
    }
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..20_000 {
        sys.tick();
    }
    let delta = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "steady-state busy phase allocated {delta} times in 20k cycles"
    );

    // Same bar with a disk-backed trace source: a looping TLPT v2
    // `StreamTrace` decodes from its preallocated block buffer and
    // refills it with plain seek + read_exact, so streamed replay —
    // including block transitions and loop wraps — must tick without
    // touching the allocator either.
    let dir = std::env::temp_dir().join(format!("tlp-zeroalloc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("cyclic.tlpt");
    // Short enough that the measured window wraps the file repeatedly.
    let recs: Vec<TraceRecord> = {
        let mut t = cyclic_trace(30_000);
        use tlp::trace::TraceSource;
        (0..30_000)
            .map(|_| t.next_record().expect("in range"))
            .collect()
    };
    tlp::tracestore::write_trace_v2(&path, "cyclic", true, &recs, &[], 0).expect("write v2");
    let stream = StreamTrace::open(&path).expect("open v2");
    let mut sys = System::new(
        SystemConfig::test_tiny(1),
        vec![CoreSetup::new(Box::new(stream))],
    );
    for _ in 0..40_000 {
        sys.tick();
    }
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..20_000 {
        sys.tick();
    }
    let delta = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "streamed steady state allocated {delta} times in 20k cycles"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
