//! Fast smoke test: the harness scheme comparison the paper is built
//! around — baseline vs. Hermes vs. PPF vs. TLP, plus the AthenaRl
//! extension scheme — must run end to end on a tiny workload and produce
//! sane IPC for every scheme.

use tlp::harness::{Harness, L1Pf, RunConfig, Scheme};
use tlp::trace::catalog::{self, Scale};

#[test]
fn scheme_comparison_produces_finite_positive_ipc() {
    let mut rc = RunConfig::test();
    // Keep this the fastest harness test in the tree: one short window.
    rc.warmup = 2_000;
    rc.instructions = 10_000;
    let h = Harness::new(rc);
    let w = catalog::workload("bfs.kron", Scale::Tiny).expect("catalog name");
    for scheme in [
        Scheme::Baseline,
        Scheme::Hermes,
        Scheme::Ppf,
        Scheme::Tlp,
        Scheme::AthenaRl,
    ] {
        let r = h.run_single(&w, scheme, L1Pf::Ipcp);
        let ipc = r.ipc();
        assert!(
            ipc.is_finite() && ipc > 0.0,
            "{scheme:?} produced IPC {ipc}"
        );
        assert!(
            ipc < 4.0,
            "{scheme:?} IPC {ipc} exceeds the 4-wide pipeline bound"
        );
        assert_eq!(
            r.cores[0].workload, "bfs.kron",
            "{scheme:?} report lost its workload attribution"
        );
        if scheme == Scheme::AthenaRl {
            // The RL agent must have learned to issue speculative requests
            // that pay off: some issued spec request was truly served from
            // DRAM within the test budget.
            let acc = r.cores[0].offchip.issue_accuracy();
            assert!(
                acc > 0.0,
                "AthenaRl off-chip issue accuracy must be nonzero after training, got {acc}"
            );
        }
    }
}
