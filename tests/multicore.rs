//! Multi-core integration tests: shared LLC/DRAM, mixes and weighted
//! speedup plumbing.

use tlp::harness::mix::generate_mixes;
use tlp::harness::{Harness, L1Pf, RunConfig, Scheme};

#[test]
fn four_core_mix_runs_all_cores_to_completion() {
    let h = Harness::new(RunConfig::test());
    let mixes = generate_mixes(&h.active_workloads(), 1);
    let m = &mixes[0];
    let r = h.run_mix(&m.workloads, Scheme::Baseline, L1Pf::Ipcp, None);
    assert_eq!(r.cores.len(), 4);
    for (i, c) in r.cores.iter().enumerate() {
        // 4-wide retirement may overshoot the window by up to 3.
        assert!(
            c.core.instructions >= h.rc.instructions && c.core.instructions < h.rc.instructions + 4,
            "core {i} retired {} instructions",
            c.core.instructions
        );
        assert!(c.core.ipc() > 0.0);
    }
}

#[test]
fn shared_llc_sees_traffic_from_all_cores() {
    let h = Harness::new(RunConfig::test());
    let mixes = generate_mixes(&h.active_workloads(), 1);
    let het = mixes.iter().find(|m| !m.homogeneous).expect("het mix");
    let r = h.run_mix(&het.workloads, Scheme::Baseline, L1Pf::Ipcp, None);
    assert!(r.llc.demand_accesses() > 0);
    assert!(r.dram.transactions() > 0);
}

#[test]
fn weighted_ipc_is_at_most_core_count() {
    let h = Harness::new(RunConfig::test());
    let mixes = generate_mixes(&h.active_workloads(), 1);
    let m = &mixes[0];
    let r = h.run_mix(&m.workloads, Scheme::Baseline, L1Pf::Ipcp, None);
    let ws = h.weighted_ipc(&m.workloads, &r, Scheme::Baseline, L1Pf::Ipcp, 12.8);
    // Each core's shared IPC can't beat its isolated IPC by more than
    // simulation noise, so the weighted sum stays near or below 4.
    assert!(
        ws > 0.0 && ws <= 4.4,
        "weighted IPC {ws} outside (0, cores] band"
    );
}

#[test]
fn contention_slows_cores_down() {
    let h = Harness::new(RunConfig::test());
    let mixes = generate_mixes(&h.active_workloads(), 2);
    // A homogeneous GAP mix keeps the comparison clean.
    let m = mixes
        .iter()
        .find(|m| m.homogeneous && m.suite == tlp::trace::emit::Suite::Gap)
        .expect("gap hom mix");
    let shared = h.run_mix(&m.workloads, Scheme::Baseline, L1Pf::Ipcp, None);
    let alone = h.single_ipc(&m.workloads[0], Scheme::Baseline, L1Pf::Ipcp, 12.8);
    let shared_ipc = shared.cores[0].core.ipc();
    assert!(
        shared_ipc <= alone * 1.05,
        "sharing cannot speed a core up: shared {shared_ipc} vs alone {alone}"
    );
}

#[test]
fn bandwidth_scaling_changes_performance() {
    let h = Harness::new(RunConfig::test());
    let mixes = generate_mixes(&h.active_workloads(), 1);
    let m = mixes
        .iter()
        .find(|m| m.suite == tlp::trace::emit::Suite::Gap)
        .expect("gap mix");
    let slow = h.run_mix(&m.workloads, Scheme::Baseline, L1Pf::Ipcp, Some(1.6));
    let fast = h.run_mix(&m.workloads, Scheme::Baseline, L1Pf::Ipcp, Some(25.6));
    let ipc =
        |r: &tlp::sim::SimReport| -> f64 { r.cores.iter().map(|c| c.core.ipc()).sum::<f64>() };
    assert!(
        ipc(&fast) > ipc(&slow),
        "16x more bandwidth must help a memory-bound mix"
    );
}

#[test]
fn every_headline_scheme_completes_a_mix() {
    let h = Harness::new(RunConfig::test());
    let mixes = generate_mixes(&h.active_workloads(), 1);
    let m = &mixes[0];
    for scheme in Scheme::HEADLINE {
        let r = h.run_mix(&m.workloads, scheme, L1Pf::Ipcp, None);
        for (i, c) in r.cores.iter().enumerate() {
            assert!(
                c.core.instructions >= h.rc.instructions,
                "{}: core {i} incomplete",
                scheme.name()
            );
        }
    }
}

#[test]
fn mix_runs_are_deterministic() {
    let run = || {
        let h = Harness::new(RunConfig::test());
        let mixes = generate_mixes(&h.active_workloads(), 1);
        let m = mixes.iter().find(|m| !m.homogeneous).expect("het mix");
        let r = h.run_mix(&m.workloads, Scheme::Tlp, L1Pf::Ipcp, None);
        (
            r.total_cycles,
            r.dram.transactions(),
            r.llc.demand_misses,
            r.cores.iter().map(|c| c.core.cycles).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn homogeneous_mix_cores_behave_symmetrically() {
    let h = Harness::new(RunConfig::test());
    let mixes = generate_mixes(&h.active_workloads(), 1);
    let m = mixes.iter().find(|m| m.homogeneous).expect("hom mix");
    let r = h.run_mix(&m.workloads, Scheme::Baseline, L1Pf::Ipcp, None);
    // Four copies of the same workload share hardware evenly: no core's
    // IPC should be wildly different from another's. (They are not
    // identical: physical page assignment differs per core.)
    let ipcs: Vec<f64> = r.cores.iter().map(|c| c.core.ipc()).collect();
    let (min, max) = ipcs
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
    assert!(
        max / min < 2.0,
        "homogeneous cores diverge: {ipcs:?} (min {min}, max {max})"
    );
}

#[test]
fn per_core_offchip_stats_are_tracked_independently() {
    let h = Harness::new(RunConfig::test());
    let mixes = generate_mixes(&h.active_workloads(), 1);
    let m = mixes
        .iter()
        .find(|m| m.suite == tlp::trace::emit::Suite::Gap)
        .expect("gap mix");
    let r = h.run_mix(&m.workloads, Scheme::Tlp, L1Pf::Ipcp, None);
    // Each core owns its FLP; predictions must be attributed per core, and
    // on a memory-bound GAP mix each core should engage the predictor.
    let engaged = r
        .cores
        .iter()
        .filter(|c| {
            c.offchip.issued_now + c.offchip.tagged_delayed + c.offchip.predicted_onchip > 0
        })
        .count();
    assert_eq!(engaged, 4, "all four FLPs must observe loads");
}
