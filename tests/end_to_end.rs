//! Integration tests spanning the whole workspace: trace generators feed
//! the simulator through every scheme's plugin assembly.

use tlp::harness::{Harness, L1Pf, RunConfig, Scheme};
use tlp::trace::catalog::{self, Scale};

fn harness() -> Harness {
    Harness::new(RunConfig::test())
}

#[test]
fn baseline_runs_every_suite() {
    let h = harness();
    for name in ["spec.mcf_06", "spec.lbm_17", "bfs.kron", "pr.urand"] {
        let w = catalog::workload(name, Scale::Tiny).expect("catalog name");
        let r = h.run_single(&w, Scheme::Baseline, L1Pf::Ipcp);
        // Retirement is 4-wide, so the measured window may overshoot by up
        // to three instructions.
        let retired = r.cores[0].core.instructions;
        assert!(
            retired >= h.rc.instructions && retired < h.rc.instructions + 4,
            "{name} retired {retired}, expected ~{}",
            h.rc.instructions
        );
        assert!(
            r.ipc() > 0.05 && r.ipc() < 4.0,
            "{name} IPC {} implausible",
            r.ipc()
        );
        assert!(r.cores[0].l1d.demand_accesses() > 0);
    }
}

#[test]
fn every_scheme_completes_on_a_graph_workload() {
    let h = harness();
    let w = catalog::workload("sssp.twitter", Scale::Tiny).expect("catalog name");
    let base = h.run_single(&w, Scheme::Baseline, L1Pf::Ipcp);
    for scheme in [Scheme::Ppf, Scheme::Hermes, Scheme::HermesPpf, Scheme::Tlp] {
        let r = h.run_single(&w, scheme, L1Pf::Ipcp);
        assert_eq!(
            r.cores[0].core.instructions,
            base.cores[0].core.instructions
        );
        let ratio = r.ipc() / base.ipc();
        assert!(
            (0.5..=2.0).contains(&ratio),
            "{} IPC ratio {ratio} out of plausible range",
            scheme.name()
        );
    }
}

#[test]
fn simulation_is_deterministic_end_to_end() {
    let run = || {
        let h = harness();
        let w = catalog::workload("cc.kron", Scale::Tiny).expect("catalog name");
        let r = h.run_single(&w, Scheme::Tlp, L1Pf::Ipcp);
        (
            r.total_cycles,
            r.dram_transactions(),
            r.cores[0].l1d.demand_misses,
            r.cores[0].offchip.issued_now,
            r.cores[0].l1_prefetch.filtered,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn hermes_issues_speculative_reads_tlp_delays_some() {
    let h = harness();
    let w = catalog::workload("spec.omnetpp_17", Scale::Tiny).expect("catalog name");
    let hermes = h.run_single(&w, Scheme::Hermes, L1Pf::Ipcp);
    let tlp = h.run_single(&w, Scheme::Tlp, L1Pf::Ipcp);
    // Hermes must actually exercise the speculative path.
    let hermes_off = &hermes.cores[0].offchip;
    assert!(hermes_off.issued_now > 0, "Hermes never predicted off-chip");
    assert_eq!(
        hermes_off.tagged_delayed, 0,
        "Hermes has no delay mechanism"
    );
    // TLP's FLP uses the middle band.
    let tlp_off = &tlp.cores[0].offchip;
    assert!(
        tlp_off.tagged_delayed > 0,
        "FLP selective delay never engaged"
    );
    // Loads tagged just before the warmup/measure boundary can issue their
    // delayed request after the counters reset, so allow LQ-depth slack.
    assert!(tlp_off.delayed_issued <= tlp_off.tagged_delayed + 96);
}

#[test]
fn tlp_filter_engages_and_raises_accuracy() {
    let h = Harness::new(RunConfig::test());
    let w = catalog::workload("bfs.kron", Scale::Tiny).expect("catalog name");
    let base = h.run_single(&w, Scheme::Baseline, L1Pf::Ipcp);
    let tlp = h.run_single(&w, Scheme::Tlp, L1Pf::Ipcp);
    let bpf = &base.cores[0].l1_prefetch;
    let tpf = &tlp.cores[0].l1_prefetch;
    assert_eq!(bpf.filtered, 0, "baseline has no filter");
    assert!(tpf.filtered > 0, "SLP never dropped a prefetch");
    assert!(
        tpf.accuracy() >= bpf.accuracy(),
        "SLP should not lower accuracy: {} -> {}",
        bpf.accuracy(),
        tpf.accuracy()
    );
}

#[test]
fn writebacks_flow_to_dram() {
    let h = harness();
    // A streaming writer: its store footprint exceeds every cache level,
    // so dirty lines must cascade out of the L1D.
    let w = catalog::workload("spec.lbm_17", Scale::Tiny).expect("catalog name");
    let r = h.run_single(&w, Scheme::Baseline, L1Pf::None);
    assert!(
        r.cores[0].l1d.writebacks > 0,
        "streaming stores must dirty lines that the L1D writes back"
    );
}

#[test]
fn table_ii_storage_budget_holds() {
    let report = tlp::core::storage::storage_report(&tlp::core::TlpConfig::paper());
    assert!(report.total_kb() <= 7.5, "TLP exceeds its 7 KB budget");
    // The paper's FLP/SLP asymmetry (leveling feature) must be visible.
    assert!(report.slp_kb() > report.flp_kb());
}

#[test]
fn catalog_matches_paper_counts() {
    let names = catalog::all_names(Scale::Tiny);
    assert_eq!(names.len(), 55, "paper evaluates 55 single-core workloads");
    assert_eq!(names.iter().filter(|n| n.starts_with("spec.")).count(), 24);
}
