//! Table II reproduction: the storage budget of TLP.
//!
//! | component | paper | this implementation |
//! |-----------|-------|---------------------|
//! | FLP (weights + page buffer) | 3.21 KB | 2.5 KB + 0.625 KB |
//! | SLP (weights + page buffer) | 3.29 KB | 2.8125 KB + 0.625 KB |
//! | Load-queue metadata | 0.42 KB | 48 bits × LQ entries |
//! | L1D MSHR metadata | 0.06 KB | 49 bits × MSHR entries |
//! | **total** | **6.98 KB** | ≈ 7.0 KB |

use crate::TlpConfig;

/// Bits of FLP metadata per load-queue entry (Table II: hashed PC 32,
/// last-4 PCs 10, first access 1, confidence 5).
pub const LQ_ENTRY_BITS: usize = 32 + 10 + 1 + 5;

/// Bits of SLP metadata per L1D MSHR entry (Table II adds the prediction
/// bit).
pub const MSHR_ENTRY_BITS: usize = 32 + 10 + 1 + 5 + 1;

/// The per-component storage budget, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageReport {
    /// FLP weight tables.
    pub flp_weights_bits: usize,
    /// FLP page buffer.
    pub flp_page_buffer_bits: usize,
    /// SLP weight tables (including the leveling table when enabled).
    pub slp_weights_bits: usize,
    /// SLP page buffer.
    pub slp_page_buffer_bits: usize,
    /// Load-queue metadata.
    pub lq_metadata_bits: usize,
    /// L1D MSHR metadata.
    pub mshr_metadata_bits: usize,
}

impl StorageReport {
    /// Total bits.
    #[must_use]
    pub fn total_bits(&self) -> usize {
        self.flp_weights_bits
            + self.flp_page_buffer_bits
            + self.slp_weights_bits
            + self.slp_page_buffer_bits
            + self.lq_metadata_bits
            + self.mshr_metadata_bits
    }

    /// Total in kilobytes.
    #[must_use]
    pub fn total_kb(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }

    /// FLP subtotal in kilobytes (paper: 3.21 KB).
    #[must_use]
    pub fn flp_kb(&self) -> f64 {
        (self.flp_weights_bits + self.flp_page_buffer_bits) as f64 / 8.0 / 1024.0
    }

    /// SLP subtotal in kilobytes (paper: 3.29 KB).
    #[must_use]
    pub fn slp_kb(&self) -> f64 {
        (self.slp_weights_bits + self.slp_page_buffer_bits) as f64 / 8.0 / 1024.0
    }
}

/// Computes the Table II storage budget from a live configuration.
#[must_use]
pub fn storage_report(cfg: &TlpConfig) -> StorageReport {
    let weight_bits =
        |sizes: &[usize], wbits: u32| -> usize { sizes.iter().sum::<usize>() * wbits as usize };
    let flp_weights_bits = weight_bits(
        &cfg.flp.perceptron.enabled_sizes(),
        cfg.flp.perceptron.weight_bits,
    );
    let mut slp_sizes: Vec<usize> = cfg.slp.perceptron.enabled_sizes();
    if cfg.slp.use_leveling {
        slp_sizes.push(cfg.slp.leveling_table);
    }
    let slp_weights_bits = weight_bits(&slp_sizes, cfg.slp.perceptron.weight_bits);
    StorageReport {
        flp_weights_bits,
        flp_page_buffer_bits: crate::features::PageBuffer::storage_bits(),
        slp_weights_bits,
        slp_page_buffer_bits: crate::features::PageBuffer::storage_bits(),
        lq_metadata_bits: LQ_ENTRY_BITS * cfg.load_queue_entries,
        mshr_metadata_bits: MSHR_ENTRY_BITS * cfg.l1d_mshr_entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_about_7_kb() {
        let r = storage_report(&TlpConfig::paper());
        let total = r.total_kb();
        assert!(
            (6.0..=7.5).contains(&total),
            "Table II total must be ≈7 KB, got {total:.2}"
        );
    }

    #[test]
    fn flp_and_slp_subtotals_match_paper_shape() {
        let r = storage_report(&TlpConfig::paper());
        // Paper: FLP 3.21 KB, SLP 3.29 KB — SLP is slightly larger because
        // of the leveling table.
        assert!(r.slp_kb() > r.flp_kb());
        assert!((2.8..=3.6).contains(&r.flp_kb()), "FLP {:.2}", r.flp_kb());
        assert!((3.0..=3.8).contains(&r.slp_kb()), "SLP {:.2}", r.slp_kb());
    }

    #[test]
    fn metadata_budgets_match_table_ii() {
        let r = storage_report(&TlpConfig::paper());
        // 72-entry LQ × 48 bits = 0.42 KB.
        assert!((r.lq_metadata_bits as f64 / 8.0 / 1024.0 - 0.42).abs() < 0.01);
        // 10-entry MSHR × 49 bits = 0.06 KB.
        assert!((r.mshr_metadata_bits as f64 / 8.0 / 1024.0 - 0.06).abs() < 0.01);
    }

    #[test]
    fn leveling_feature_costs_storage() {
        let mut cfg = TlpConfig::paper();
        let with = storage_report(&cfg).total_bits();
        cfg.slp.use_leveling = false;
        let without = storage_report(&cfg).total_bits();
        assert_eq!(with - without, 512 * 5);
    }
}
