//! `tlp-core`: the Two Level Perceptron (TLP) predictor — the primary
//! contribution of *"A Two Level Neural Approach Combining Off-Chip
//! Prediction with Adaptive Prefetch Filtering"* (HPCA 2024).
//!
//! TLP combines two connected hashed-perceptron predictors:
//!
//! * [`Flp`] (First Level Perceptron): an off-chip predictor consulted at
//!   load dispatch, using the virtual-address program features of Table I.
//!   Its novelty over Hermes is the **selective delay** mechanism — two
//!   thresholds (τ_high, τ_low) split predictions into
//!   *issue-now* / *issue-on-L1D-miss* / *no-issue*, eliminating the
//!   wasted DRAM transactions Hermes spends on loads that hit in the L1D.
//! * [`Slp`] (Second Level Perceptron): an off-chip predictor for **L1D
//!   prefetch requests**, used as an adaptive prefetch filter. It uses the
//!   same features adapted to physical addresses, plus a *leveling feature*
//!   combining the FLP output bit of the triggering demand with the
//!   prefetch target's cache-line offset. Prefetches predicted to be served
//!   from DRAM are discarded (they are overwhelmingly inaccurate — paper
//!   Figure 5).
//!
//! [`variants`] builds the Figure-15 ablations (FLP-only, SLP-only, TSP,
//! Delayed TSP, Selective TSP, full TLP) and [`storage`] reproduces the
//! Table II storage accounting.
//!
//! # Example
//!
//! ```
//! use tlp_core::{TlpConfig, variants::TlpVariant};
//!
//! let cfg = TlpConfig::paper();
//! let (flp, slp) = TlpVariant::Full.build(&cfg);
//! assert!(flp.is_some() && slp.is_some());
//! let report = tlp_core::storage::storage_report(&cfg);
//! // Table II: ~7 KB total.
//! assert!(report.total_kb() < 8.0);
//! ```

pub mod features;
pub mod flp;
pub mod offchip_base;
pub mod slp;
pub mod storage;
pub mod variants;

pub use features::{FeatureState, PageBuffer};
pub use flp::{DelayMode, Flp, FlpConfig};
pub use offchip_base::{OffChipPerceptron, OffChipPerceptronConfig};
pub use slp::{Slp, SlpConfig};

/// Full TLP configuration: the FLP and SLP halves plus the metadata-bearing
/// queue sizes of Table II.
#[derive(Debug, Clone)]
pub struct TlpConfig {
    /// First-level (off-chip) predictor configuration.
    pub flp: FlpConfig,
    /// Second-level (prefetch filter) predictor configuration.
    pub slp: SlpConfig,
    /// Load-queue entries carrying FLP metadata (Table II).
    pub load_queue_entries: usize,
    /// L1D MSHR entries carrying SLP metadata (Table II).
    pub l1d_mshr_entries: usize,
}

impl TlpConfig {
    /// The paper's configuration (§IV-D): ~7 KB of total storage.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            flp: FlpConfig::paper(),
            slp: SlpConfig::paper(),
            load_queue_entries: 72,
            l1d_mshr_entries: 10,
        }
    }
}
