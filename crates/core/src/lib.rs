//! `tlp-core`: the Two Level Perceptron (TLP) predictor — the primary
//! contribution of *"A Two Level Neural Approach Combining Off-Chip
//! Prediction with Adaptive Prefetch Filtering"* (HPCA 2024).
//!
//! TLP combines two connected hashed-perceptron predictors:
//!
//! * [`Flp`] (First Level Perceptron): an off-chip predictor consulted at
//!   load dispatch, using the virtual-address program features of Table I.
//!   Its novelty over Hermes is the **selective delay** mechanism — two
//!   thresholds (τ_high, τ_low) split predictions into
//!   *issue-now* / *issue-on-L1D-miss* / *no-issue*, eliminating the
//!   wasted DRAM transactions Hermes spends on loads that hit in the L1D.
//! * [`Slp`] (Second Level Perceptron): an off-chip predictor for **L1D
//!   prefetch requests**, used as an adaptive prefetch filter. It uses the
//!   same features adapted to physical addresses, plus a *leveling feature*
//!   combining the FLP output bit of the triggering demand with the
//!   prefetch target's cache-line offset. Prefetches predicted to be served
//!   from DRAM are discarded (they are overwhelmingly inaccurate — paper
//!   Figure 5).
//!
//! [`variants`] builds the Figure-15 ablations (FLP-only, SLP-only, TSP,
//! Delayed TSP, Selective TSP, full TLP) and [`storage`] reproduces the
//! Table II storage accounting.
//!
//! # Example
//!
//! ```
//! use tlp_core::{TlpConfig, variants::TlpVariant};
//!
//! let cfg = TlpConfig::paper();
//! let (flp, slp) = TlpVariant::Full.build(&cfg);
//! assert!(flp.is_some() && slp.is_some());
//! let report = tlp_core::storage::storage_report(&cfg);
//! // Table II: ~7 KB total.
//! assert!(report.total_kb() < 8.0);
//! ```

pub mod features;
pub mod flp;
pub mod offchip_base;
pub mod params;
pub mod slp;
pub mod storage;
pub mod variants;

pub use features::{FeatureState, PageBuffer};
pub use flp::{DelayMode, Flp, FlpConfig};
pub use offchip_base::{OffChipPerceptron, OffChipPerceptronConfig};
pub use params::{TlpParams, TLP_KNOB_KEYS};
pub use slp::{Slp, SlpConfig};

/// Full TLP configuration: the FLP and SLP halves plus the metadata-bearing
/// queue sizes of Table II.
#[derive(Debug, Clone)]
pub struct TlpConfig {
    /// First-level (off-chip) predictor configuration.
    pub flp: FlpConfig,
    /// Second-level (prefetch filter) predictor configuration.
    pub slp: SlpConfig,
    /// Load-queue entries carrying FLP metadata (Table II).
    pub load_queue_entries: usize,
    /// L1D MSHR entries carrying SLP metadata (Table II).
    pub l1d_mshr_entries: usize,
}

impl TlpConfig {
    /// The paper's configuration (§IV-D): ~7 KB of total storage.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            flp: FlpConfig::paper(),
            slp: SlpConfig::paper(),
            load_queue_entries: 72,
            l1d_mshr_entries: 10,
        }
    }
}

/// Registers this crate's components with a plugin registry (origin
/// `tlp-core`):
///
/// * off-chip predictor **`flp`** — the First Level Perceptron.
///   Parameters: the [`TLP_KNOB_KEYS`] sensitivity knobs (`tau_high`,
///   `tau_low`, `tau_pref`, `resize` as `num/den`, `drop_feature`) plus
///   `delay` = `never`|`always`|`selective`.
/// * L1D prefetch filter **`slp`** — the Second Level Perceptron.
///   Parameters: the knobs plus `leveling` = `true`|`false`.
///
/// With no knob parameters both factories materialize
/// [`TlpConfig::paper`] exactly; any knob routes through
/// [`TlpParams::build_config`], the same path the harness's sensitivity
/// experiments use.
///
/// # Errors
///
/// Propagates registration collisions from the registry.
pub fn register_builtin(
    reg: &mut tlp_plugin::ComponentRegistry,
) -> Result<(), tlp_plugin::PluginError> {
    use std::sync::Arc;

    use tlp_plugin::{Params, PluginError};

    const ORIGIN: &str = "tlp-core";

    fn base_config(component: &str, params: &Params) -> Result<TlpConfig, PluginError> {
        if TlpParams::any_knobs(params) {
            Ok(TlpParams::from_params(component, params)?.build_config())
        } else {
            Ok(TlpConfig::paper())
        }
    }

    reg.register_offchip(
        "flp",
        ORIGIN,
        Arc::new(|params, _ctx| {
            params.allow_keys(
                "flp",
                &[
                    "tau_high",
                    "tau_low",
                    "tau_pref",
                    "resize",
                    "drop_feature",
                    "delay",
                ],
            )?;
            let base = base_config("flp", params)?;
            let delay = match params.get("delay") {
                None => base.flp.delay,
                Some("never") => DelayMode::Never,
                Some("always") => DelayMode::Always,
                Some("selective") => DelayMode::Selective,
                Some(other) => {
                    return Err(PluginError::InvalidParam {
                        component: "flp".to_owned(),
                        param: "delay".to_owned(),
                        message: format!(
                            "unknown mode '{other}' (expected never, always or selective)"
                        ),
                    })
                }
            };
            Ok(Box::new(Flp::new(FlpConfig { delay, ..base.flp })))
        }),
    )?;
    reg.register_l1_filter(
        "slp",
        ORIGIN,
        Arc::new(|params, _ctx| {
            params.allow_keys(
                "slp",
                &[
                    "tau_high",
                    "tau_low",
                    "tau_pref",
                    "resize",
                    "drop_feature",
                    "leveling",
                ],
            )?;
            let base = base_config("slp", params)?;
            let use_leveling = params
                .get_parsed::<bool>("slp", "leveling")?
                .unwrap_or(base.slp.use_leveling);
            Ok(Box::new(Slp::new(SlpConfig {
                use_leveling,
                ..base.slp
            })))
        }),
    )?;
    Ok(())
}
