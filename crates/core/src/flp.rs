//! FLP: the First Level Perceptron predictor (paper §IV-A).
//!
//! FLP is consulted at load dispatch and compares its confidence sum
//! against two thresholds:
//!
//! * `sum > τ_high` — high confidence the load misses everywhere: issue
//!   the speculative DRAM request immediately, in parallel with the L1D
//!   lookup (L1Ds are VIPT).
//! * `τ_low ≤ sum ≤ τ_high` — off-chip is likely but not certain: *tag*
//!   the load and issue the speculative request only if the L1D lookup
//!   misses. This is the paper's novel **selective delay**, motivated by
//!   Finding 3 (17.7% of Hermes' off-chip predictions are served by the
//!   L1D).
//! * `sum < τ_low` — predicted on-chip: no speculative request.

use tlp_sim::hooks::{LoadCtx, OffChipDecision, OffChipPredictor, OffChipTag};
use tlp_sim::types::Level;

use crate::offchip_base::{OffChipPerceptron, OffChipPerceptronConfig};

/// How FLP converts confidence into speculative-request timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayMode {
    /// Hermes-style: any positive prediction issues immediately
    /// (the "FLP"/"TSP" ablation of Figure 15).
    Never,
    /// Every positive prediction waits for the L1D miss
    /// (the "Delayed TSP" ablation).
    Always,
    /// The paper's two-threshold selective delay.
    Selective,
}

/// FLP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlpConfig {
    /// Shared perceptron geometry/training parameters.
    pub perceptron: OffChipPerceptronConfig,
    /// Issue-immediately threshold τ_high.
    pub tau_high: i32,
    /// Predict-off-chip threshold τ_low.
    pub tau_low: i32,
    /// Delay policy.
    pub delay: DelayMode,
}

impl FlpConfig {
    /// The paper's FLP.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            perceptron: OffChipPerceptronConfig::paper(),
            tau_high: 14,
            tau_low: 2,
            delay: DelayMode::Selective,
        }
    }

    /// FLP without selective delay (issues at τ_low, Hermes-style).
    #[must_use]
    pub fn no_delay() -> Self {
        Self {
            delay: DelayMode::Never,
            ..Self::paper()
        }
    }

    /// FLP that always delays until the L1D miss.
    #[must_use]
    pub fn always_delay() -> Self {
        Self {
            delay: DelayMode::Always,
            ..Self::paper()
        }
    }
}

/// The First Level Perceptron off-chip predictor.
#[derive(Debug)]
pub struct Flp {
    base: OffChipPerceptron,
    cfg: FlpConfig,
}

impl Flp {
    /// Builds FLP from its configuration.
    #[must_use]
    pub fn new(cfg: FlpConfig) -> Self {
        Self {
            base: OffChipPerceptron::new(cfg.perceptron),
            cfg,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &FlpConfig {
        &self.cfg
    }

    fn decide(&self, sum: i32) -> OffChipDecision {
        match self.cfg.delay {
            DelayMode::Never => {
                if sum >= self.cfg.tau_low {
                    OffChipDecision::IssueNow
                } else {
                    OffChipDecision::NoIssue
                }
            }
            DelayMode::Always => {
                if sum >= self.cfg.tau_low {
                    OffChipDecision::IssueOnL1dMiss
                } else {
                    OffChipDecision::NoIssue
                }
            }
            DelayMode::Selective => {
                if sum > self.cfg.tau_high {
                    OffChipDecision::IssueNow
                } else if sum >= self.cfg.tau_low {
                    OffChipDecision::IssueOnL1dMiss
                } else {
                    OffChipDecision::NoIssue
                }
            }
        }
    }
}

impl OffChipPredictor for Flp {
    fn predict_load(&mut self, ctx: &LoadCtx) -> OffChipTag {
        let (sum, indices) = self.base.predict(ctx.pc, ctx.vaddr);
        OffChipTag {
            decision: self.decide(sum),
            confidence: sum,
            indices,
            valid: true,
        }
    }

    fn train_load(&mut self, _ctx: &LoadCtx, tag: &OffChipTag, served_from: Level) {
        if !tag.valid {
            return;
        }
        self.base
            .train(&tag.indices, tag.confidence, served_from.is_off_chip());
    }

    fn name(&self) -> &'static str {
        match self.cfg.delay {
            DelayMode::Never => "flp-nodelay",
            DelayMode::Always => "flp-alwaysdelay",
            DelayMode::Selective => "flp",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pc: u64, vaddr: u64) -> LoadCtx {
        LoadCtx {
            core: 0,
            pc,
            vaddr,
            cycle: 0,
        }
    }

    /// Trains the predictor until a PC saturates toward `offchip`.
    fn train_pc(flp: &mut Flp, pc: u64, offchip: bool, n: usize) {
        for i in 0..n {
            let c = ctx(pc, 0x100_0000 + (i as u64) * 4096);
            let tag = flp.predict_load(&c);
            flp.train_load(&c, &tag, if offchip { Level::Dram } else { Level::L1d });
        }
    }

    #[test]
    fn cold_predictor_stays_quiet_then_learns() {
        let mut flp = Flp::new(FlpConfig::paper());
        let tag = flp.predict_load(&ctx(0x400, 0x1000));
        assert_eq!(tag.decision, OffChipDecision::NoIssue);
        train_pc(&mut flp, 0x400, true, 300);
        let tag = flp.predict_load(&ctx(0x400, 0xdead_0000));
        assert_eq!(
            tag.decision,
            OffChipDecision::IssueNow,
            "saturated off-chip PC must issue immediately (conf {})",
            tag.confidence
        );
    }

    #[test]
    fn moderate_confidence_takes_the_delayed_path() {
        let mut flp = Flp::new(FlpConfig::paper());
        // Alternate outcomes to keep the sum in the middle band.
        let pc = 0x500;
        let mut saw_delayed = false;
        for i in 0..400u64 {
            let c = ctx(pc, 0x200_0000 + i * 4096);
            let tag = flp.predict_load(&c);
            if tag.decision == OffChipDecision::IssueOnL1dMiss {
                saw_delayed = true;
            }
            let served = if i % 3 != 0 { Level::Dram } else { Level::L2 };
            flp.train_load(&c, &tag, served);
        }
        assert!(
            saw_delayed,
            "a 2:1 off-chip PC must pass through the delayed band"
        );
    }

    #[test]
    fn never_mode_never_delays() {
        let mut flp = Flp::new(FlpConfig::no_delay());
        train_pc(&mut flp, 0x600, true, 300);
        for i in 0..50u64 {
            let tag = flp.predict_load(&ctx(0x600, 0x300_0000 + i * 4096));
            assert_ne!(tag.decision, OffChipDecision::IssueOnL1dMiss);
        }
    }

    #[test]
    fn always_mode_never_issues_at_core() {
        let mut flp = Flp::new(FlpConfig::always_delay());
        train_pc(&mut flp, 0x700, true, 300);
        for i in 0..50u64 {
            let tag = flp.predict_load(&ctx(0x700, 0x400_0000 + i * 4096));
            assert_ne!(tag.decision, OffChipDecision::IssueNow);
        }
    }

    #[test]
    fn onchip_pc_is_suppressed() {
        let mut flp = Flp::new(FlpConfig::paper());
        train_pc(&mut flp, 0x800, false, 300);
        let tag = flp.predict_load(&ctx(0x800, 0x500_0000));
        assert_eq!(tag.decision, OffChipDecision::NoIssue);
        assert!(tag.confidence < 0);
    }
}
