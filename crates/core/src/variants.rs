//! The Figure-15 ablation variants: each TLP component enabled in turn.
//!
//! | variant | FLP | delay | SLP | leveling feature |
//! |---------|-----|-------|-----|------------------|
//! | `FlpOnly` | ✓ | never | — | — |
//! | `SlpOnly` | — | — | ✓ | — |
//! | `Tsp` | ✓ | never | ✓ | — |
//! | `DelayedTsp` | ✓ | always | ✓ | — |
//! | `SelectiveTsp` | ✓ | selective | ✓ | — |
//! | `Full` (TLP) | ✓ | selective | ✓ | ✓ |

use crate::flp::{Flp, FlpConfig};
use crate::slp::{Slp, SlpConfig};
use crate::TlpConfig;

/// Which subset of TLP to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlpVariant {
    /// FLP predictor alone, without selective delay (≈ Hermes with FLP
    /// features).
    FlpOnly,
    /// SLP prefetch filter alone (no off-chip prediction for demands, so
    /// no leveling feature input).
    SlpOnly,
    /// Two-Step Predictor: FLP (no delay) + SLP (no leveling).
    Tsp,
    /// TSP with every speculative request delayed to the L1D miss.
    DelayedTsp,
    /// TSP with the paper's selective delay.
    SelectiveTsp,
    /// The complete TLP proposal.
    Full,
}

impl TlpVariant {
    /// All variants in the Figure-15 order.
    pub const ALL: [TlpVariant; 6] = [
        TlpVariant::FlpOnly,
        TlpVariant::SlpOnly,
        TlpVariant::Tsp,
        TlpVariant::DelayedTsp,
        TlpVariant::SelectiveTsp,
        TlpVariant::Full,
    ];

    /// Display name used in reports (matches the paper's labels).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TlpVariant::FlpOnly => "FLP",
            TlpVariant::SlpOnly => "SLP",
            TlpVariant::Tsp => "TSP",
            TlpVariant::DelayedTsp => "Delayed TSP",
            TlpVariant::SelectiveTsp => "Selective TSP",
            TlpVariant::Full => "TLP",
        }
    }

    /// Builds the FLP/SLP halves for this variant from a base config.
    #[must_use]
    pub fn build(self, cfg: &TlpConfig) -> (Option<Flp>, Option<Slp>) {
        let flp_cfg = |delay| FlpConfig { delay, ..cfg.flp };
        let slp_plain = SlpConfig {
            use_leveling: false,
            ..cfg.slp
        };
        match self {
            TlpVariant::FlpOnly => (Some(Flp::new(flp_cfg(crate::flp::DelayMode::Never))), None),
            TlpVariant::SlpOnly => (None, Some(Slp::new(slp_plain))),
            TlpVariant::Tsp => (
                Some(Flp::new(flp_cfg(crate::flp::DelayMode::Never))),
                Some(Slp::new(slp_plain)),
            ),
            TlpVariant::DelayedTsp => (
                Some(Flp::new(flp_cfg(crate::flp::DelayMode::Always))),
                Some(Slp::new(slp_plain)),
            ),
            TlpVariant::SelectiveTsp => (
                Some(Flp::new(flp_cfg(crate::flp::DelayMode::Selective))),
                Some(Slp::new(slp_plain)),
            ),
            TlpVariant::Full => (
                Some(Flp::new(flp_cfg(crate::flp::DelayMode::Selective))),
                Some(Slp::new(SlpConfig {
                    use_leveling: true,
                    ..cfg.slp
                })),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flp::DelayMode;

    #[test]
    fn variants_build_the_right_components() {
        let cfg = TlpConfig::paper();
        let (f, s) = TlpVariant::FlpOnly.build(&cfg);
        assert!(f.is_some() && s.is_none());
        let (f, s) = TlpVariant::SlpOnly.build(&cfg);
        assert!(f.is_none() && s.is_some());
        for v in [
            TlpVariant::Tsp,
            TlpVariant::DelayedTsp,
            TlpVariant::SelectiveTsp,
            TlpVariant::Full,
        ] {
            let (f, s) = v.build(&cfg);
            assert!(f.is_some() && s.is_some(), "{v:?} must build both");
        }
    }

    #[test]
    fn delay_modes_match_figure_15() {
        let cfg = TlpConfig::paper();
        let delay = |v: TlpVariant| v.build(&cfg).0.map(|f| f.config().delay);
        assert_eq!(delay(TlpVariant::FlpOnly), Some(DelayMode::Never));
        assert_eq!(delay(TlpVariant::Tsp), Some(DelayMode::Never));
        assert_eq!(delay(TlpVariant::DelayedTsp), Some(DelayMode::Always));
        assert_eq!(delay(TlpVariant::SelectiveTsp), Some(DelayMode::Selective));
        assert_eq!(delay(TlpVariant::Full), Some(DelayMode::Selective));
    }

    #[test]
    fn only_full_tlp_uses_the_leveling_feature() {
        let cfg = TlpConfig::paper();
        for v in TlpVariant::ALL {
            if let (_, Some(slp)) = v.build(&cfg) {
                assert_eq!(
                    slp.config().use_leveling,
                    v == TlpVariant::Full,
                    "{v:?} leveling misconfigured"
                );
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> =
            TlpVariant::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), TlpVariant::ALL.len());
    }
}
