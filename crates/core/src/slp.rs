//! SLP: the Second Level Perceptron predictor (paper §IV-B) — off-chip
//! prediction for L1D prefetch requests, used as an adaptive prefetch
//! filter.
//!
//! SLP sits beside the L1D and is consulted when the L1D prefetcher issues
//! a candidate. It reuses the Table-I features with **physical** addresses
//! (SLP operates post-translation) and adds the *leveling feature*: the
//! FLP output bit of the demand access that triggered the prefetch,
//! combined with the prefetch target's cache-line offset. A prefetch whose
//! confidence exceeds τ_pref is predicted to be served from DRAM — which
//! Figure 5 shows is overwhelmingly correlated with being useless — and is
//! discarded.
//!
//! Training happens at prefetch completion with the true serving level,
//! exactly like FLP.

use tlp_perceptron::{FeatureIndices, HashedPerceptron, TableSpec};
use tlp_sim::hooks::{FilterTag, L1FilterCtx, L1PrefetchFilter};
use tlp_sim::types::Level;

use crate::features::{FeatureState, NUM_BASE_FEATURES};
use crate::offchip_base::OffChipPerceptronConfig;

/// SLP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlpConfig {
    /// Base perceptron geometry (shared shape with FLP).
    pub perceptron: OffChipPerceptronConfig,
    /// Entries in the leveling-feature table.
    pub leveling_table: usize,
    /// Whether the leveling feature is active (off in the TSP ablations).
    pub use_leveling: bool,
    /// Discard threshold τ_pref.
    pub tau_pref: i32,
}

impl SlpConfig {
    /// The paper's SLP.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            perceptron: OffChipPerceptronConfig::paper(),
            leveling_table: 512,
            use_leveling: true,
            tau_pref: 6,
        }
    }

    /// SLP without the leveling feature (the TSP ablations).
    #[must_use]
    pub fn without_leveling() -> Self {
        Self {
            use_leveling: false,
            ..Self::paper()
        }
    }
}

/// The Second Level Perceptron prefetch filter.
#[derive(Debug)]
pub struct Slp {
    perceptron: HashedPerceptron,
    features: FeatureState,
    cfg: SlpConfig,
}

impl Slp {
    /// Builds SLP from its configuration. Disabled base features get no
    /// weight table.
    #[must_use]
    pub fn new(cfg: SlpConfig) -> Self {
        let mut specs: Vec<TableSpec> = cfg
            .perceptron
            .enabled_sizes()
            .iter()
            .map(|&s| TableSpec::new(s, cfg.perceptron.weight_bits))
            .collect();
        if cfg.use_leveling {
            specs.push(TableSpec::new(
                cfg.leveling_table,
                cfg.perceptron.weight_bits,
            ));
        }
        assert!(!specs.is_empty(), "at least one feature must be enabled");
        Self {
            perceptron: HashedPerceptron::new(&specs),
            features: FeatureState::new(),
            cfg,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SlpConfig {
        &self.cfg
    }

    /// Weight storage in bits.
    #[must_use]
    pub fn weight_storage_bits(&self) -> usize {
        self.perceptron.storage_bits()
    }

    fn indices_for(&mut self, ctx: &L1FilterCtx) -> FeatureIndices {
        let first = self.features.first_access(ctx.pf_paddr);
        let base = self
            .features
            .base_hashes(ctx.trigger_pc, ctx.pf_paddr, first);
        debug_assert_eq!(base.len(), NUM_BASE_FEATURES);
        let mut hashes: Vec<u64> = base
            .iter()
            .zip(&self.cfg.perceptron.enabled)
            .filter_map(|(&h, &e)| e.then_some(h))
            .collect();
        if self.cfg.use_leveling {
            hashes.push(FeatureState::leveling_hash(
                ctx.trigger_tag.predicted_offchip(),
                ctx.pf_paddr,
            ));
        }
        self.perceptron.indices(&hashes)
    }
}

impl L1PrefetchFilter for Slp {
    fn filter(&mut self, ctx: &L1FilterCtx) -> (bool, FilterTag) {
        let indices = self.indices_for(ctx);
        let sum = self.perceptron.sum(&indices);
        self.features.observe_pc(ctx.trigger_pc);
        let drop = sum > self.cfg.tau_pref;
        (
            !drop,
            FilterTag {
                confidence: sum,
                indices,
                valid: true,
            },
        )
    }

    fn train(&mut self, _ctx: &L1FilterCtx, tag: &FilterTag, served_from: Level) {
        if !tag.valid {
            return;
        }
        self.perceptron.train_thresholded(
            &tag.indices,
            served_from.is_off_chip(),
            tag.confidence,
            self.cfg.perceptron.theta,
        );
    }

    fn name(&self) -> &'static str {
        if self.cfg.use_leveling {
            "slp"
        } else {
            "slp-noleveling"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_sim::hooks::{OffChipDecision, OffChipTag};

    fn ctx(trigger_pc: u64, pf_paddr: u64, trigger_offchip: bool) -> L1FilterCtx {
        L1FilterCtx {
            core: 0,
            trigger_pc,
            trigger_vaddr: 0x1000,
            pf_vaddr: pf_paddr,
            pf_paddr,
            trigger_tag: OffChipTag::from_decision(if trigger_offchip {
                OffChipDecision::IssueOnL1dMiss
            } else {
                OffChipDecision::NoIssue
            }),
            cycle: 0,
        }
    }

    /// Trains until the filter saturates toward `offchip` for a PC.
    fn train(slp: &mut Slp, pc: u64, offchip: bool, n: usize) {
        for i in 0..n {
            let c = ctx(pc, 0x100_0000 + i as u64 * 4096, offchip);
            let (_, tag) = slp.filter(&c);
            slp.train(&c, &tag, if offchip { Level::Dram } else { Level::L2 });
        }
    }

    #[test]
    fn cold_filter_issues_everything() {
        let mut slp = Slp::new(SlpConfig::paper());
        let (issue, tag) = slp.filter(&ctx(0x400, 0x9000, false));
        assert!(issue);
        assert!(tag.valid);
        assert_eq!(tag.confidence, 0);
    }

    #[test]
    fn learns_to_drop_offchip_prefetches() {
        let mut slp = Slp::new(SlpConfig::paper());
        train(&mut slp, 0x400, true, 300);
        let (issue, tag) = slp.filter(&ctx(0x400, 0x900_0000, true));
        assert!(
            !issue,
            "saturated off-chip prefetch must be dropped ({})",
            tag.confidence
        );
    }

    #[test]
    fn keeps_onchip_prefetches() {
        let mut slp = Slp::new(SlpConfig::paper());
        train(&mut slp, 0x500, false, 300);
        let (issue, _) = slp.filter(&ctx(0x500, 0x9000, false));
        assert!(issue);
    }

    #[test]
    fn leveling_feature_separates_trigger_kinds() {
        // Train: prefetches triggered by off-chip demands go off-chip;
        // prefetches from on-chip demands stay on-chip. Same PC, same
        // offsets — only the leveling feature can tell them apart.
        let mut slp = Slp::new(SlpConfig::paper());
        for i in 0..400u64 {
            let off = ctx(0x600, 0x100_0000 + (i % 64) * 4096 + 0x40, true);
            let (_, t1) = slp.filter(&off);
            slp.train(&off, &t1, Level::Dram);
            let on = ctx(0x600, 0x100_0000 + (i % 64) * 4096 + 0x40, false);
            let (_, t2) = slp.filter(&on);
            slp.train(&on, &t2, Level::L2);
        }
        let (_, t_off) = slp.filter(&ctx(0x600, 0x500_0000 + 0x40, true));
        let (_, t_on) = slp.filter(&ctx(0x600, 0x500_0000 + 0x40, false));
        assert!(
            t_off.confidence > t_on.confidence,
            "leveling feature must separate: off {} vs on {}",
            t_off.confidence,
            t_on.confidence
        );
    }

    #[test]
    fn without_leveling_cannot_separate_trigger_kinds() {
        let mut slp = Slp::new(SlpConfig::without_leveling());
        // Warm the page buffer so the first-access bit is stable across the
        // two compared lookups.
        let _ = slp.indices_for(&ctx(0x600, 0x700_0000, true));
        let a = slp.indices_for(&ctx(0x600, 0x700_0000, true));
        let b = slp.indices_for(&ctx(0x600, 0x700_0000, false));
        assert_eq!(a, b, "without leveling the tag bit must not matter");
    }

    #[test]
    fn storage_grows_with_leveling() {
        let with = Slp::new(SlpConfig::paper());
        let without = Slp::new(SlpConfig::without_leveling());
        assert_eq!(
            with.weight_storage_bits() - without.weight_storage_bits(),
            512 * 5
        );
    }
}
