//! Parameterized TLP knobs (the sensitivity extension experiments:
//! threshold sweeps, drop-one-feature, storage resizing), plus their
//! plugin-parameter round-trip.
//!
//! This type used to live in the harness; it moved here when component
//! construction became registry-driven, so the `flp`/`slp` factories and
//! the harness share one knob→config materialization.

use tlp_plugin::{Params, PluginError};

use crate::offchip_base::OffChipPerceptronConfig;
use crate::TlpConfig;

/// Knobs for a parameterized TLP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlpParams {
    /// FLP issue-immediately threshold τ_high.
    pub tau_high: i32,
    /// FLP predict-off-chip threshold τ_low.
    pub tau_low: i32,
    /// SLP discard threshold τ_pref.
    pub tau_pref: i32,
    /// Weight-table resize factor `(num, den)`; `(1, 1)` is Table II.
    pub resize: (u8, u8),
    /// Base feature dropped from both FLP and SLP (None = all five).
    pub drop_feature: Option<u8>,
}

/// The parameter keys [`TlpParams::from_params`] understands; a reference
/// carrying any of them materializes through the knob path.
pub const TLP_KNOB_KEYS: [&str; 5] = ["tau_high", "tau_low", "tau_pref", "resize", "drop_feature"];

impl TlpParams {
    /// The paper's operating point.
    #[must_use]
    pub fn paper() -> Self {
        let flp = crate::FlpConfig::paper();
        let slp = crate::SlpConfig::paper();
        Self {
            tau_high: flp.tau_high,
            tau_low: flp.tau_low,
            tau_pref: slp.tau_pref,
            resize: (1, 1),
            drop_feature: None,
        }
    }

    /// Materializes a [`TlpConfig`] with these knobs applied.
    #[must_use]
    pub fn build_config(self) -> TlpConfig {
        let perceptron = match self.drop_feature {
            Some(i) => OffChipPerceptronConfig::without_feature(i as usize),
            None => {
                OffChipPerceptronConfig::resized(self.resize.0 as usize, self.resize.1 as usize)
            }
        };
        let mut cfg = TlpConfig::paper();
        cfg.flp.perceptron = perceptron;
        cfg.flp.tau_high = self.tau_high;
        cfg.flp.tau_low = self.tau_low;
        cfg.slp.perceptron = perceptron;
        cfg.slp.tau_pref = self.tau_pref;
        // The leveling table resizes with the rest of the budget.
        let scaled = (cfg.slp.leveling_table * self.resize.0 as usize / self.resize.1 as usize)
            .max(16)
            .next_power_of_two();
        cfg.slp.leveling_table = if scaled.is_power_of_two() && scaled <= 4096 {
            scaled
        } else {
            512
        };
        cfg
    }

    /// A short display label, e.g. `τh=14 τl=2 τp=6`.
    #[must_use]
    pub fn label(&self) -> String {
        let mut s = format!(
            "τh={} τl={} τp={}",
            self.tau_high, self.tau_low, self.tau_pref
        );
        if self.resize != (1, 1) {
            s.push_str(&format!(" ×{}/{}", self.resize.0, self.resize.1));
        }
        if let Some(f) = self.drop_feature {
            s.push_str(&format!(" -f{f}"));
        }
        s
    }

    /// The canonical cache-key body, built from named fields. The format
    /// is pinned byte-for-byte to the historical derived-`Debug`
    /// rendering (`TlpParams { tau_high: .., .., drop_feature: .. }`) so
    /// every pre-registry cache entry and fixture stays addressable —
    /// unlike `format!("{self:?}")`, it can no longer silently change
    /// when a field is renamed or reordered.
    #[must_use]
    pub fn canonical_key(&self) -> String {
        let drop_feature = match self.drop_feature {
            None => "None".to_owned(),
            Some(f) => format!("Some({f})"),
        };
        format!(
            "TlpParams {{ tau_high: {}, tau_low: {}, tau_pref: {}, resize: ({}, {}), drop_feature: {} }}",
            self.tau_high, self.tau_low, self.tau_pref, self.resize.0, self.resize.1, drop_feature
        )
    }

    /// Whether a parameter map carries any TLP knob key.
    #[must_use]
    pub fn any_knobs(params: &Params) -> bool {
        TLP_KNOB_KEYS.iter().any(|k| params.get(k).is_some())
    }

    /// Parses knobs from a plugin parameter map; absent keys keep their
    /// paper defaults. `resize` is spelled `num/den` (e.g. `1/2`).
    ///
    /// # Errors
    ///
    /// Returns [`PluginError::InvalidParam`] for unparseable values.
    pub fn from_params(component: &str, params: &Params) -> Result<Self, PluginError> {
        let mut p = Self::paper();
        if let Some(v) = params.get_parsed::<i32>(component, "tau_high")? {
            p.tau_high = v;
        }
        if let Some(v) = params.get_parsed::<i32>(component, "tau_low")? {
            p.tau_low = v;
        }
        if let Some(v) = params.get_parsed::<i32>(component, "tau_pref")? {
            p.tau_pref = v;
        }
        if let Some(raw) = params.get("resize") {
            let parts: Vec<&str> = raw.split('/').collect();
            let parsed = if parts.len() == 2 {
                match (parts[0].parse::<u8>(), parts[1].parse::<u8>()) {
                    (Ok(n), Ok(d)) if n > 0 && d > 0 => Some((n, d)),
                    _ => None,
                }
            } else {
                None
            };
            p.resize = parsed.ok_or_else(|| PluginError::InvalidParam {
                component: component.to_owned(),
                param: "resize".to_owned(),
                message: format!("expected 'num/den' with positive factors, got '{raw}'"),
            })?;
        }
        if let Some(v) = params.get_parsed::<u8>(component, "drop_feature")? {
            if usize::from(v) >= crate::features::NUM_BASE_FEATURES {
                return Err(PluginError::InvalidParam {
                    component: component.to_owned(),
                    param: "drop_feature".to_owned(),
                    message: format!(
                        "feature index {v} out of range (< {})",
                        crate::features::NUM_BASE_FEATURES
                    ),
                });
            }
            p.drop_feature = Some(v);
        }
        Ok(p)
    }

    /// Renders the knobs as a plugin parameter map (the inverse of
    /// [`TlpParams::from_params`]). All three thresholds are always
    /// emitted; `resize`/`drop_feature` only when off-default, keeping
    /// derived component keys short.
    #[must_use]
    pub fn to_params(&self) -> Params {
        let mut p = Params::new()
            .with("tau_high", self.tau_high)
            .with("tau_low", self.tau_low)
            .with("tau_pref", self.tau_pref);
        if self.resize != (1, 1) {
            p.set("resize", format!("{}/{}", self.resize.0, self.resize.1));
        }
        if let Some(f) = self.drop_feature {
            p.set("drop_feature", f);
        }
        p
    }
}

impl Default for TlpParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_key_is_pinned_to_the_historical_debug_string() {
        // Literal pin: the exact pre-registry cache-key body. If this
        // test fails, warm caches and golden fixtures are invalidated —
        // do not "fix" the expectation without bumping CODE_VERSION.
        assert_eq!(
            TlpParams::paper().canonical_key(),
            "TlpParams { tau_high: 14, tau_low: 2, tau_pref: 6, resize: (1, 1), drop_feature: None }"
        );
        // And the general property: byte-identical to derived Debug for
        // arbitrary knob values, including Some(drop_feature).
        let p = TlpParams {
            tau_high: 20,
            tau_low: 4,
            tau_pref: 10,
            resize: (1, 2),
            drop_feature: Some(3),
        };
        assert_eq!(p.canonical_key(), format!("{p:?}"));
        assert_eq!(
            TlpParams::paper().canonical_key(),
            format!("{:?}", TlpParams::paper())
        );
    }

    #[test]
    fn params_round_trip() {
        let p = TlpParams {
            tau_high: 20,
            tau_low: 4,
            tau_pref: 10,
            resize: (1, 2),
            drop_feature: Some(3),
        };
        let map = p.to_params();
        assert!(TlpParams::any_knobs(&map));
        assert_eq!(TlpParams::from_params("flp", &map).unwrap(), p);
        let paper = TlpParams::paper();
        assert_eq!(
            TlpParams::from_params("flp", &paper.to_params()).unwrap(),
            paper
        );
        assert!(!TlpParams::any_knobs(&Params::new()));
    }

    #[test]
    fn bad_knob_values_are_rejected() {
        for (k, v) in [
            ("tau_high", "loud"),
            ("resize", "3"),
            ("resize", "0/2"),
            ("resize", "a/b"),
            ("drop_feature", "9"),
        ] {
            let map = Params::new().with(k, v);
            assert!(
                TlpParams::from_params("flp", &map).is_err(),
                "{k}={v} must be rejected"
            );
        }
    }

    #[test]
    fn custom_params_materialize() {
        let p = TlpParams {
            tau_high: 20,
            tau_low: 4,
            tau_pref: 10,
            resize: (1, 2),
            drop_feature: None,
        };
        let cfg = p.build_config();
        assert_eq!(cfg.flp.tau_high, 20);
        assert_eq!(cfg.flp.tau_low, 4);
        assert_eq!(cfg.slp.tau_pref, 10);
        assert_eq!(cfg.flp.perceptron.table_sizes[0], 512);
        assert_eq!(cfg.slp.perceptron.table_sizes[0], 512);
    }

    #[test]
    fn paper_params_reproduce_paper_config() {
        let cfg = TlpParams::paper().build_config();
        let paper = TlpConfig::paper();
        assert_eq!(cfg.flp.tau_high, paper.flp.tau_high);
        assert_eq!(cfg.flp.tau_low, paper.flp.tau_low);
        assert_eq!(cfg.slp.tau_pref, paper.slp.tau_pref);
        assert_eq!(
            cfg.flp.perceptron.table_sizes,
            paper.flp.perceptron.table_sizes
        );
        assert_eq!(cfg.slp.leveling_table, paper.slp.leveling_table);
    }

    #[test]
    fn drop_feature_params_shrink_tables() {
        let p = TlpParams {
            drop_feature: Some(0),
            ..TlpParams::paper()
        };
        let cfg = p.build_config();
        assert_eq!(cfg.flp.perceptron.enabled_count(), 4);
        assert!(p.label().contains("-f0"));
    }
}
