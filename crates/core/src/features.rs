//! The program features of Table I, shared by FLP, SLP and Hermes.
//!
//! | feature | components |
//! |---------|------------|
//! | 1 | PC ⊕ cache-line offset (within the page) |
//! | 2 | PC ⊕ byte offset (within the line) |
//! | 3 | PC + first access |
//! | 4 | Cache-line offset + first access |
//! | 5 | Last-4 load PCs |
//! | 6 (SLP only) | FLP prediction + cache-line offset (the leveling feature) |
//!
//! "First access" is tracked by a small page buffer: a 64-entry LRU table
//! of recently-touched pages with one touched-bit per cache line
//! (64 × (16-bit tag + 64-bit bitmap) = 0.63 KB, matching Table II).

use tlp_perceptron::{combine, mix64};

/// Number of base features (Table I's "legacy Hermes features").
pub const NUM_BASE_FEATURES: usize = 5;

/// Page size used for feature extraction (4 KB).
const PAGE_SIZE: u64 = 4096;
const LINE_SIZE: u64 = 64;

#[derive(Debug, Clone, Copy, Default)]
struct PageEntry {
    valid: bool,
    page: u64,
    touched: u64,
    stamp: u64,
}

/// The first-access tracker: per recently-seen page, which cache lines have
/// been touched.
#[derive(Debug, Clone)]
pub struct PageBuffer {
    entries: Vec<PageEntry>,
    clock: u64,
}

impl PageBuffer {
    /// Table II geometry: 64 entries.
    pub const ENTRIES: usize = 64;
    /// Page-tag bits modelled for the storage budget.
    pub const TAG_BITS: usize = 16;

    /// Creates an empty page buffer.
    #[must_use]
    pub fn new() -> Self {
        Self {
            entries: vec![PageEntry::default(); Self::ENTRIES],
            clock: 0,
        }
    }

    /// Returns true when `addr`'s cache line is touched for the first time
    /// within its (tracked) page, and records the touch. Pages evicted from
    /// the buffer restart cold, exactly like the hardware structure.
    pub fn first_access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let page = addr / PAGE_SIZE;
        let bit = 1u64 << ((addr % PAGE_SIZE) / LINE_SIZE);
        if let Some(e) = self.entries.iter_mut().find(|e| e.valid && e.page == page) {
            e.stamp = self.clock;
            let first = e.touched & bit == 0;
            e.touched |= bit;
            return first;
        }
        let slot = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| if e.valid { e.stamp } else { 0 })
            .map(|(i, _)| i)
            .expect("buffer is non-empty");
        self.entries[slot] = PageEntry {
            valid: true,
            page,
            touched: bit,
            stamp: self.clock,
        };
        true
    }

    /// Storage in bits (Table II: 0.63 KB).
    #[must_use]
    pub fn storage_bits() -> usize {
        Self::ENTRIES * (Self::TAG_BITS + 64)
    }
}

impl Default for PageBuffer {
    fn default() -> Self {
        Self::new()
    }
}

/// Rolling feature state: the last-4 load-PC history plus the page buffer.
#[derive(Debug, Clone)]
pub struct FeatureState {
    last_pcs: [u64; 4],
    page_buffer: PageBuffer,
}

impl FeatureState {
    /// Creates empty state.
    #[must_use]
    pub fn new() -> Self {
        Self {
            last_pcs: [0; 4],
            page_buffer: PageBuffer::new(),
        }
    }

    /// Consults the page buffer for `addr` (recording the touch).
    pub fn first_access(&mut self, addr: u64) -> bool {
        self.page_buffer.first_access(addr)
    }

    /// Pushes `pc` into the last-4 history (call once per load, after
    /// prediction).
    pub fn observe_pc(&mut self, pc: u64) {
        self.last_pcs.rotate_right(1);
        self.last_pcs[0] = pc;
    }

    /// Computes the five Table-I feature hashes for (`pc`, `addr`) with the
    /// given first-access bit. `addr` is virtual for FLP, physical for SLP.
    #[must_use]
    pub fn base_hashes(&self, pc: u64, addr: u64, first: bool) -> [u64; NUM_BASE_FEATURES] {
        let line_off = (addr % PAGE_SIZE) / LINE_SIZE;
        let byte_off = addr % LINE_SIZE;
        let f = u64::from(first);
        let last4 = self
            .last_pcs
            .iter()
            .fold(0u64, |acc, &p| mix64(acc ^ p.rotate_left(17)));
        [
            combine(pc, line_off),
            combine(pc, byte_off.rotate_left(32)),
            combine(pc, 0x8000_0000 | f),
            combine(line_off, 0x4000_0000 | f),
            last4,
        ]
    }

    /// The SLP leveling feature: FLP output bit + cache-line offset.
    #[must_use]
    pub fn leveling_hash(flp_predicted_offchip: bool, addr: u64) -> u64 {
        let line_off = (addr % PAGE_SIZE) / LINE_SIZE;
        combine(u64::from(flp_predicted_offchip) << 8, line_off)
    }
}

impl Default for FeatureState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_buffer_tracks_first_access_per_line() {
        let mut pb = PageBuffer::new();
        assert!(pb.first_access(0x1000)); // line 0 of page 1
        assert!(!pb.first_access(0x1008)); // same line
        assert!(pb.first_access(0x1040)); // next line
        assert!(pb.first_access(0x2000)); // other page
        assert!(!pb.first_access(0x1000)); // still tracked
    }

    #[test]
    fn page_buffer_evicts_lru_and_restarts_cold() {
        let mut pb = PageBuffer::new();
        pb.first_access(0x0);
        // Touch 64 more pages: page 0 is evicted.
        for p in 1..=64u64 {
            pb.first_access(p * PAGE_SIZE);
        }
        assert!(
            pb.first_access(0x0),
            "evicted page must look first-access again"
        );
    }

    #[test]
    fn page_buffer_storage_matches_table_ii() {
        // 64 × 80 bits = 5120 bits = 0.625 KB ≈ the paper's 0.63 KB.
        assert_eq!(PageBuffer::storage_bits(), 5120);
    }

    #[test]
    fn hashes_differ_across_features_and_inputs() {
        let mut fs = FeatureState::new();
        let first = fs.first_access(0x1234_5678);
        let h = fs.base_hashes(0x400, 0x1234_5678, first);
        let set: std::collections::HashSet<u64> = h.iter().copied().collect();
        assert_eq!(set.len(), h.len(), "feature hashes must not collide");
        let h2 = fs.base_hashes(0x404, 0x1234_5678, first);
        assert_ne!(h[0], h2[0]);
    }

    #[test]
    fn first_access_bit_changes_features() {
        let fs = FeatureState::new();
        let a = fs.base_hashes(0x400, 0x9000, true);
        let b = fs.base_hashes(0x400, 0x9000, false);
        assert_ne!(a[2], b[2]);
        assert_ne!(a[3], b[3]);
        assert_eq!(a[0], b[0], "offset features ignore the first bit");
    }

    #[test]
    fn pc_history_changes_last4_feature() {
        let mut fs = FeatureState::new();
        let before = fs.base_hashes(0x400, 0x9000, false)[4];
        fs.observe_pc(0x1234);
        let after = fs.base_hashes(0x400, 0x9000, false)[4];
        assert_ne!(before, after);
    }

    #[test]
    fn leveling_feature_depends_on_bit_and_offset() {
        let a = FeatureState::leveling_hash(true, 0x40);
        let b = FeatureState::leveling_hash(false, 0x40);
        let c = FeatureState::leveling_hash(true, 0x80);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
