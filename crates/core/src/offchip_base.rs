//! The shared off-chip perceptron machinery: Table-I features feeding a
//! hashed perceptron. [`crate::Flp`] wraps it with selective delay;
//! `tlp-baselines`' Hermes wraps it with a single activation threshold.

use tlp_perceptron::{FeatureIndices, HashedPerceptron, TableSpec};

use crate::features::{FeatureState, NUM_BASE_FEATURES};

/// Geometry + training parameters of an off-chip perceptron.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffChipPerceptronConfig {
    /// Entries per feature table (Table II sizes the total at ~2.58 KB).
    pub table_sizes: [usize; NUM_BASE_FEATURES],
    /// Which base features contribute (all, except in the drop-one-feature
    /// ablation).
    pub enabled: [bool; NUM_BASE_FEATURES],
    /// Weight width in bits.
    pub weight_bits: u32,
    /// Perceptron training threshold θ.
    pub theta: i32,
}

impl OffChipPerceptronConfig {
    /// The paper's budget: 5 tables, 5-bit weights, 4096 weights total
    /// (2.5 KB — the paper reports 2.58 KB for its exact geometry).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            table_sizes: [1024, 1024, 1024, 512, 512],
            enabled: [true; NUM_BASE_FEATURES],
            weight_bits: 5,
            theta: 18,
        }
    }

    /// A geometry scaled by a power-of-two factor (the Figure-17
    /// "+7 KB storage" study enlarges Hermes with exactly this knob).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a power of two.
    #[must_use]
    pub fn scaled(factor: usize) -> Self {
        assert!(
            factor.is_power_of_two(),
            "scale factor must be a power of two"
        );
        let mut cfg = Self::paper();
        for s in &mut cfg.table_sizes {
            *s *= factor;
        }
        cfg
    }

    /// The paper geometry with every table resized by the rational factor
    /// `num / den` (the storage-sensitivity sweep shrinks as well as
    /// grows). Sizes are clamped to at least 16 entries and rounded down
    /// to a power of two so index hashing stays well distributed.
    ///
    /// # Panics
    ///
    /// Panics if `num` or `den` is zero.
    #[must_use]
    pub fn resized(num: usize, den: usize) -> Self {
        assert!(num > 0 && den > 0, "resize factor must be positive");
        let mut cfg = Self::paper();
        for s in &mut cfg.table_sizes {
            let scaled = (*s * num / den).max(16);
            *s = if scaled.is_power_of_two() {
                scaled
            } else {
                scaled.next_power_of_two() / 2
            };
        }
        cfg
    }

    /// The paper geometry with base feature `index` disabled (the
    /// drop-one-feature ablation).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn without_feature(index: usize) -> Self {
        assert!(index < NUM_BASE_FEATURES, "feature index out of range");
        let mut cfg = Self::paper();
        cfg.enabled[index] = false;
        cfg
    }

    /// Number of enabled base features.
    #[must_use]
    pub fn enabled_count(&self) -> usize {
        self.enabled.iter().filter(|&&e| e).count()
    }

    /// Table sizes of the enabled features only, in feature order.
    #[must_use]
    pub fn enabled_sizes(&self) -> Vec<usize> {
        self.table_sizes
            .iter()
            .zip(&self.enabled)
            .filter_map(|(&s, &e)| e.then_some(s))
            .collect()
    }
}

/// An off-chip perceptron: predicts whether an access will be served from
/// DRAM, from its PC/address features.
#[derive(Debug)]
pub struct OffChipPerceptron {
    perceptron: HashedPerceptron,
    features: FeatureState,
    enabled: [bool; NUM_BASE_FEATURES],
    theta: i32,
}

impl OffChipPerceptron {
    /// Builds the predictor. Disabled features get no weight table.
    #[must_use]
    pub fn new(cfg: OffChipPerceptronConfig) -> Self {
        let specs: Vec<TableSpec> = cfg
            .enabled_sizes()
            .iter()
            .map(|&s| TableSpec::new(s, cfg.weight_bits))
            .collect();
        assert!(!specs.is_empty(), "at least one feature must be enabled");
        Self {
            perceptron: HashedPerceptron::new(&specs),
            features: FeatureState::new(),
            enabled: cfg.enabled,
            theta: cfg.theta,
        }
    }

    /// Predicts for a load at (`pc`, `addr`): returns the confidence sum
    /// and the table indices to stash in the load-queue metadata. Updates
    /// the PC history and page buffer.
    pub fn predict(&mut self, pc: u64, addr: u64) -> (i32, FeatureIndices) {
        let first = self.features.first_access(addr);
        let all = self.features.base_hashes(pc, addr, first);
        let hashes: Vec<u64> = all
            .iter()
            .zip(&self.enabled)
            .filter_map(|(&h, &e)| e.then_some(h))
            .collect();
        let idx = self.perceptron.indices(&hashes);
        let sum = self.perceptron.sum(&idx);
        self.features.observe_pc(pc);
        (sum, idx)
    }

    /// Trains with the resolved outcome (`offchip` = served from DRAM),
    /// using the perceptron rule (update on mispredict or weak sum).
    pub fn train(&mut self, indices: &FeatureIndices, sum_at_predict: i32, offchip: bool) {
        self.perceptron
            .train_thresholded(indices, offchip, sum_at_predict, self.theta);
    }

    /// Weight storage in bits.
    #[must_use]
    pub fn weight_storage_bits(&self) -> usize {
        self.perceptron.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budget_is_2_5_kb() {
        let p = OffChipPerceptron::new(OffChipPerceptronConfig::paper());
        assert_eq!(p.weight_storage_bits(), 4096 * 5);
    }

    #[test]
    fn learns_an_always_offchip_pc() {
        let mut p = OffChipPerceptron::new(OffChipPerceptronConfig::paper());
        let pc = 0x400;
        for i in 0..200u64 {
            let addr = 0x10_0000 + i * 4096; // always-first-access pattern
            let (sum, idx) = p.predict(pc, addr);
            p.train(&idx, sum, true);
        }
        let (sum, _) = p.predict(pc, 0x90_0000);
        assert!(sum > 0, "trained-positive PC must predict off-chip: {sum}");
    }

    #[test]
    fn learns_an_onchip_pc_negatively() {
        let mut p = OffChipPerceptron::new(OffChipPerceptronConfig::paper());
        let pc = 0x500;
        for _ in 0..200 {
            let (sum, idx) = p.predict(pc, 0x2000);
            p.train(&idx, sum, false);
        }
        let (sum, _) = p.predict(pc, 0x2000);
        assert!(sum < 0, "trained-negative PC must predict on-chip: {sum}");
    }

    #[test]
    fn discriminates_between_two_pcs() {
        let mut p = OffChipPerceptron::new(OffChipPerceptronConfig::paper());
        for i in 0..300u64 {
            let (s1, i1) = p.predict(0x400, 0x100_0000 + i * 4096);
            p.train(&i1, s1, true);
            let (s2, i2) = p.predict(0x404, 0x8000);
            p.train(&i2, s2, false);
        }
        let (off, _) = p.predict(0x400, 0x200_0000);
        let (on, _) = p.predict(0x404, 0x8000);
        assert!(
            off > on + 10,
            "PCs must separate: offchip {off} vs onchip {on}"
        );
    }

    #[test]
    fn scaled_config_multiplies_tables() {
        let cfg = OffChipPerceptronConfig::scaled(4);
        assert_eq!(cfg.table_sizes[0], 4096);
        let p = OffChipPerceptron::new(cfg);
        assert_eq!(p.weight_storage_bits(), 4 * 4096 * 5);
    }

    #[test]
    fn resized_shrinks_to_power_of_two() {
        let half = OffChipPerceptronConfig::resized(1, 2);
        assert_eq!(half.table_sizes, [512, 512, 512, 256, 256]);
        let quarter = OffChipPerceptronConfig::resized(1, 4);
        assert_eq!(quarter.table_sizes, [256, 256, 256, 128, 128]);
        let double = OffChipPerceptronConfig::resized(2, 1);
        assert_eq!(double.table_sizes, [2048, 2048, 2048, 1024, 1024]);
        // Identity.
        assert_eq!(
            OffChipPerceptronConfig::resized(1, 1).table_sizes,
            OffChipPerceptronConfig::paper().table_sizes
        );
        // Floor at 16 entries.
        let tiny = OffChipPerceptronConfig::resized(1, 1024);
        assert!(tiny.table_sizes.iter().all(|&s| s == 16));
    }

    #[test]
    fn without_feature_drops_one_table() {
        let cfg = OffChipPerceptronConfig::without_feature(2);
        assert_eq!(cfg.enabled_count(), NUM_BASE_FEATURES - 1);
        assert_eq!(cfg.enabled_sizes(), vec![1024, 1024, 512, 512]);
        let p = OffChipPerceptron::new(cfg);
        let full = OffChipPerceptron::new(OffChipPerceptronConfig::paper());
        assert_eq!(
            full.weight_storage_bits() - p.weight_storage_bits(),
            1024 * 5
        );
    }

    #[test]
    fn masked_predictor_still_learns() {
        // Even without the last-4-PC feature, a PC-correlated pattern is
        // learnable through the remaining features.
        let mut p = OffChipPerceptron::new(OffChipPerceptronConfig::without_feature(4));
        for i in 0..300u64 {
            let (sum, idx) = p.predict(0x400, 0x100_0000 + i * 4096);
            p.train(&idx, sum, true);
        }
        let (sum, idx) = p.predict(0x400, 0x900_0000);
        assert!(sum > 0, "masked predictor must still learn: {sum}");
        assert_eq!(idx.len(), NUM_BASE_FEATURES - 1);
    }

    #[test]
    #[should_panic(expected = "at least one feature")]
    fn all_features_disabled_is_rejected() {
        let mut cfg = OffChipPerceptronConfig::paper();
        cfg.enabled = [false; NUM_BASE_FEATURES];
        let _ = OffChipPerceptron::new(cfg);
    }

    #[test]
    #[should_panic(expected = "feature index out of range")]
    fn without_feature_checks_bounds() {
        let _ = OffChipPerceptronConfig::without_feature(NUM_BASE_FEATURES);
    }
}
