//! The instruction record: the unit of communication between workload
//! generators and the CPU model.

use bytes::{Buf, BufMut};

/// An architectural register name.
///
/// The simulator models a flat namespace of 64 registers; workload
/// generators use fixed conventions (e.g. a pointer-chase keeps its cursor
/// in one register so that successive loads are truly dependent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// Number of architectural registers the simulator models.
    pub const COUNT: usize = 64;

    /// Creates a register, panicking when out of range.
    ///
    /// # Panics
    ///
    /// Panics if `r >= Reg::COUNT`.
    #[must_use]
    pub fn new(r: u8) -> Self {
        assert!((r as usize) < Self::COUNT, "register {r} out of range");
        Self(r)
    }

    /// Index into register-file-shaped arrays.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Instruction class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Memory load; `addr`/`size` are valid, result lands in `dst`.
    Load,
    /// Memory store; `addr`/`size` are valid, data comes from `src1`.
    Store,
    /// Integer ALU operation (1-cycle latency).
    Alu,
    /// Floating-point operation (multi-cycle latency).
    Fp,
    /// Conditional branch; `taken`/`target` are valid.
    Branch,
}

impl Op {
    /// True for [`Op::Load`].
    #[inline]
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self, Op::Load)
    }

    /// True for [`Op::Store`].
    #[inline]
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self, Op::Store)
    }

    /// True for loads and stores.
    #[inline]
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, Op::Load | Op::Store)
    }

    /// True for [`Op::Branch`].
    #[inline]
    #[must_use]
    pub fn is_branch(self) -> bool {
        matches!(self, Op::Branch)
    }

    fn code(self) -> u8 {
        match self {
            Op::Load => 0,
            Op::Store => 1,
            Op::Alu => 2,
            Op::Fp => 3,
            Op::Branch => 4,
        }
    }

    fn from_code(c: u8) -> Option<Self> {
        Some(match c {
            0 => Op::Load,
            1 => Op::Store,
            2 => Op::Alu,
            3 => Op::Fp,
            4 => Op::Branch,
            _ => return None,
        })
    }
}

/// One dynamic instruction, in the spirit of a ChampSim trace entry but with
/// named register operands so that dependency chains are explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Program counter of this instruction.
    pub pc: u64,
    /// Instruction class.
    pub op: Op,
    /// Destination register (loads, ALU, FP).
    pub dst: Option<Reg>,
    /// First source register.
    pub src1: Option<Reg>,
    /// Second source register.
    pub src2: Option<Reg>,
    /// Virtual address for memory operations; 0 otherwise.
    pub addr: u64,
    /// Access size in bytes for memory operations; 0 otherwise.
    pub size: u8,
    /// Branch outcome (valid for branches).
    pub taken: bool,
    /// Branch target (valid for branches).
    pub target: u64,
}

impl TraceRecord {
    /// Size of the fixed binary encoding produced by [`TraceRecord::encode`].
    pub const ENCODED_LEN: usize = 29;

    /// A load of `size` bytes at `addr` into `dst`, addressed by `srcs`.
    #[must_use]
    pub fn load(pc: u64, addr: u64, size: u8, dst: Reg, srcs: [Option<Reg>; 2]) -> Self {
        Self {
            pc,
            op: Op::Load,
            dst: Some(dst),
            src1: srcs[0],
            src2: srcs[1],
            addr,
            size,
            taken: false,
            target: 0,
        }
    }

    /// A store of `size` bytes at `addr`, data from `data`, address from `addr_reg`.
    #[must_use]
    pub fn store(pc: u64, addr: u64, size: u8, data: Option<Reg>, addr_reg: Option<Reg>) -> Self {
        Self {
            pc,
            op: Op::Store,
            dst: None,
            src1: data,
            src2: addr_reg,
            addr,
            size,
            taken: false,
            target: 0,
        }
    }

    /// An integer ALU op writing `dst`, reading `srcs`.
    #[must_use]
    pub fn alu(pc: u64, dst: Option<Reg>, srcs: [Option<Reg>; 2]) -> Self {
        Self {
            pc,
            op: Op::Alu,
            dst,
            src1: srcs[0],
            src2: srcs[1],
            addr: 0,
            size: 0,
            taken: false,
            target: 0,
        }
    }

    /// A floating-point op writing `dst`, reading `srcs`.
    #[must_use]
    pub fn fp(pc: u64, dst: Option<Reg>, srcs: [Option<Reg>; 2]) -> Self {
        Self {
            op: Op::Fp,
            ..Self::alu(pc, dst, srcs)
        }
    }

    /// A conditional branch with outcome `taken` and target `target`,
    /// conditioned on `src`.
    #[must_use]
    pub fn branch(pc: u64, taken: bool, target: u64, src: Option<Reg>) -> Self {
        Self {
            pc,
            op: Op::Branch,
            dst: None,
            src1: src,
            src2: None,
            addr: 0,
            size: 0,
            taken,
            target,
        }
    }

    /// Cache-line address (64-byte lines) for memory operations.
    #[inline]
    #[must_use]
    pub fn line_addr(&self) -> u64 {
        self.addr >> 6
    }

    /// Encodes the record into `buf` using a fixed 30-byte layout.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u64_le(self.pc);
        let mut flags = self.op.code();
        if self.taken {
            flags |= 0x80;
        }
        buf.put_u8(flags);
        buf.put_u8(self.dst.map_or(0xff, |r| r.0));
        buf.put_u8(self.src1.map_or(0xff, |r| r.0));
        buf.put_u8(self.src2.map_or(0xff, |r| r.0));
        buf.put_u64_le(self.addr);
        buf.put_u8(self.size);
        buf.put_u64_le(self.target);
    }

    /// Decodes a record previously written by [`TraceRecord::encode`].
    ///
    /// Returns `None` when the buffer is too short or the op code is invalid.
    pub fn decode<B: Buf>(buf: &mut B) -> Option<Self> {
        if buf.remaining() < Self::ENCODED_LEN {
            return None;
        }
        let pc = buf.get_u64_le();
        let flags = buf.get_u8();
        let op = Op::from_code(flags & 0x7f)?;
        let reg = |b: u8| if b == 0xff { None } else { Some(Reg(b)) };
        let dst = reg(buf.get_u8());
        let src1 = reg(buf.get_u8());
        let src2 = reg(buf.get_u8());
        let addr = buf.get_u64_le();
        let size = buf.get_u8();
        let target = buf.get_u64_le();
        Some(Self {
            pc,
            op,
            dst,
            src1,
            src2,
            addr,
            size,
            taken: flags & 0x80 != 0,
            target,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn constructors_set_operands() {
        let l = TraceRecord::load(0x400, 0x1000, 8, Reg(2), [Some(Reg(1)), None]);
        assert!(l.op.is_load() && l.op.is_mem());
        assert_eq!(l.dst, Some(Reg(2)));
        assert_eq!(l.src1, Some(Reg(1)));

        let s = TraceRecord::store(0x404, 0x2000, 4, Some(Reg(3)), Some(Reg(4)));
        assert!(s.op.is_store());
        assert_eq!(s.dst, None);

        let b = TraceRecord::branch(0x408, true, 0x400, Some(Reg(5)));
        assert!(b.op.is_branch() && b.taken);
        assert_eq!(b.target, 0x400);
    }

    #[test]
    fn line_addr_strips_offset() {
        let l = TraceRecord::load(0, 0x1043, 4, Reg(0), [None, None]);
        assert_eq!(l.line_addr(), 0x41);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let records = [
            TraceRecord::load(
                0xdead_beef,
                0x7fff_1234,
                8,
                Reg(63),
                [Some(Reg(0)), Some(Reg(31))],
            ),
            TraceRecord::store(0x1, 0x2, 1, None, None),
            TraceRecord::alu(0x42, Some(Reg(7)), [Some(Reg(8)), None]),
            TraceRecord::fp(0x44, Some(Reg(9)), [Some(Reg(10)), Some(Reg(11))]),
            TraceRecord::branch(0x1000, true, 0xff0, Some(Reg(1))),
            TraceRecord::branch(0x1004, false, 0x1010, None),
        ];
        let mut buf = BytesMut::new();
        for r in &records {
            r.encode(&mut buf);
        }
        assert_eq!(buf.len(), records.len() * TraceRecord::ENCODED_LEN);
        let mut buf = buf.freeze();
        for r in &records {
            assert_eq!(TraceRecord::decode(&mut buf), Some(*r));
        }
        assert_eq!(TraceRecord::decode(&mut buf), None);
    }

    #[test]
    fn decode_rejects_short_buffer() {
        let mut short = &[0u8; 5][..];
        assert_eq!(TraceRecord::decode(&mut short), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_new_validates() {
        let _ = Reg::new(64);
    }
}
