//! Trace sources: where the simulator pulls records from.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};

use crate::emit::Workload;
use crate::record::TraceRecord;
use crate::sink::{RecorderSink, TraceSink};

/// The producer side consumed by the CPU model.
///
/// A source is infinite from the simulator's point of view: workload
/// generators are restarted as needed, matching the paper's methodology of
/// simulating a fixed instruction budget regardless of kernel length.
pub trait TraceSource: Send {
    /// Produces the next dynamic instruction.
    ///
    /// Returns `None` only if the source is genuinely exhausted (finite
    /// captured traces); generator-backed sources never return `None`.
    fn next_record(&mut self) -> Option<TraceRecord>;

    /// Stable workload name for reporting.
    fn name(&self) -> &str;
}

/// Captures `budget` records from a workload by re-running it as needed.
///
/// # Panics
///
/// Panics if the workload emits no records at all (a broken generator).
#[must_use]
pub fn capture(workload: &dyn Workload, budget: usize) -> Vec<TraceRecord> {
    let mut sink = RecorderSink::new(budget);
    let mut guard = 0;
    while !sink.is_closed() {
        let before = sink.len();
        workload.generate(&mut sink);
        assert!(
            sink.len() > before || sink.is_closed(),
            "workload {} emitted no records",
            workload.name()
        );
        guard += 1;
        assert!(guard < 1_000_000, "workload restart runaway");
    }
    sink.into_records()
}

/// A finite, in-memory trace that replays captured records in a loop.
#[derive(Debug, Clone)]
pub struct VecTrace {
    name: String,
    records: Arc<Vec<TraceRecord>>,
    pos: usize,
    looping: bool,
}

impl VecTrace {
    /// Wraps captured records; replays once then ends.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, records: Vec<TraceRecord>) -> Self {
        assert!(!records.is_empty(), "empty trace");
        Self {
            name: name.into(),
            records: Arc::new(records),
            pos: 0,
            looping: false,
        }
    }

    /// Wraps captured records and loops forever (SimPoint-style replay).
    #[must_use]
    pub fn looping(name: impl Into<String>, records: Vec<TraceRecord>) -> Self {
        let mut t = Self::new(name, records);
        t.looping = true;
        t
    }

    /// Loops over records already shared behind an `Arc`, without copying.
    ///
    /// The harness trace tier hands every core the same captured buffer;
    /// this constructor keeps that hand-off allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty.
    #[must_use]
    pub fn looping_shared(name: impl Into<String>, records: Arc<Vec<TraceRecord>>) -> Self {
        assert!(!records.is_empty(), "empty trace");
        Self {
            name: name.into(),
            records,
            pos: 0,
            looping: true,
        }
    }

    /// Captures `budget` records from `workload` into a looping trace.
    #[must_use]
    pub fn from_workload(workload: &dyn Workload, budget: usize) -> Self {
        Self::looping(workload.name().to_owned(), capture(workload, budget))
    }

    /// Number of distinct records before looping.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Always false: construction rejects empty traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl TraceSource for VecTrace {
    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.pos >= self.records.len() {
            if !self.looping {
                return None;
            }
            self.pos = 0;
        }
        let r = self.records[self.pos];
        self.pos += 1;
        Some(r)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

struct ChannelSink {
    tx: Sender<TraceRecord>,
    closed: Arc<AtomicBool>,
}

impl TraceSink for ChannelSink {
    fn emit(&mut self, rec: TraceRecord) -> bool {
        if self.closed.load(Ordering::Relaxed) {
            return false;
        }
        if self.tx.send(rec).is_err() {
            self.closed.store(true, Ordering::Relaxed);
            return false;
        }
        true
    }

    fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Relaxed)
    }
}

/// A trace streamed from a generator thread over a bounded channel.
///
/// This keeps memory bounded for long simulations: the generator runs ahead
/// of the simulator by at most the channel capacity, and is restarted
/// automatically when a kernel pass finishes.
pub struct StreamingTrace {
    name: String,
    rx: Receiver<TraceRecord>,
    closed: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl StreamingTrace {
    /// Default channel capacity (records buffered ahead of the simulator).
    pub const DEFAULT_CAPACITY: usize = 8192;

    /// Spawns a generator thread for `workload`.
    #[must_use]
    pub fn spawn(workload: Arc<dyn Workload>) -> Self {
        Self::spawn_with_capacity(workload, Self::DEFAULT_CAPACITY)
    }

    /// Spawns a generator thread with an explicit channel capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn spawn_with_capacity(workload: Arc<dyn Workload>, capacity: usize) -> Self {
        assert!(capacity > 0, "channel capacity must be positive");
        let (tx, rx) = bounded(capacity);
        let closed = Arc::new(AtomicBool::new(false));
        let name = workload.name().to_owned();
        let thread_closed = Arc::clone(&closed);
        let handle = std::thread::Builder::new()
            .name(format!("tracegen-{name}"))
            .spawn(move || {
                let mut sink = ChannelSink {
                    tx,
                    closed: thread_closed,
                };
                while !sink.is_closed() {
                    workload.generate(&mut sink);
                }
            })
            .expect("spawn trace generator thread");
        Self {
            name,
            rx,
            closed,
            handle: Some(handle),
        }
    }
}

impl TraceSource for StreamingTrace {
    fn next_record(&mut self) -> Option<TraceRecord> {
        self.rx.recv().ok()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for StreamingTrace {
    fn drop(&mut self) {
        self.closed.store(true, Ordering::Relaxed);
        // Drain so a blocked sender wakes up and observes the closed flag.
        while self.rx.try_recv().is_ok() {}
        // Drop the receiver end implicitly after join: detach by taking.
        if let Some(h) = self.handle.take() {
            // Keep draining until the generator exits to avoid deadlock on
            // the bounded channel.
            while !h.is_finished() {
                while self.rx.try_recv().is_ok() {}
                std::thread::yield_now();
            }
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for StreamingTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingTrace")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::{Emitter, Suite};
    use crate::record::Reg;

    struct TinyWorkload;

    impl Workload for TinyWorkload {
        fn name(&self) -> &str {
            "tiny"
        }
        fn suite(&self) -> Suite {
            Suite::Spec
        }
        fn generate(&self, sink: &mut dyn TraceSink) {
            let mut e = Emitter::new(sink, 0x1000);
            for i in 0..10u64 {
                if !e.load(0, 0x10_000 + i * 64, Reg(3), [None, None]) {
                    return;
                }
                e.alu(1, Some(Reg(5)), [Some(Reg(3)), Some(Reg(5))]);
                e.loop_branch(2, i != 9, 0);
            }
        }
    }

    #[test]
    fn capture_restarts_until_budget() {
        let recs = capture(&TinyWorkload, 95);
        assert_eq!(recs.len(), 95);
        // One pass is 30 records; the fourth pass is cut short.
        assert_eq!(recs[30].pc, recs[0].pc);
    }

    #[test]
    fn vec_trace_loops() {
        let mut t = VecTrace::looping("t", capture(&TinyWorkload, 30));
        for _ in 0..75 {
            assert!(t.next_record().is_some());
        }
        assert_eq!(t.name(), "t");
    }

    #[test]
    fn vec_trace_finite_ends() {
        let mut t = VecTrace::new("t", capture(&TinyWorkload, 5));
        for _ in 0..5 {
            assert!(t.next_record().is_some());
        }
        assert!(t.next_record().is_none());
    }

    #[test]
    fn streaming_trace_delivers_and_shuts_down() {
        let mut t = StreamingTrace::spawn(Arc::new(TinyWorkload));
        let mut n = 0;
        for _ in 0..50_000 {
            assert!(t.next_record().is_some());
            n += 1;
        }
        assert_eq!(n, 50_000);
        drop(t); // must not hang
    }

    #[test]
    fn streaming_matches_capture_prefix() {
        let reference = capture(&TinyWorkload, 100);
        let mut t = StreamingTrace::spawn(Arc::new(TinyWorkload));
        for r in &reference {
            assert_eq!(t.next_record().as_ref(), Some(r));
        }
    }
}
