//! The [`Workload`] trait and the [`Emitter`] helper that generators use to
//! produce well-formed instruction streams.

use crate::record::{Reg, TraceRecord};
use crate::sink::TraceSink;

/// Benchmark suite a workload belongs to (drives the SPEC/GAP grouping the
/// paper uses in every figure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU 2006/2017-like workloads.
    Spec,
    /// GAP graph-analytics workloads.
    Gap,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Spec => write!(f, "SPEC"),
            Suite::Gap => write!(f, "GAP"),
        }
    }
}

/// A deterministic, restartable workload generator.
///
/// `generate` runs one pass of the workload (e.g. one BFS from a fresh root)
/// and must return promptly once the sink closes. The trace infrastructure
/// re-invokes `generate` in a loop when more instructions are needed, so a
/// pass does not need to be longer than the natural length of the kernel.
pub trait Workload: Send + Sync {
    /// Stable, unique workload name (e.g. `"bfs.kron"` or `"spec.mcf_06"`).
    fn name(&self) -> &str;

    /// Which suite the workload belongs to.
    fn suite(&self) -> Suite;

    /// Runs one pass, pushing records into `sink`.
    fn generate(&self, sink: &mut dyn TraceSink);

    /// For workloads backed by an on-disk trace file (the `trace:` plugin
    /// namespace), the path to stream records from instead of generating.
    ///
    /// Generator-backed catalog workloads return `None` (the default); the
    /// harness then captures via [`generate`](Self::generate) as usual.
    fn trace_path(&self) -> Option<&std::path::Path> {
        None
    }
}

/// Convenience wrapper every generator uses to emit records.
///
/// The emitter
/// * derives stable per-site PCs from a per-workload code base address
///   (each call site passes a small `site` id, modelling a static
///   instruction),
/// * tracks liveness so kernels can cheaply bail out when the sink closes,
/// * provides shorthand for the common "load–use", "loop branch" and
///   "ALU padding" idioms.
pub struct Emitter<'a> {
    sink: &'a mut dyn TraceSink,
    code_base: u64,
    live: bool,
    emitted: u64,
}

impl<'a> Emitter<'a> {
    /// Wraps a sink; `code_base` is the base virtual address of the
    /// workload's (pseudo) text segment.
    pub fn new(sink: &'a mut dyn TraceSink, code_base: u64) -> Self {
        let live = !sink.is_closed();
        Self {
            sink,
            code_base,
            live,
            emitted: 0,
        }
    }

    /// PC of static instruction `site`.
    #[inline]
    #[must_use]
    pub fn pc(&self, site: u32) -> u64 {
        self.code_base + u64::from(site) * 4
    }

    /// True while the sink still accepts records.
    #[inline]
    #[must_use]
    pub fn live(&self) -> bool {
        self.live
    }

    /// Number of records emitted through this emitter.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    #[inline]
    fn push(&mut self, rec: TraceRecord) -> bool {
        if self.live {
            self.live = self.sink.emit(rec);
            self.emitted += 1;
        }
        self.live
    }

    /// Emits a load of 8 bytes (the dominant GAP/SPEC access size is 4 or 8;
    /// use [`Emitter::load_sized`] for other widths).
    #[inline]
    pub fn load(&mut self, site: u32, addr: u64, dst: Reg, srcs: [Option<Reg>; 2]) -> bool {
        self.load_sized(site, addr, 8, dst, srcs)
    }

    /// Emits a load of `size` bytes.
    #[inline]
    pub fn load_sized(
        &mut self,
        site: u32,
        addr: u64,
        size: u8,
        dst: Reg,
        srcs: [Option<Reg>; 2],
    ) -> bool {
        let pc = self.pc(site);
        self.push(TraceRecord::load(pc, addr, size, dst, srcs))
    }

    /// Emits an 8-byte store.
    #[inline]
    pub fn store(
        &mut self,
        site: u32,
        addr: u64,
        data: Option<Reg>,
        addr_reg: Option<Reg>,
    ) -> bool {
        self.store_sized(site, addr, 8, data, addr_reg)
    }

    /// Emits a store of `size` bytes.
    #[inline]
    pub fn store_sized(
        &mut self,
        site: u32,
        addr: u64,
        size: u8,
        data: Option<Reg>,
        addr_reg: Option<Reg>,
    ) -> bool {
        let pc = self.pc(site);
        self.push(TraceRecord::store(pc, addr, size, data, addr_reg))
    }

    /// Emits one integer ALU op.
    #[inline]
    pub fn alu(&mut self, site: u32, dst: Option<Reg>, srcs: [Option<Reg>; 2]) -> bool {
        let pc = self.pc(site);
        self.push(TraceRecord::alu(pc, dst, srcs))
    }

    /// Emits one floating-point op.
    #[inline]
    pub fn fp(&mut self, site: u32, dst: Option<Reg>, srcs: [Option<Reg>; 2]) -> bool {
        let pc = self.pc(site);
        self.push(TraceRecord::fp(pc, dst, srcs))
    }

    /// Emits `n` independent ALU ops (instruction-mix padding).
    pub fn alu_burst(&mut self, site: u32, n: u32) -> bool {
        for _ in 0..n {
            if !self.alu(site, None, [None, None]) {
                return false;
            }
        }
        self.live
    }

    /// Emits a conditional branch at `site` targeting `target_site`.
    #[inline]
    pub fn branch(&mut self, site: u32, taken: bool, target_site: u32, src: Option<Reg>) -> bool {
        let pc = self.pc(site);
        let target = self.pc(target_site);
        self.push(TraceRecord::branch(pc, taken, target, src))
    }

    /// Emits the classic loop-closing branch: taken while `more` holds.
    #[inline]
    pub fn loop_branch(&mut self, site: u32, more: bool, head_site: u32) -> bool {
        self.branch(site, more, head_site, None)
    }

    /// Emits a raw record (escape hatch for unusual shapes).
    pub fn raw(&mut self, rec: TraceRecord) -> bool {
        self.push(rec)
    }
}

impl std::fmt::Debug for Emitter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Emitter")
            .field("code_base", &self.code_base)
            .field("live", &self.live)
            .field("emitted", &self.emitted)
            .finish()
    }
}

/// Register conventions shared by the generators, so that independent code
/// sites do not accidentally serialize on the same register.
pub mod regs {
    use crate::record::Reg;

    /// Loop induction variable.
    pub const IDX: Reg = Reg(1);
    /// Pointer/cursor for dependent (pointer-chase) loads.
    pub const PTR: Reg = Reg(2);
    /// Data value loaded from memory.
    pub const VAL: Reg = Reg(3);
    /// Secondary data value.
    pub const VAL2: Reg = Reg(4);
    /// Accumulator.
    pub const ACC: Reg = Reg(5);
    /// Address scratch register.
    pub const ADDR: Reg = Reg(6);
    /// Comparison/flag register feeding branches.
    pub const FLAG: Reg = Reg(7);
    /// Neighbor-index register (graph kernels).
    pub const NBR: Reg = Reg(8);
    /// Offset-begin register (graph kernels).
    pub const BEG: Reg = Reg(9);
    /// Offset-end register (graph kernels).
    pub const END: Reg = Reg(10);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RecorderSink;

    #[test]
    fn emitter_assigns_site_pcs() {
        let mut sink = RecorderSink::new(16);
        let mut e = Emitter::new(&mut sink, 0x10_000);
        e.load(0, 0x1000, regs::VAL, [None, None]);
        e.alu(1, Some(regs::ACC), [Some(regs::VAL), Some(regs::ACC)]);
        e.loop_branch(2, true, 0);
        let recs = sink.into_records();
        assert_eq!(recs[0].pc, 0x10_000);
        assert_eq!(recs[1].pc, 0x10_004);
        assert_eq!(recs[2].pc, 0x10_008);
        assert_eq!(recs[2].target, 0x10_000);
    }

    #[test]
    fn emitter_goes_dead_when_sink_closes() {
        let mut sink = RecorderSink::new(2);
        let mut e = Emitter::new(&mut sink, 0);
        assert!(e.alu(0, None, [None, None]));
        assert!(!e.alu(0, None, [None, None]));
        assert!(!e.live());
        // Further emissions are silently dropped.
        e.alu(0, None, [None, None]);
        assert_eq!(e.emitted(), 2);
    }

    #[test]
    fn alu_burst_counts() {
        let mut sink = RecorderSink::new(100);
        let mut e = Emitter::new(&mut sink, 0);
        e.alu_burst(5, 7);
        assert_eq!(e.emitted(), 7);
    }
}
