//! SPEC-CPU-like synthetic workloads.
//!
//! The paper's SPEC set is the 24 SPEC CPU 2006/2017 benchmarks whose
//! baseline LLC MPKI exceeds 1. We model each by a parameterized pattern
//! engine reproducing the benchmark's dominant memory behaviour:
//!
//! | engine | behaviour | representative benchmarks |
//! |--------|-----------|----------------------------|
//! | [`PatternKind::PointerChase`] | dependent-load linked traversal | mcf, omnetpp, xalancbmk, astar |
//! | [`PatternKind::Stream`] | unit-stride multi-array streaming | lbm, libquantum, bwaves, leslie3d |
//! | [`PatternKind::Stencil`] | 2-D multi-point stencil sweeps | cactus, zeusmp, GemsFDTD, wrf, roms, fotonik3d |
//! | [`PatternKind::SpMV`] | CSR sparse matrix–vector product | soplex, milc(sparse phases) |
//! | [`PatternKind::Strided`] | constant non-unit stride | milc, gems(strided phases) |
//! | [`PatternKind::RandomAccess`] | uniform random table lookups | gcc, xz, sphinx3 hash phases |
//! | [`PatternKind::BranchyMixed`] | data-dependent branches over a working set | gcc, perl-like control flow |
//!
//! Working-set sizes are chosen so the footprint exceeds the simulated LLC
//! (putting the workload in the paper's "LLC MPKI > 1" regime) while staying
//! fast to generate.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::emit::{regs, Emitter, Suite, Workload};
use crate::sink::TraceSink;

/// Scale factor applied to working-set sizes (shared with the GAP scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecScale {
    /// Minimal footprints for unit tests.
    Tiny,
    /// Test/bench footprints (a few MB, larger than the 1-core LLC).
    Quick,
    /// Full-run footprints (tens of MB).
    Full,
}

impl SpecScale {
    fn factor(self) -> u64 {
        match self {
            SpecScale::Tiny => 1,
            SpecScale::Quick => 16,
            SpecScale::Full => 128,
        }
    }
}

/// The memory-behaviour engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternKind {
    /// Linked-list traversal: every load's address depends on the previous
    /// load's value.
    PointerChase,
    /// `a[i] = b[i] op c[i]` streaming over large arrays.
    Stream,
    /// 5-point 2-D stencil sweep (row-strided reuse).
    Stencil,
    /// CSR sparse matrix–vector product: sequential index loads feeding
    /// random x[] gathers.
    SpMV,
    /// Constant-stride scan with a non-unit stride.
    Strided,
    /// Uniform random lookups into a large table.
    RandomAccess,
    /// Random control flow over a moderate working set.
    BranchyMixed,
}

/// One SPEC-like workload: a pattern engine plus footprint/mix parameters.
pub struct SpecWorkload {
    name: String,
    kind: PatternKind,
    /// Number of 8-byte elements in the primary working set.
    elems: u64,
    /// Independent ALU ops inserted per memory access (ILP padding).
    alu_per_mem: u32,
    seed: u64,
    pass: AtomicU64,
}

/// Virtual-address bases for the SPEC engines (distinct from the GAP bases).
mod layout {
    pub const CODE: u64 = 0x0010_0000;
    pub const ARRAY_A: u64 = 0x0011_0000_0000;
    pub const ARRAY_B: u64 = 0x0012_0000_0000;
    pub const ARRAY_C: u64 = 0x0013_0000_0000;
    pub const TABLE: u64 = 0x0014_0000_0000;
    pub const INDEX: u64 = 0x0015_0000_0000;
}

impl SpecWorkload {
    /// Creates a workload; `elems` is the primary working-set size in
    /// 8-byte elements.
    ///
    /// # Panics
    ///
    /// Panics if `elems` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        kind: PatternKind,
        elems: u64,
        alu_per_mem: u32,
        seed: u64,
    ) -> Self {
        assert!(elems > 0, "working set must be non-empty");
        Self {
            name: name.into(),
            kind,
            elems,
            alu_per_mem,
            seed,
            pass: AtomicU64::new(0),
        }
    }

    /// The engine driving this workload.
    #[must_use]
    pub fn kind(&self) -> PatternKind {
        self.kind
    }

    /// Working-set size in bytes.
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        self.elems * 8
    }

    fn code_base(&self) -> u64 {
        // Distinct text segment per workload so PCs never collide between
        // co-running workloads in a multi-core mix.
        layout::CODE + (self.seed & 0xff) * 0x1_0000
    }
}

impl std::fmt::Debug for SpecWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpecWorkload")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("elems", &self.elems)
            .finish()
    }
}

impl Workload for SpecWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn suite(&self) -> Suite {
        Suite::Spec
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let pass = self.pass.fetch_add(1, Ordering::Relaxed);
        let mut rng = StdRng::seed_from_u64(self.seed ^ pass.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let mut e = Emitter::new(sink, self.code_base());
        match self.kind {
            PatternKind::PointerChase => {
                pointer_chase(&mut e, self.elems, self.alu_per_mem, &mut rng)
            }
            PatternKind::Stream => stream(&mut e, self.elems, self.alu_per_mem),
            PatternKind::Stencil => stencil(&mut e, self.elems, self.alu_per_mem),
            PatternKind::SpMV => spmv(&mut e, self.elems, self.alu_per_mem, &mut rng),
            PatternKind::Strided => strided(&mut e, self.elems, self.alu_per_mem),
            PatternKind::RandomAccess => {
                random_access(&mut e, self.elems, self.alu_per_mem, &mut rng)
            }
            PatternKind::BranchyMixed => branchy(&mut e, self.elems, self.alu_per_mem, &mut rng),
        }
    }
}

/// Multiplicative-hash permutation step used to lay out pointer-chase rings:
/// successive elements land on unrelated cache lines, defeating stride
/// prefetchers exactly like mcf's arc lists do.
///
/// The multiplier must be coprime to every catalog `elems` (prime factors
/// 2, 3 and 5) so the map stays a permutation; the golden-ratio constant
/// used elsewhere is divisible by 5 and would shrink 5-divisible working
/// sets to a fifth of their size.
#[inline]
fn scatter(i: u64, elems: u64) -> u64 {
    i.wrapping_mul(0xbf58_476d_1ce4_e5b9) % elems
}

fn pointer_chase(e: &mut Emitter<'_>, elems: u64, alu: u32, rng: &mut StdRng) {
    let mut cursor = rng.gen_range(0..elems);
    for step in 0..elems {
        // load next = node[cursor].next — dependent on the previous load.
        let addr = layout::TABLE + scatter(cursor, elems) * 8;
        if !e.load(0, addr, regs::PTR, [Some(regs::PTR), None]) {
            return;
        }
        e.alu_burst(1, alu);
        // Occasionally update a payload (mcf writes arc flows).
        if step % 16 == 0 {
            e.store(2, addr + 8, Some(regs::VAL), Some(regs::PTR));
        }
        e.loop_branch(3, step + 1 < elems, 0);
        // Full-period LCG walk (Hull–Dobell holds for every catalog `elems`,
        // whose prime factors are 2, 3, 5): the ring visits the whole
        // working set before repeating. scatter() above de-correlates the
        // resulting address deltas so stride prefetchers stay defeated.
        cursor = (cursor.wrapping_mul(61).wrapping_add(7)) % elems;
    }
}

fn stream(e: &mut Emitter<'_>, elems: u64, alu: u32) {
    for i in 0..elems {
        let off = i * 8;
        if !e.load(0, layout::ARRAY_A + off, regs::VAL, [Some(regs::IDX), None]) {
            return;
        }
        e.load(
            1,
            layout::ARRAY_B + off,
            regs::VAL2,
            [Some(regs::IDX), None],
        );
        e.fp(2, Some(regs::ACC), [Some(regs::VAL), Some(regs::VAL2)]);
        e.alu_burst(3, alu);
        e.store(4, layout::ARRAY_C + off, Some(regs::ACC), Some(regs::IDX));
        e.loop_branch(5, i + 1 < elems, 0);
    }
}

fn stencil(e: &mut Emitter<'_>, elems: u64, alu: u32) {
    // Square grid of 8-byte cells.
    let side = (elems as f64).sqrt() as u64;
    if side < 3 {
        return stream(e, elems, alu);
    }
    for y in 1..side - 1 {
        for x in 1..side - 1 {
            let at = |yy: u64, xx: u64| layout::ARRAY_A + (yy * side + xx) * 8;
            if !e.load(0, at(y, x), regs::VAL, [Some(regs::IDX), None]) {
                return;
            }
            e.load(1, at(y, x - 1), regs::VAL2, [Some(regs::IDX), None]);
            e.load(2, at(y, x + 1), regs::VAL2, [Some(regs::IDX), None]);
            e.load(3, at(y - 1, x), regs::ACC, [Some(regs::IDX), None]);
            e.load(4, at(y + 1, x), regs::ACC, [Some(regs::IDX), None]);
            e.fp(5, Some(regs::ACC), [Some(regs::VAL), Some(regs::VAL2)]);
            e.alu_burst(6, alu);
            e.store(
                7,
                layout::ARRAY_B + (y * side + x) * 8,
                Some(regs::ACC),
                Some(regs::IDX),
            );
            e.loop_branch(8, x + 2 < side, 0);
        }
    }
}

fn spmv(e: &mut Emitter<'_>, elems: u64, alu: u32, rng: &mut StdRng) {
    let rows = (elems / 8).max(1);
    let nnz_per_row = 8u64;
    let mut nz = 0u64;
    for row in 0..rows {
        // Row-pointer loads (sequential).
        if !e.load_sized(0, layout::INDEX + row * 4, 4, regs::BEG, [None, None]) {
            return;
        }
        for _ in 0..nnz_per_row {
            // Column index: sequential; x[col]: random gather, dependent.
            e.load_sized(
                1,
                layout::INDEX + 0x1000_0000 + nz * 4,
                4,
                regs::NBR,
                [Some(regs::BEG), None],
            );
            let col = rng.gen_range(0..elems);
            e.load(
                2,
                layout::ARRAY_A + col * 8,
                regs::VAL,
                [Some(regs::NBR), None],
            );
            e.load(
                3,
                layout::ARRAY_B + nz * 8,
                regs::VAL2,
                [Some(regs::BEG), None],
            );
            e.fp(4, Some(regs::ACC), [Some(regs::VAL), Some(regs::VAL2)]);
            e.alu_burst(5, alu);
            nz += 1;
        }
        e.store(6, layout::ARRAY_C + row * 8, Some(regs::ACC), None);
        e.loop_branch(7, row + 1 < rows, 0);
    }
}

fn strided(e: &mut Emitter<'_>, elems: u64, alu: u32) {
    let stride = 24u64; // 3 cache lines: defeats next-line, catchable by stride
    let mut i = 0u64;
    while i < elems {
        if !e.load(
            0,
            layout::ARRAY_A + i * 8,
            regs::VAL,
            [Some(regs::IDX), None],
        ) {
            return;
        }
        e.fp(1, Some(regs::ACC), [Some(regs::VAL), Some(regs::ACC)]);
        e.alu_burst(2, alu);
        e.loop_branch(3, i + stride < elems, 0);
        i += stride;
    }
}

fn random_access(e: &mut Emitter<'_>, elems: u64, alu: u32, rng: &mut StdRng) {
    let accesses = elems / 2;
    for k in 0..accesses {
        // The index computation itself (an LCG) is a short ALU chain.
        e.alu(0, Some(regs::IDX), [Some(regs::IDX), None]);
        let idx = rng.gen_range(0..elems);
        if !e.load(
            1,
            layout::TABLE + idx * 8,
            regs::VAL,
            [Some(regs::IDX), None],
        ) {
            return;
        }
        e.alu_burst(2, alu);
        if k % 4 == 0 {
            e.store(3, layout::TABLE + idx * 8, Some(regs::VAL), Some(regs::IDX));
        }
        e.loop_branch(4, k + 1 < accesses, 0);
    }
}

fn branchy(e: &mut Emitter<'_>, elems: u64, alu: u32, rng: &mut StdRng) {
    let iters = elems;
    for k in 0..iters {
        let idx = rng.gen_range(0..elems);
        if !e.load(
            0,
            layout::TABLE + idx * 8,
            regs::VAL,
            [Some(regs::IDX), None],
        ) {
            return;
        }
        // Data-dependent, poorly-predictable branch (gcc-style dispatch).
        let t = rng.gen_bool(0.4);
        e.branch(1, t, 5, Some(regs::VAL));
        if t {
            e.alu_burst(2, alu + 1);
            e.load(
                3,
                layout::ARRAY_A + (idx % (elems / 2).max(1)) * 8,
                regs::VAL2,
                [Some(regs::VAL), None],
            );
        } else {
            e.alu_burst(4, alu);
        }
        e.loop_branch(5, k + 1 < iters, 0);
    }
}

/// The 24 SPEC-like workloads (benchmarks whose baseline LLC MPKI > 1 in the
/// paper's setup), with engine and footprint assignments.
#[must_use]
pub fn spec_workloads(scale: SpecScale) -> Vec<SpecWorkload> {
    let f = scale.factor();
    let k = 1024u64;
    // (name, engine, elems, alu_per_mem, seed)
    let defs: [(&str, PatternKind, u64, u32, u64); 24] = [
        ("spec.mcf_06", PatternKind::PointerChase, 96 * k * f, 6, 11),
        ("spec.mcf_17", PatternKind::PointerChase, 128 * k * f, 7, 12),
        (
            "spec.omnetpp_06",
            PatternKind::PointerChase,
            48 * k * f,
            7,
            13,
        ),
        (
            "spec.omnetpp_17",
            PatternKind::PointerChase,
            64 * k * f,
            7,
            14,
        ),
        (
            "spec.xalancbmk_06",
            PatternKind::PointerChase,
            32 * k * f,
            8,
            15,
        ),
        (
            "spec.xalancbmk_17",
            PatternKind::PointerChase,
            40 * k * f,
            8,
            16,
        ),
        (
            "spec.astar_06",
            PatternKind::PointerChase,
            24 * k * f,
            7,
            17,
        ),
        ("spec.lbm_06", PatternKind::Stream, 160 * k * f, 6, 18),
        ("spec.lbm_17", PatternKind::Stream, 192 * k * f, 6, 19),
        (
            "spec.libquantum_06",
            PatternKind::Stream,
            128 * k * f,
            6,
            20,
        ),
        ("spec.bwaves_06", PatternKind::Stream, 96 * k * f, 7, 21),
        ("spec.bwaves_17", PatternKind::Stream, 112 * k * f, 7, 22),
        ("spec.leslie3d_06", PatternKind::Stream, 80 * k * f, 7, 23),
        ("spec.milc_06", PatternKind::Strided, 96 * k * f, 7, 24),
        ("spec.gemsfdtd_06", PatternKind::Strided, 80 * k * f, 7, 25),
        ("spec.soplex_06", PatternKind::SpMV, 64 * k * f, 6, 26),
        ("spec.cactusadm_06", PatternKind::Stencil, 64 * k * f, 7, 27),
        ("spec.cactubssn_17", PatternKind::Stencil, 96 * k * f, 7, 28),
        ("spec.zeusmp_06", PatternKind::Stencil, 48 * k * f, 7, 29),
        ("spec.wrf_17", PatternKind::Stencil, 56 * k * f, 8, 30),
        ("spec.roms_17", PatternKind::Stencil, 72 * k * f, 7, 31),
        ("spec.fotonik3d_17", PatternKind::Stencil, 88 * k * f, 6, 32),
        (
            "spec.sphinx3_06",
            PatternKind::RandomAccess,
            48 * k * f,
            7,
            33,
        ),
        ("spec.xz_17", PatternKind::BranchyMixed, 64 * k * f, 7, 34),
    ];
    defs.into_iter()
        .map(|(name, kind, elems, alu, seed)| SpecWorkload::new(name, kind, elems, alu, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CountingSink;
    use crate::source::capture;

    #[test]
    fn twenty_four_workloads_with_unique_names() {
        let ws = spec_workloads(SpecScale::Tiny);
        assert_eq!(ws.len(), 24);
        let names: std::collections::HashSet<&str> = ws.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 24, "duplicate workload names");
        assert!(ws.iter().all(|w| w.suite() == Suite::Spec));
    }

    #[test]
    fn every_engine_emits_and_terminates() {
        for w in spec_workloads(SpecScale::Tiny) {
            let recs = capture(&w, 5_000);
            assert_eq!(recs.len(), 5_000, "{} under-emitted", w.name());
            assert!(
                recs.iter().any(|r| r.op.is_load()),
                "{} emits no loads",
                w.name()
            );
        }
    }

    #[test]
    fn pointer_chase_loads_are_dependent() {
        let w = SpecWorkload::new("t", PatternKind::PointerChase, 4096, 1, 1);
        let recs = capture(&w, 2_000);
        let chases: Vec<_> = recs
            .iter()
            .filter(|r| r.op.is_load() && r.src1 == Some(regs::PTR) && r.dst == Some(regs::PTR))
            .collect();
        assert!(
            chases.len() > 100,
            "expected dependent chase loads, got {}",
            chases.len()
        );
    }

    #[test]
    fn stream_addresses_are_sequential() {
        let w = SpecWorkload::new("t", PatternKind::Stream, 4096, 1, 1);
        let recs = capture(&w, 1_000);
        let a_loads: Vec<u64> = recs
            .iter()
            .filter(|r| r.op.is_load() && r.addr >= layout::ARRAY_A && r.addr < layout::ARRAY_B)
            .map(|r| r.addr)
            .collect();
        assert!(a_loads.len() > 10);
        assert!(
            a_loads.windows(2).all(|w| w[1] == w[0] + 8),
            "stream is not unit-stride"
        );
    }

    #[test]
    fn strided_addresses_have_constant_stride() {
        let w = SpecWorkload::new("t", PatternKind::Strided, 65536, 1, 1);
        let recs = capture(&w, 1_000);
        let loads: Vec<u64> = recs
            .iter()
            .filter(|r| r.op.is_load())
            .map(|r| r.addr)
            .collect();
        let deltas: std::collections::HashSet<i64> = loads
            .windows(2)
            .map(|w| w[1] as i64 - w[0] as i64)
            .collect();
        assert_eq!(deltas.len(), 1, "strided engine drifted: {deltas:?}");
    }

    #[test]
    fn generation_is_deterministic_per_pass() {
        let a = capture(
            &SpecWorkload::new("t", PatternKind::BranchyMixed, 8192, 1, 7),
            3_000,
        );
        let b = capture(
            &SpecWorkload::new("t", PatternKind::BranchyMixed, 8192, 1, 7),
            3_000,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn branchy_engine_emits_unbiased_branches() {
        let w = SpecWorkload::new("t", PatternKind::BranchyMixed, 8192, 1, 3);
        let mut sink = CountingSink::with_budget(10_000);
        while !sink.is_closed() {
            w.generate(&mut sink);
        }
        assert!(sink.branches() * 100 / sink.total() > 10);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_working_set_rejected() {
        let _ = SpecWorkload::new("t", PatternKind::Stream, 0, 1, 1);
    }
}
