//! Binary trace files: persist captured workload traces and replay them.
//!
//! The paper's artifact ships its workloads as ChampSim trace files
//! (SimPoints, three Zenodo volumes); this module is the equivalent for
//! this workspace. A trace file is:
//!
//! ```text
//! magic   "TLPT"                    4 bytes
//! version u16 le                    2 bytes
//! flags   u16 le (bit 0: looping)   2 bytes
//! count   u64 le (record count)     8 bytes
//! name    u16 le length + UTF-8     2 + n bytes
//! records count × TraceRecord::ENCODED_LEN bytes
//! ```
//!
//! Files written by [`write_trace`] are read back by [`read_trace`] or
//! streamed by [`FileTrace`], which implements [`TraceSource`] for direct
//! use in the simulator.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::record::TraceRecord;
use crate::source::{TraceSource, VecTrace};

const MAGIC: &[u8; 4] = b"TLPT";
const VERSION: u16 = 1;
const FLAG_LOOPING: u16 = 1;

/// Errors arising when reading a trace file.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the `TLPT` magic.
    BadMagic,
    /// The file's format version is not supported.
    BadVersion(u16),
    /// The header or records are truncated or malformed.
    Corrupt(&'static str),
}

impl std::fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::BadMagic => write!(f, "not a TLPT trace file"),
            ReadTraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            ReadTraceError::Corrupt(what) => write!(f, "corrupt trace file: {what}"),
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

/// An in-memory parse of a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFile {
    /// Workload name recorded at capture time.
    pub name: String,
    /// Whether the trace should replay in a loop.
    pub looping: bool,
    /// The captured records.
    pub records: Vec<TraceRecord>,
}

impl TraceFile {
    /// Converts into a replayable [`VecTrace`] honouring the looping flag.
    ///
    /// # Panics
    ///
    /// Panics if the trace holds no records (rejected at read time, so this
    /// only fires for hand-built values).
    #[must_use]
    pub fn into_source(self) -> VecTrace {
        if self.looping {
            VecTrace::looping(self.name, self.records)
        } else {
            VecTrace::new(self.name, self.records)
        }
    }
}

/// Serializes a trace into its binary representation.
#[must_use]
pub fn encode_trace(name: &str, looping: bool, records: &[TraceRecord]) -> Bytes {
    let mut buf =
        BytesMut::with_capacity(18 + name.len() + records.len() * TraceRecord::ENCODED_LEN);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(if looping { FLAG_LOOPING } else { 0 });
    buf.put_u64_le(records.len() as u64);
    let name_bytes = name.as_bytes();
    assert!(
        name_bytes.len() <= u16::MAX as usize,
        "workload name too long"
    );
    buf.put_u16_le(name_bytes.len() as u16);
    buf.put_slice(name_bytes);
    for r in records {
        r.encode(&mut buf);
    }
    buf.freeze()
}

/// Parses a binary trace previously produced by [`encode_trace`].
///
/// # Errors
///
/// Returns [`ReadTraceError`] when the magic, version, header or record
/// payload is malformed.
pub fn decode_trace(mut buf: impl Buf) -> Result<TraceFile, ReadTraceError> {
    // Fixed-size prefix: magic 4, version 2, flags 2, count 8, name_len 2.
    if buf.remaining() < 18 {
        return Err(ReadTraceError::Corrupt("short header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ReadTraceError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(ReadTraceError::BadVersion(version));
    }
    let flags = buf.get_u16_le();
    let count = buf.get_u64_le();
    let name_len = buf.get_u16_le() as usize;
    if buf.remaining() < name_len {
        return Err(ReadTraceError::Corrupt("truncated name"));
    }
    let mut name_bytes = vec![0u8; name_len];
    buf.copy_to_slice(&mut name_bytes);
    let name =
        String::from_utf8(name_bytes).map_err(|_| ReadTraceError::Corrupt("name is not UTF-8"))?;
    let expected = (count as usize)
        .checked_mul(TraceRecord::ENCODED_LEN)
        .ok_or(ReadTraceError::Corrupt("record count overflow"))?;
    if buf.remaining() < expected {
        return Err(ReadTraceError::Corrupt("truncated records"));
    }
    if count == 0 {
        return Err(ReadTraceError::Corrupt("empty trace"));
    }
    let mut records = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let r = TraceRecord::decode(&mut buf).ok_or(ReadTraceError::Corrupt("invalid record"))?;
        records.push(r);
    }
    // A well-formed file ends exactly at the last record. Bytes past it mean
    // the count header disagrees with the payload (an under-stated count
    // would otherwise silently truncate the trace).
    if buf.remaining() > 0 {
        return Err(ReadTraceError::Corrupt("trailing bytes after records"));
    }
    Ok(TraceFile {
        name,
        looping: flags & FLAG_LOOPING != 0,
        records,
    })
}

/// Writes a trace file to `path`.
///
/// # Errors
///
/// Returns the underlying I/O error on failure.
pub fn write_trace(
    path: impl AsRef<Path>,
    name: &str,
    looping: bool,
    records: &[TraceRecord],
) -> io::Result<()> {
    let bytes = encode_trace(name, looping, records);
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&bytes)?;
    w.flush()
}

/// Reads a trace file from `path`.
///
/// # Errors
///
/// Returns [`ReadTraceError`] when the file cannot be read or parsed.
pub fn read_trace(path: impl AsRef<Path>) -> Result<TraceFile, ReadTraceError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    decode_trace(&bytes[..])
}

/// A trace source backed by a trace file loaded at construction.
#[derive(Debug)]
pub struct FileTrace {
    inner: VecTrace,
}

impl FileTrace {
    /// Opens and fully loads a trace file.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] when the file cannot be read or parsed.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ReadTraceError> {
        Ok(Self {
            inner: read_trace(path)?.into_source(),
        })
    }

    /// Number of distinct records before looping.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Always false: empty trace files are rejected at read time.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl TraceSource for FileTrace {
    fn next_record(&mut self) -> Option<TraceRecord> {
        self.inner.next_record()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Reg;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::load(0x400, 0x10_000, 8, Reg(3), [Some(Reg(1)), None]),
            TraceRecord::alu(0x404, Some(Reg(5)), [Some(Reg(3)), Some(Reg(5))]),
            TraceRecord::store(0x408, 0x10_040, 4, Some(Reg(5)), None),
            TraceRecord::branch(0x40c, true, 0x400, Some(Reg(7))),
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        let recs = sample_records();
        let bytes = encode_trace("bfs.kron", true, &recs);
        let tf = decode_trace(bytes).expect("roundtrip");
        assert_eq!(tf.name, "bfs.kron");
        assert!(tf.looping);
        assert_eq!(tf.records, recs);
    }

    #[test]
    fn file_roundtrip_and_replay() {
        let dir = std::env::temp_dir().join("tlp-trace-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("roundtrip.tlpt");
        let recs = sample_records();
        write_trace(&path, "t", false, &recs).expect("write");
        let tf = read_trace(&path).expect("read");
        assert_eq!(tf.records, recs);
        assert!(!tf.looping);
        let mut src = FileTrace::open(&path).expect("open");
        assert_eq!(src.name(), "t");
        assert_eq!(src.len(), recs.len());
        for r in &recs {
            assert_eq!(src.next_record().as_ref(), Some(r));
        }
        assert!(src.next_record().is_none(), "non-looping trace must end");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn looping_file_trace_wraps() {
        let bytes = encode_trace("loop", true, &sample_records());
        let mut src = decode_trace(bytes).expect("decode").into_source();
        for _ in 0..3 {
            for r in &sample_records() {
                assert_eq!(src.next_record().as_ref(), Some(r));
            }
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode_trace("x", false, &sample_records()).to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            decode_trace(&bytes[..]),
            Err(ReadTraceError::BadMagic)
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = encode_trace("x", false, &sample_records()).to_vec();
        bytes[4] = 99;
        assert!(matches!(
            decode_trace(&bytes[..]),
            Err(ReadTraceError::BadVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = encode_trace("workload", false, &sample_records());
        for cut in [0, 3, 10, 17, bytes.len() - 1] {
            assert!(
                decode_trace(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_overcounted_header() {
        // A count header larger than the payload must be Corrupt, never a
        // short read that silently truncates the trace.
        let recs = sample_records();
        let mut bytes = encode_trace("x", false, &recs).to_vec();
        let inflated = (recs.len() as u64 + 1).to_le_bytes();
        bytes[8..16].copy_from_slice(&inflated);
        assert!(matches!(
            decode_trace(&bytes[..]),
            Err(ReadTraceError::Corrupt("truncated records"))
        ));
        // Wildly over-stated counts (count * 29 overflows) are caught too.
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_trace(&bytes[..]),
            Err(ReadTraceError::Corrupt("record count overflow"))
        ));
    }

    #[test]
    fn rejects_undercounted_header() {
        // An under-stated count leaves trailing bytes; the reader must not
        // silently drop records.
        let recs = sample_records();
        let mut bytes = encode_trace("x", false, &recs).to_vec();
        let deflated = (recs.len() as u64 - 1).to_le_bytes();
        bytes[8..16].copy_from_slice(&deflated);
        assert!(matches!(
            decode_trace(&bytes[..]),
            Err(ReadTraceError::Corrupt("trailing bytes after records"))
        ));
    }

    #[test]
    fn rejects_truncated_record_payload() {
        // Cut mid-record (not just mid-header): every cut point inside the
        // record area must surface as Corrupt.
        let bytes = encode_trace("w", false, &sample_records());
        let records_start = 18 + 1; // header + 1-byte name
        for cut in records_start..bytes.len() {
            assert!(
                matches!(
                    decode_trace(&bytes[..cut]),
                    Err(ReadTraceError::Corrupt("truncated records"))
                ),
                "cut at {cut} must report truncated records"
            );
        }
    }

    #[test]
    fn rejects_empty_trace() {
        let bytes = encode_trace("empty", false, &[]);
        assert!(matches!(
            decode_trace(bytes),
            Err(ReadTraceError::Corrupt("empty trace"))
        ));
    }

    #[test]
    fn rejects_invalid_record_op() {
        let recs = sample_records();
        let mut bytes = encode_trace("x", false, &recs).to_vec();
        // Corrupt the op code of the first record (offset: 18 + name).
        let rec0 = 18 + 1;
        bytes[rec0 + 8] = 0x7f;
        assert!(matches!(
            decode_trace(&bytes[..]),
            Err(ReadTraceError::Corrupt("invalid record"))
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = FileTrace::open("/nonexistent/path/trace.tlpt").unwrap_err();
        assert!(matches!(err, ReadTraceError::Io(_)));
        assert!(err.to_string().contains("i/o error"));
    }

    #[test]
    fn error_display_is_meaningful() {
        assert!(ReadTraceError::BadMagic.to_string().contains("TLPT"));
        assert!(ReadTraceError::BadVersion(7).to_string().contains('7'));
        assert!(ReadTraceError::Corrupt("short header")
            .to_string()
            .contains("short header"));
    }
}
