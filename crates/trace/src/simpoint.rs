//! SimPoint-style phase analysis (Perelman et al., SIGMETRICS 2003).
//!
//! The paper's traces are 1B-instruction SimPoints: representative
//! intervals chosen by clustering basic-block vectors (BBVs) so that a
//! short simulation stands in for a whole program phase (§V-B). This
//! module reproduces that methodology over this workspace's traces:
//!
//! 1. [`basic_block_vectors`] slices an instruction stream into
//!    fixed-length intervals and builds, per interval, a normalized
//!    execution-frequency vector over (hashed) basic blocks;
//! 2. [`pick_simpoints`] clusters the BBVs with k-means (k-means++
//!    seeding, deterministic) and returns one representative interval per
//!    cluster, weighted by the fraction of intervals the cluster covers.
//!
//! The representative intervals can then be replayed with
//! [`VecTrace`](crate::source::VecTrace) slices, weighting results by
//! [`SimPoint::weight`] exactly as the SimPoint methodology prescribes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::record::TraceRecord;

/// Basic-block-vector extraction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BbvConfig {
    /// Instructions per interval (the paper uses 1B; scale down for the
    /// synthetic traces).
    pub interval: usize,
    /// Dimensions the basic-block space is hashed into (SimPoint projects
    /// BBVs down to ~15–100 dimensions).
    pub dims: usize,
}

impl BbvConfig {
    /// A configuration suited to this workspace's trace scales.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            interval: 10_000,
            dims: 32,
        }
    }
}

/// One representative interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPoint {
    /// Index of the chosen interval (multiply by `interval` for the
    /// instruction offset).
    pub interval: usize,
    /// Fraction of all intervals represented by this SimPoint's cluster;
    /// weights over all SimPoints sum to 1.
    pub weight: f64,
}

/// Slices `records` into intervals of `cfg.interval` instructions and
/// returns one L1-normalized basic-block frequency vector per complete
/// interval. A basic block is delimited by branch records; its identity is
/// the hash of its leader PC, and its contribution is weighted by the
/// block's dynamic length (instructions executed in it), per the SimPoint
/// formulation.
///
/// # Panics
///
/// Panics if `cfg.interval` or `cfg.dims` is zero.
#[must_use]
pub fn basic_block_vectors(records: &[TraceRecord], cfg: BbvConfig) -> Vec<Vec<f64>> {
    assert!(cfg.interval > 0, "interval must be nonzero");
    assert!(cfg.dims > 0, "dims must be nonzero");
    let mut bbvs = Vec::new();
    let mut current = vec![0.0f64; cfg.dims];
    let mut in_interval = 0usize;
    let mut block_leader = records.first().map_or(0, |r| r.pc);
    let mut block_len = 0usize;
    // splitmix64 finalizer: spreads leader PCs uniformly over dimensions.
    fn mix(mut x: u64) -> u64 {
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
    let flush_block = |current: &mut Vec<f64>, leader: u64, len: usize| {
        if len == 0 {
            return;
        }
        let dim = (mix(leader) as usize) % cfg.dims;
        current[dim] += len as f64;
    };
    for r in records {
        block_len += 1;
        in_interval += 1;
        let block_ends = r.op.is_branch();
        if block_ends {
            flush_block(&mut current, block_leader, block_len);
            block_leader = r.target; // next block starts at the target
            block_len = 0;
        }
        if in_interval == cfg.interval {
            if block_len > 0 {
                flush_block(&mut current, block_leader, block_len);
                block_len = 0;
            }
            let total: f64 = current.iter().sum();
            if total > 0.0 {
                for x in &mut current {
                    *x /= total;
                }
            }
            bbvs.push(std::mem::replace(&mut current, vec![0.0; cfg.dims]));
            in_interval = 0;
        }
    }
    // Trailing partial interval is dropped, like SimPoint does.
    bbvs
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Clusters `bbvs` into at most `k` phases with k-means and returns one
/// representative per non-empty cluster: the interval whose BBV is closest
/// to the cluster centroid, weighted by cluster population. Deterministic
/// for a given `seed`. Results are sorted by decreasing weight.
///
/// # Panics
///
/// Panics if `k` is zero.
#[must_use]
pub fn pick_simpoints(bbvs: &[Vec<f64>], k: usize, seed: u64) -> Vec<SimPoint> {
    assert!(k > 0, "k must be nonzero");
    if bbvs.is_empty() {
        return Vec::new();
    }
    let k = k.min(bbvs.len());
    let mut rng = StdRng::seed_from_u64(seed);
    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(bbvs[rng.gen_range(0..bbvs.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = bbvs
            .iter()
            .map(|v| {
                centroids
                    .iter()
                    .map(|c| dist2(v, c))
                    .fold(f64::MAX, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= f64::EPSILON {
            // All points coincide with existing centroids: stop early.
            break;
        }
        let mut pick = rng.gen_range(0.0..total);
        let mut chosen = 0;
        for (i, &d) in d2.iter().enumerate() {
            pick -= d;
            if pick <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(bbvs[chosen].clone());
    }
    // Lloyd iterations.
    let mut assignment = vec![0usize; bbvs.len()];
    for _ in 0..50 {
        let mut moved = false;
        for (i, v) in bbvs.iter().enumerate() {
            let best = (0..centroids.len())
                .min_by(|&a, &b| {
                    dist2(v, &centroids[a])
                        .partial_cmp(&dist2(v, &centroids[b]))
                        .expect("distances are finite")
                })
                .expect("at least one centroid");
            if assignment[i] != best {
                assignment[i] = best;
                moved = true;
            }
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<&Vec<f64>> = bbvs
                .iter()
                .zip(&assignment)
                .filter(|(_, &a)| a == c)
                .map(|(v, _)| v)
                .collect();
            if members.is_empty() {
                continue;
            }
            for (d, x) in centroid.iter_mut().enumerate() {
                *x = members.iter().map(|m| m[d]).sum::<f64>() / members.len() as f64;
            }
        }
        if !moved {
            break;
        }
    }
    // One representative per non-empty cluster.
    let mut points = Vec::new();
    for (c, centroid) in centroids.iter().enumerate() {
        let members: Vec<usize> = (0..bbvs.len()).filter(|&i| assignment[i] == c).collect();
        if members.is_empty() {
            continue;
        }
        let repr = members
            .iter()
            .copied()
            .min_by(|&a, &b| {
                dist2(&bbvs[a], centroid)
                    .partial_cmp(&dist2(&bbvs[b], centroid))
                    .expect("distances are finite")
            })
            .expect("cluster is non-empty");
        points.push(SimPoint {
            interval: repr,
            weight: members.len() as f64 / bbvs.len() as f64,
        });
    }
    points.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite weights"));
    points
}

/// Convenience wrapper: extract BBVs and pick at most `k` SimPoints from a
/// captured record slice.
#[must_use]
pub fn simpoints_of(records: &[TraceRecord], cfg: BbvConfig, k: usize, seed: u64) -> Vec<SimPoint> {
    pick_simpoints(&basic_block_vectors(records, cfg), k, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Reg;

    /// Builds a trace alternating between two distinct phases, each with
    /// its own PC region and branch structure.
    fn two_phase_trace(phase_len: usize, phases: usize) -> Vec<TraceRecord> {
        let mut recs = Vec::new();
        for p in 0..phases {
            let base = if p % 2 == 0 { 0x10_000 } else { 0x90_000 };
            for i in 0..phase_len {
                let pc = base + (i % 7) as u64 * 4;
                if i % 7 == 6 {
                    recs.push(TraceRecord::branch(pc, true, base, None));
                } else {
                    recs.push(TraceRecord::load(
                        pc,
                        base * 16 + (i as u64 % 64) * 64,
                        8,
                        Reg(1),
                        [None, None],
                    ));
                }
            }
        }
        recs
    }

    #[test]
    fn bbv_count_matches_complete_intervals() {
        let recs = two_phase_trace(1000, 4);
        let cfg = BbvConfig {
            interval: 300,
            dims: 16,
        };
        let bbvs = basic_block_vectors(&recs, cfg);
        assert_eq!(bbvs.len(), 4000 / 300);
        for v in &bbvs {
            assert_eq!(v.len(), 16);
            let sum: f64 = v.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "BBVs must be L1-normalized");
        }
    }

    #[test]
    fn distinct_phases_produce_distinct_bbvs() {
        let recs = two_phase_trace(1000, 2);
        let cfg = BbvConfig {
            interval: 1000,
            dims: 32,
        };
        let bbvs = basic_block_vectors(&recs, cfg);
        assert_eq!(bbvs.len(), 2);
        assert!(
            dist2(&bbvs[0], &bbvs[1]) > 0.1,
            "phases with disjoint code must separate in BBV space"
        );
    }

    #[test]
    fn kmeans_finds_the_two_phases() {
        let recs = two_phase_trace(1000, 8);
        let cfg = BbvConfig {
            interval: 1000,
            dims: 32,
        };
        let points = simpoints_of(&recs, cfg, 2, 42);
        assert_eq!(points.len(), 2);
        // Each phase covers half the intervals.
        for p in &points {
            assert!((p.weight - 0.5).abs() < 1e-9, "weight {}", p.weight);
        }
        // Representatives come from different phases (even/odd intervals).
        assert_ne!(points[0].interval % 2, points[1].interval % 2);
    }

    #[test]
    fn weights_always_sum_to_one() {
        let recs = two_phase_trace(700, 6);
        let cfg = BbvConfig {
            interval: 500,
            dims: 16,
        };
        for k in 1..=5 {
            let points = simpoints_of(&recs, cfg, k, 7);
            let total: f64 = points.iter().map(|p| p.weight).sum();
            assert!((total - 1.0).abs() < 1e-9, "k={k}: weights sum {total}");
            assert!(points.len() <= k);
        }
    }

    #[test]
    fn uniform_trace_collapses_to_one_simpoint() {
        // A single phase: k-means++ stops early because every point
        // coincides, yielding one cluster with weight 1.
        let recs = two_phase_trace(1000, 1);
        let cfg = BbvConfig {
            interval: 100,
            dims: 16,
        };
        let points = simpoints_of(&recs, cfg, 4, 3);
        assert!(!points.is_empty());
        assert!(
            points[0].weight > 0.5,
            "the dominant phase must dominate: {points:?}"
        );
    }

    #[test]
    fn picking_is_deterministic() {
        let recs = two_phase_trace(900, 6);
        let cfg = BbvConfig {
            interval: 450,
            dims: 24,
        };
        assert_eq!(
            simpoints_of(&recs, cfg, 3, 11),
            simpoints_of(&recs, cfg, 3, 11)
        );
    }

    #[test]
    fn empty_and_short_traces_are_safe() {
        let cfg = BbvConfig::standard();
        assert!(basic_block_vectors(&[], cfg).is_empty());
        assert!(pick_simpoints(&[], 3, 0).is_empty());
        // Shorter than one interval: no complete interval, no SimPoints.
        let recs = two_phase_trace(10, 1);
        assert!(simpoints_of(&recs, cfg, 2, 0).is_empty());
    }

    #[test]
    fn k_larger_than_intervals_is_clamped() {
        let recs = two_phase_trace(1000, 2);
        let cfg = BbvConfig {
            interval: 1000,
            dims: 8,
        };
        let points = simpoints_of(&recs, cfg, 10, 0);
        assert!(points.len() <= 2);
    }

    #[test]
    #[should_panic(expected = "k must be nonzero")]
    fn zero_k_is_rejected() {
        let _ = pick_simpoints(&[vec![0.0]], 0, 0);
    }

    #[test]
    #[should_panic(expected = "interval must be nonzero")]
    fn zero_interval_is_rejected() {
        let _ = basic_block_vectors(
            &[],
            BbvConfig {
                interval: 0,
                dims: 4,
            },
        );
    }
}
