//! Instruction trace model and workload generators.
//!
//! The TLP paper evaluates on ChampSim traces of SPEC CPU 2006/2017 and the
//! GAP benchmark suite. Those traces (140 GB of SimPoints) are not
//! redistributable here, so this crate rebuilds the workloads themselves:
//!
//! * [`record::TraceRecord`] — a register-accurate instruction record
//!   (loads/stores carry virtual addresses, every op carries source and
//!   destination registers so the simulator can model true data dependencies,
//!   e.g. the index-load → data-load chains that dominate graph analytics).
//! * [`gap`] — a faithful GAP substrate: CSR graphs with the Table V degree
//!   distributions and the six Table IV kernels (BFS, PageRank,
//!   Shiloach–Vishkin CC, Brandes BC, TC, Δ-stepping SSSP) instrumented to
//!   emit every memory access they perform.
//! * [`spec`] — 24 SPEC-like kernels that mimic the dominant memory behavior
//!   of the corresponding benchmarks (pointer chasing for mcf, streaming for
//!   lbm, stencils for cactus, sparse matvec for soplex, ...).
//! * [`catalog`] — the named single-core workload sets used throughout the
//!   evaluation (55 workloads: 31 GAP + 24 SPEC).
//!
//! # Example
//!
//! ```
//! use tlp_trace::catalog::{self, Scale};
//! use tlp_trace::source::capture;
//!
//! let w = catalog::workload("bfs.kron", Scale::Tiny).expect("known workload");
//! let records = capture(w.as_ref(), 10_000);
//! assert_eq!(records.len(), 10_000);
//! assert!(records.iter().any(|r| r.op.is_load()));
//! ```

pub mod catalog;
pub mod emit;
pub mod file;
pub mod gap;
pub mod record;
pub mod simpoint;
pub mod sink;
pub mod source;
pub mod spec;
pub mod stats;

pub use file::{read_trace, write_trace, FileTrace, TraceFile};
pub use record::{Op, Reg, TraceRecord};
pub use sink::TraceSink;
pub use source::{capture, StreamingTrace, TraceSource, VecTrace};
