//! The named workload catalog: the paper's 55 single-core workloads.
//!
//! * 31 GAP workloads: the 36 (kernel × graph) combinations minus the five
//!   lowest-MPKI ones (the paper filters out workloads with baseline LLC
//!   MPKI ≤ 1; in our scaled setup the road-network combinations with high
//!   locality and triangle counting on sparse graphs fall below the bar).
//! * 24 SPEC-like workloads (see [`crate::spec`]).

use std::collections::HashMap;
use std::sync::Arc;

use crate::emit::Workload;
use crate::gap::{GapWorkload, Graph, GraphKind, GraphScale, Kernel};
use crate::spec::{spec_workloads, SpecScale};

/// Unified workload scale (see [`GraphScale`] and [`SpecScale`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Unit tests and doctests.
    Tiny,
    /// Integration tests and Criterion benches.
    Quick,
    /// Full harness runs.
    Full,
}

impl Scale {
    fn graph(self) -> GraphScale {
        match self {
            Scale::Tiny => GraphScale::Tiny,
            Scale::Quick => GraphScale::Quick,
            Scale::Full => GraphScale::Full,
        }
    }

    fn spec(self) -> SpecScale {
        match self {
            Scale::Tiny => SpecScale::Tiny,
            Scale::Quick => SpecScale::Quick,
            Scale::Full => SpecScale::Full,
        }
    }
}

/// The five (kernel, graph) combinations excluded by the paper's
/// "LLC MPKI > 1" filter in our scaled reproduction.
pub const EXCLUDED_GAP: [(&str, &str); 5] = [
    ("bfs", "road"),
    ("bc", "road"),
    ("cc", "road"),
    ("tc", "road"),
    ("tc", "friendster"),
];

/// Seed used for graph construction throughout the evaluation.
pub const GRAPH_SEED: u64 = 0x7501;

fn is_excluded(kernel: Kernel, kind: GraphKind) -> bool {
    EXCLUDED_GAP
        .iter()
        .any(|&(k, g)| k == kernel.name() && g == kind.name())
}

/// Builds the 31 GAP workloads at `scale`. Graphs are shared between the
/// kernels that run on them.
#[must_use]
pub fn gap_workloads(scale: Scale) -> Vec<Arc<dyn Workload>> {
    let mut graphs: HashMap<GraphKind, Arc<Graph>> = HashMap::new();
    let mut out: Vec<Arc<dyn Workload>> = Vec::new();
    for kernel in Kernel::ALL {
        for kind in GraphKind::ALL {
            if is_excluded(kernel, kind) {
                continue;
            }
            let graph = graphs
                .entry(kind)
                .or_insert_with(|| Arc::new(Graph::build(kind, scale.graph(), GRAPH_SEED)))
                .clone();
            out.push(Arc::new(GapWorkload::with_graph(kernel, kind, graph)));
        }
    }
    out
}

/// Builds the 24 SPEC-like workloads at `scale`.
#[must_use]
pub fn spec_workload_set(scale: Scale) -> Vec<Arc<dyn Workload>> {
    spec_workloads(scale.spec())
        .into_iter()
        .map(|w| Arc::new(w) as Arc<dyn Workload>)
        .collect()
}

/// The full single-core evaluation set: 24 SPEC + 31 GAP = 55 workloads,
/// in the SPEC-then-GAP order the paper's figures use.
#[must_use]
pub fn single_core_set(scale: Scale) -> Vec<Arc<dyn Workload>> {
    let mut out = spec_workload_set(scale);
    out.extend(gap_workloads(scale));
    out
}

/// Looks up one workload by name (e.g. `"bfs.kron"` or `"spec.mcf_06"`).
///
/// Returns `None` for unknown names. GAP lookups build only the one graph
/// they need.
#[must_use]
pub fn workload(name: &str, scale: Scale) -> Option<Arc<dyn Workload>> {
    if let Some(rest) = name.strip_prefix("spec.") {
        return spec_workload_set(scale)
            .into_iter()
            .find(|w| w.name() == format!("spec.{rest}"));
    }
    let (k, g) = name.split_once('.')?;
    let kernel = Kernel::from_name(k)?;
    let kind = GraphKind::from_name(g)?;
    Some(Arc::new(GapWorkload::new(
        kernel,
        kind,
        scale.graph(),
        GRAPH_SEED,
    )))
}

/// All catalog names (55 entries), SPEC first, then GAP.
#[must_use]
pub fn all_names(scale: Scale) -> Vec<String> {
    single_core_set(scale)
        .iter()
        .map(|w| w.name().to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::Suite;

    #[test]
    fn single_core_set_has_55_workloads() {
        let set = single_core_set(Scale::Tiny);
        assert_eq!(set.len(), 55);
        let spec = set.iter().filter(|w| w.suite() == Suite::Spec).count();
        let gap = set.iter().filter(|w| w.suite() == Suite::Gap).count();
        assert_eq!((spec, gap), (24, 31));
    }

    #[test]
    fn names_are_unique() {
        let names = all_names(Scale::Tiny);
        let set: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn excluded_combinations_absent() {
        let names = all_names(Scale::Tiny);
        for (k, g) in EXCLUDED_GAP {
            assert!(!names.contains(&format!("{k}.{g}")), "{k}.{g} not excluded");
        }
    }

    #[test]
    fn lookup_finds_gap_and_spec() {
        assert!(workload("pr.twitter", Scale::Tiny).is_some());
        assert!(workload("spec.mcf_06", Scale::Tiny).is_some());
        assert!(workload("nope.nope", Scale::Tiny).is_none());
        assert!(workload("garbage", Scale::Tiny).is_none());
    }

    #[test]
    fn lookup_name_matches_request() {
        let w = workload("sssp.kron", Scale::Tiny).unwrap();
        assert_eq!(w.name(), "sssp.kron");
    }
}
