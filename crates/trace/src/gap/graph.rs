//! CSR graphs and the six input-graph generators of Table V.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulation scale: trades graph size (and therefore warmup length) for
/// runtime, while keeping every footprint much larger than the LLC so that
/// the off-chip fraction of accesses stays in the paper's regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphScale {
    /// ~1 K vertices — doctests and unit tests only.
    Tiny,
    /// ~128 K vertices — integration tests and Criterion benches.
    Quick,
    /// ~256 K vertices — full harness runs.
    Full,
}

impl GraphScale {
    /// Base vertex count at this scale.
    ///
    /// Quick/Full keep every property array and the CSR structure well
    /// beyond the 1.375 MB/core LLC so that the irregular property accesses
    /// reach DRAM like the paper's full-size inputs do.
    #[must_use]
    pub fn vertices(self) -> u32 {
        match self {
            GraphScale::Tiny => 1 << 10,
            GraphScale::Quick => 1 << 17,
            GraphScale::Full => 1 << 18,
        }
    }
}

/// The six paper input graphs (Table V), reproduced as synthetic generators
/// with matching degree-distribution *shapes* (absolute sizes are scaled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// Kronecker/RMAT power-law graph (paper: Kron, 134 M vertices).
    Kron,
    /// Uniform random graph (paper: Urand).
    Urand,
    /// 2-D grid road network: degree ~4, huge diameter (paper: Road).
    Road,
    /// Web crawl: strong power law with host locality (paper: Web).
    Web,
    /// Social network, heavy-tailed (paper: Twitter).
    Twitter,
    /// Community-structured social graph (paper: Friendster).
    Friendster,
}

impl GraphKind {
    /// All six kinds, in the paper's Table V order.
    pub const ALL: [GraphKind; 6] = [
        GraphKind::Web,
        GraphKind::Road,
        GraphKind::Twitter,
        GraphKind::Kron,
        GraphKind::Urand,
        GraphKind::Friendster,
    ];

    /// Short lowercase name used in workload ids (e.g. `bfs.kron`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GraphKind::Kron => "kron",
            GraphKind::Urand => "urand",
            GraphKind::Road => "road",
            GraphKind::Web => "web",
            GraphKind::Twitter => "twitter",
            GraphKind::Friendster => "friendster",
        }
    }

    /// Parses a short name.
    #[must_use]
    pub fn from_name(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// An undirected graph in compressed sparse row form, with sorted and
/// deduplicated adjacency lists (required by the triangle-counting kernel).
#[derive(Debug, Clone)]
pub struct Graph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Graph {
    /// Builds a graph of `kind` at `scale`, deterministically from `seed`.
    #[must_use]
    pub fn build(kind: GraphKind, scale: GraphScale, seed: u64) -> Self {
        let n = scale.vertices();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6a70_6172_7467_6170);
        let edges = match kind {
            GraphKind::Kron => rmat_edges(n, 8, [0.57, 0.19, 0.19], &mut rng),
            GraphKind::Twitter => rmat_edges(n, 8, [0.65, 0.15, 0.12], &mut rng),
            GraphKind::Web => rmat_edges(n, 6, [0.45, 0.25, 0.20], &mut rng),
            GraphKind::Urand => urand_edges(n, 8, &mut rng),
            GraphKind::Road => road_edges(n),
            GraphKind::Friendster => community_edges(n, 10, 64, &mut rng),
        };
        Self::from_edges(n, &edges)
    }

    /// Builds a graph from an undirected edge list. Self-loops are dropped,
    /// parallel edges deduplicated, adjacency sorted.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    #[must_use]
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Self {
        let mut deg = vec![0u32; n as usize + 1];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            if u != v {
                deg[u as usize + 1] += 1;
                deg[v as usize + 1] += 1;
            }
        }
        let mut offsets = deg;
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; offsets[n as usize] as usize];
        for &(u, v) in edges {
            if u != v {
                targets[cursor[u as usize] as usize] = v;
                cursor[u as usize] += 1;
                targets[cursor[v as usize] as usize] = u;
                cursor[v as usize] += 1;
            }
        }
        // Sort + dedup adjacency per vertex, then rebuild compact offsets.
        let mut new_targets = Vec::with_capacity(targets.len());
        let mut new_offsets = Vec::with_capacity(offsets.len());
        new_offsets.push(0u32);
        for v in 0..n as usize {
            let (b, e) = (offsets[v] as usize, offsets[v + 1] as usize);
            let mut adj: Vec<u32> = targets[b..e].to_vec();
            adj.sort_unstable();
            adj.dedup();
            new_targets.extend_from_slice(&adj);
            new_offsets.push(u32::try_from(new_targets.len()).expect("edge count fits u32"));
        }
        Self {
            offsets: new_offsets,
            targets: new_targets,
        }
    }

    /// Number of vertices.
    #[inline]
    #[must_use]
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of directed edges (twice the undirected edge count).
    #[inline]
    #[must_use]
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Degree of `v`.
    #[inline]
    #[must_use]
    pub fn degree(&self, v: u32) -> u32 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Range of edge indices for `v` (index into the target array).
    #[inline]
    #[must_use]
    pub fn edge_range(&self, v: u32) -> std::ops::Range<u32> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }

    /// Neighbors of `v`, sorted ascending.
    #[inline]
    #[must_use]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let r = self.edge_range(v);
        &self.targets[r.start as usize..r.end as usize]
    }

    /// Edge target at CSR position `e`.
    #[inline]
    #[must_use]
    pub fn target(&self, e: u32) -> u32 {
        self.targets[e as usize]
    }

    /// Deterministic edge weight in `1..=63` (SSSP), derived from the edge
    /// index so the "weights array" has stable contents without storage.
    #[inline]
    #[must_use]
    pub fn weight(&self, e: u32) -> u32 {
        (tlp_weight_hash(u64::from(e)) % 63 + 1) as u32
    }

    /// A vertex with nonzero degree near `hint` (used to pick BFS/SSSP roots).
    #[must_use]
    pub fn root_near(&self, hint: u64) -> u32 {
        let n = self.num_vertices();
        for probe in 0..n {
            let v = ((hint + u64::from(probe)) % u64::from(n)) as u32;
            if self.degree(v) > 0 {
                return v;
            }
        }
        0
    }
}

fn tlp_weight_hash(mut x: u64) -> u64 {
    x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 29;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^ (x >> 32)
}

/// RMAT (Kronecker) edge sampling with partition probabilities `[a, b, c]`
/// (d = 1 - a - b - c).
fn rmat_edges(n: u32, edge_factor: u32, p: [f64; 3], rng: &mut StdRng) -> Vec<(u32, u32)> {
    let scale = n.trailing_zeros();
    assert!(n.is_power_of_two(), "RMAT needs power-of-two vertex count");
    let m = (u64::from(n) * u64::from(edge_factor)) as usize;
    let [a, b, c] = p;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // top-left
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        edges.push((u, v));
    }
    edges
}

fn urand_edges(n: u32, edge_factor: u32, rng: &mut StdRng) -> Vec<(u32, u32)> {
    let m = (u64::from(n) * u64::from(edge_factor)) as usize;
    (0..m)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect()
}

/// Square grid with 4-neighbor connectivity: degree ≤ 4, diameter Θ(√n).
fn road_edges(n: u32) -> Vec<(u32, u32)> {
    let side = (f64::from(n)).sqrt() as u32;
    let mut edges = Vec::with_capacity((2 * side * side) as usize);
    for y in 0..side {
        for x in 0..side {
            let v = y * side + x;
            if x + 1 < side {
                edges.push((v, v + 1));
            }
            if y + 1 < side {
                edges.push((v, v + side));
            }
        }
    }
    edges
}

/// Dense communities of `community_size` vertices with `edge_factor` edges
/// per vertex, 10% of which escape to a random community.
fn community_edges(
    n: u32,
    edge_factor: u32,
    community_size: u32,
    rng: &mut StdRng,
) -> Vec<(u32, u32)> {
    let m = (u64::from(n) * u64::from(edge_factor)) as usize;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let base = u - (u % community_size);
        let v = if rng.gen_bool(0.9) {
            (base + rng.gen_range(0..community_size)).min(n - 1)
        } else {
            rng.gen_range(0..n)
        };
        edges.push((u, v));
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_builds_sorted_deduped_csr() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 3)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert_eq!(g.neighbors(3), &[2]); // self-loop dropped
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_validates_endpoints() {
        let _ = Graph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn builders_are_deterministic() {
        for kind in GraphKind::ALL {
            let a = Graph::build(kind, GraphScale::Tiny, 7);
            let b = Graph::build(kind, GraphScale::Tiny, 7);
            assert_eq!(a.offsets, b.offsets, "{kind:?} offsets differ");
            assert_eq!(a.targets, b.targets, "{kind:?} targets differ");
            let c = Graph::build(kind, GraphScale::Tiny, 8);
            if kind != GraphKind::Road {
                assert_ne!(a.targets, c.targets, "{kind:?} ignores seed");
            }
        }
    }

    #[test]
    fn kron_is_power_law_urand_is_not() {
        let kron = Graph::build(GraphKind::Kron, GraphScale::Tiny, 1);
        let urand = Graph::build(GraphKind::Urand, GraphScale::Tiny, 1);
        let max_deg = |g: &Graph| (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap();
        let kron_max = max_deg(&kron);
        let urand_max = max_deg(&urand);
        // Power-law graphs concentrate edges on hubs.
        assert!(
            kron_max > 4 * urand_max,
            "kron max degree {kron_max} not ≫ urand {urand_max}"
        );
    }

    #[test]
    fn road_has_bounded_degree() {
        let g = Graph::build(GraphKind::Road, GraphScale::Tiny, 1);
        assert!((0..g.num_vertices()).all(|v| g.degree(v) <= 4));
    }

    #[test]
    fn adjacency_is_sorted() {
        let g = Graph::build(GraphKind::Twitter, GraphScale::Tiny, 3);
        for v in 0..g.num_vertices() {
            let adj = g.neighbors(v);
            assert!(adj.windows(2).all(|w| w[0] < w[1]), "unsorted adj at {v}");
        }
    }

    #[test]
    fn graph_is_symmetric() {
        let g = Graph::build(GraphKind::Web, GraphScale::Tiny, 5);
        for v in 0..g.num_vertices() {
            for &u in g.neighbors(v) {
                assert!(
                    g.neighbors(u).binary_search(&v).is_ok(),
                    "edge {v}->{u} missing reverse"
                );
            }
        }
    }

    #[test]
    fn weights_are_stable_and_positive() {
        let g = Graph::build(GraphKind::Kron, GraphScale::Tiny, 1);
        for e in 0..64.min(g.num_edges() as u32) {
            let w = g.weight(e);
            assert!((1..=63).contains(&w));
            assert_eq!(w, g.weight(e));
        }
    }

    #[test]
    fn root_near_finds_connected_vertex() {
        let g = Graph::build(GraphKind::Kron, GraphScale::Tiny, 2);
        let r = g.root_near(0xdead_beef);
        assert!(g.degree(r) > 0);
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in GraphKind::ALL {
            assert_eq!(GraphKind::from_name(k.name()), Some(k));
        }
        assert_eq!(GraphKind::from_name("nope"), None);
    }
}
