//! The six GAP kernels (Table IV), executed for real over the CSR graph
//! while emitting the loads/stores/branches each step performs.
//!
//! Every kernel returns its algorithmic result so tests can verify that we
//! run the genuine algorithm (Shiloach–Vishkin, Brandes, Δ-stepping, ...)
//! and not just an access-pattern sketch. Emission follows the data:
//! offset/target loads are sequential, property-array accesses are indexed
//! by the loaded edge target (a true load→load dependency), and queue
//! operations stream.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::emit::{regs, Emitter, Suite, Workload};
use crate::gap::graph::{Graph, GraphKind, GraphScale};
use crate::gap::layout;
use crate::sink::TraceSink;

const INF: u32 = u32::MAX;

/// The six GAP kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Breadth-first search (direction-optimizing push/pull).
    Bfs,
    /// PageRank (pull, damping 0.85).
    Pr,
    /// Connected components (Shiloach–Vishkin hook + compress).
    Cc,
    /// Betweenness centrality (Brandes, sampled sources).
    Bc,
    /// Triangle counting (sorted adjacency intersection).
    Tc,
    /// Single-source shortest paths (Δ-stepping).
    Sssp,
}

impl Kernel {
    /// All kernels in Table IV order.
    pub const ALL: [Kernel; 6] = [
        Kernel::Bc,
        Kernel::Bfs,
        Kernel::Cc,
        Kernel::Pr,
        Kernel::Tc,
        Kernel::Sssp,
    ];

    /// Short lowercase name used in workload ids (e.g. `bfs.kron`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Bfs => "bfs",
            Kernel::Pr => "pr",
            Kernel::Cc => "cc",
            Kernel::Bc => "bc",
            Kernel::Tc => "tc",
            Kernel::Sssp => "sssp",
        }
    }

    /// Parses a short name.
    #[must_use]
    pub fn from_name(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    fn code_base(self) -> u64 {
        let id = match self {
            Kernel::Bfs => 1,
            Kernel::Pr => 2,
            Kernel::Cc => 3,
            Kernel::Bc => 4,
            Kernel::Tc => 5,
            Kernel::Sssp => 6,
        };
        layout::CODE + id * 0x1_0000
    }
}

/// A (kernel, graph) pair as a restartable [`Workload`].
///
/// Each `generate` pass picks a fresh root (for BFS/BC/SSSP) from an
/// internal pass counter so that replays explore different parts of the
/// graph, like consecutive SimPoint phases would.
pub struct GapWorkload {
    kernel: Kernel,
    graph: Arc<Graph>,
    name: String,
    pass: AtomicU64,
}

impl GapWorkload {
    /// Builds the workload `kernel.kind` at `scale` (graph construction is
    /// deterministic in `seed`).
    #[must_use]
    pub fn new(kernel: Kernel, kind: GraphKind, scale: GraphScale, seed: u64) -> Self {
        let graph = Arc::new(Graph::build(kind, scale, seed));
        Self::with_graph(kernel, kind, graph)
    }

    /// Builds the workload around a pre-built (possibly shared) graph.
    #[must_use]
    pub fn with_graph(kernel: Kernel, kind: GraphKind, graph: Arc<Graph>) -> Self {
        Self {
            name: format!("{}.{}", kernel.name(), kind.name()),
            kernel,
            graph,
            pass: AtomicU64::new(0),
        }
    }

    /// The kernel this workload runs.
    #[must_use]
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }
}

impl std::fmt::Debug for GapWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GapWorkload")
            .field("name", &self.name)
            .field("vertices", &self.graph.num_vertices())
            .field("edges", &self.graph.num_edges())
            .finish()
    }
}

impl Workload for GapWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn suite(&self) -> Suite {
        Suite::Gap
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let pass = self.pass.fetch_add(1, Ordering::Relaxed);
        let mut e = Emitter::new(sink, self.kernel.code_base());
        let g = &*self.graph;
        let root = g.root_near(pass.wrapping_mul(0x9e37_79b9) + 13);
        match self.kernel {
            Kernel::Bfs => {
                bfs(g, root, &mut e);
            }
            Kernel::Pr => {
                pagerank(g, 2, &mut e);
            }
            Kernel::Cc => {
                connected_components(g, &mut e);
            }
            Kernel::Bc => {
                betweenness(g, &[root], &mut e);
            }
            Kernel::Tc => {
                triangle_count(g, &mut e);
            }
            Kernel::Sssp => {
                sssp(g, root, 16, &mut e);
            }
        }
    }
}

#[inline]
fn prop_a(v: u32) -> u64 {
    layout::PROP_A + u64::from(v) * 4
}
#[inline]
fn prop_b(v: u32) -> u64 {
    layout::PROP_B + u64::from(v) * 4
}
#[inline]
fn prop_c(v: u32) -> u64 {
    layout::PROP_C + u64::from(v) * 4
}
#[inline]
fn offsets_addr(v: u32) -> u64 {
    layout::OFFSETS + u64::from(v) * 4
}
#[inline]
fn targets_addr(e: u32) -> u64 {
    layout::TARGETS + u64::from(e) * 4
}
#[inline]
fn weights_addr(e: u32) -> u64 {
    layout::WEIGHTS + u64::from(e) * 4
}
#[inline]
fn queue_addr(i: u64) -> u64 {
    layout::QUEUE + i * 4
}

/// Emits the CSR bounds loads for vertex `v` (offsets[v], offsets[v+1]),
/// plus the index arithmetic around them.
fn emit_bounds(e: &mut Emitter<'_>, site: u32, v: u32) {
    e.alu(site, Some(regs::IDX), [Some(regs::IDX), None]);
    e.load_sized(site, offsets_addr(v), 4, regs::BEG, [Some(regs::IDX), None]);
    e.load_sized(
        site + 1,
        offsets_addr(v + 1),
        4,
        regs::END,
        [Some(regs::IDX), None],
    );
    e.alu(
        site + 1,
        Some(regs::END),
        [Some(regs::END), Some(regs::BEG)],
    );
}

/// Emits the edge-target load at CSR position `ei` (sequential stream),
/// plus the surrounding index/address arithmetic the compiled kernels
/// perform per edge (bounds math, shifts, accumulator updates).
fn emit_target(e: &mut Emitter<'_>, site: u32, ei: u32) {
    e.load_sized(
        site,
        targets_addr(ei),
        4,
        regs::NBR,
        [Some(regs::BEG), None],
    );
    e.alu(site, Some(regs::ADDR), [Some(regs::NBR), None]);
    e.alu(site, Some(regs::ADDR), [Some(regs::ADDR), None]);
    e.alu(site, Some(regs::ACC), [Some(regs::ACC), None]);
    e.alu(site, Some(regs::VAL2), [Some(regs::ADDR), Some(regs::ACC)]);
    e.alu(site, Some(regs::FLAG), [Some(regs::VAL2), None]);
    e.alu_burst(site, 2);
}

/// Direction-optimizing BFS from `root`; returns the parent array
/// (`u32::MAX` = unreached, `parent[root] == root`).
pub fn bfs(g: &Graph, root: u32, e: &mut Emitter<'_>) -> Vec<u32> {
    let n = g.num_vertices();
    let mut parent = vec![INF; n as usize];
    let mut in_frontier = vec![false; n as usize];
    parent[root as usize] = root;
    let mut frontier = vec![root];
    while !frontier.is_empty() && e.live() {
        // GAP's direction-optimizing heuristic: pull when the frontier is a
        // sizable fraction of the graph.
        let next = if frontier.len() as u64 * 14 > u64::from(n) {
            bfs_pull(g, &mut parent, &frontier, &mut in_frontier, e)
        } else {
            bfs_push(g, &mut parent, &frontier, e)
        };
        frontier = next;
    }
    parent
}

fn bfs_push(g: &Graph, parent: &mut [u32], frontier: &[u32], e: &mut Emitter<'_>) -> Vec<u32> {
    let mut next = Vec::new();
    for (qi, &u) in frontier.iter().enumerate() {
        if !e.live() {
            break;
        }
        // Pop u from the frontier queue (streaming load).
        e.load_sized(0, queue_addr(qi as u64), 4, regs::IDX, [None, None]);
        emit_bounds(e, 1, u);
        let r = g.edge_range(u);
        for ei in r {
            let v = g.target(ei);
            emit_target(e, 3, ei);
            // parent[v]: random access dependent on the target load.
            e.load_sized(4, prop_a(v), 4, regs::VAL, [Some(regs::NBR), None]);
            let unvisited = parent[v as usize] == INF;
            e.alu(5, Some(regs::FLAG), [Some(regs::VAL), None]);
            e.branch(6, !unvisited, 9, Some(regs::FLAG));
            if unvisited {
                parent[v as usize] = u;
                e.store_sized(7, prop_a(v), 4, Some(regs::IDX), Some(regs::NBR));
                e.store_sized(
                    8,
                    queue_addr(0x1_0000 + next.len() as u64),
                    4,
                    Some(regs::NBR),
                    None,
                );
                next.push(v);
            }
            e.loop_branch(9, ei + 1 < g.edge_range(u).end, 3);
        }
    }
    next
}

fn bfs_pull(
    g: &Graph,
    parent: &mut [u32],
    frontier: &[u32],
    in_frontier: &mut [bool],
    e: &mut Emitter<'_>,
) -> Vec<u32> {
    for f in in_frontier.iter_mut() {
        *f = false;
    }
    for &u in frontier {
        in_frontier[u as usize] = true;
        // Building the frontier bitmap: streaming store.
        e.store_sized(10, prop_c(u), 4, Some(regs::IDX), None);
    }
    let mut next = Vec::new();
    let n = g.num_vertices();
    for v in 0..n {
        if !e.live() {
            break;
        }
        // parent[v]: sequential scan.
        e.load_sized(11, prop_a(v), 4, regs::VAL, [None, None]);
        let unvisited = parent[v as usize] == INF;
        e.branch(12, !unvisited, 18, Some(regs::VAL));
        if !unvisited {
            continue;
        }
        emit_bounds(e, 13, v);
        for ei in g.edge_range(v) {
            let u = g.target(ei);
            emit_target(e, 15, ei);
            // in_frontier[u]: random, dependent on target load.
            e.load_sized(16, prop_c(u), 4, regs::VAL2, [Some(regs::NBR), None]);
            let hit = in_frontier[u as usize];
            e.branch(17, hit, 18, Some(regs::VAL2));
            if hit {
                parent[v as usize] = u;
                e.store_sized(18, prop_a(v), 4, Some(regs::NBR), None);
                next.push(v);
                break;
            }
        }
    }
    next
}

/// PageRank, pull direction, `iters` iterations; returns the final scores.
pub fn pagerank(g: &Graph, iters: u32, e: &mut Emitter<'_>) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    let damp = 0.85;
    let base = (1.0 - damp) / n as f64;
    let mut rank = vec![1.0 / n as f64; n];
    let mut contrib = vec![0.0f64; n];
    for _ in 0..iters {
        if !e.live() {
            break;
        }
        // Phase 1: contrib[u] = rank[u] / deg(u)  (streaming).
        for u in 0..n as u32 {
            e.load_sized(0, prop_a(u), 4, regs::VAL, [None, None]);
            e.fp(1, Some(regs::VAL2), [Some(regs::VAL), None]);
            e.store_sized(2, prop_b(u), 4, Some(regs::VAL2), None);
            let d = g.degree(u);
            contrib[u as usize] = if d > 0 {
                rank[u as usize] / f64::from(d)
            } else {
                0.0
            };
            if !e.live() {
                break;
            }
        }
        // Phase 2: rank[v] = base + damp * sum contrib[u]  (pull: random
        // reads of contrib[], indexed by the loaded edge target).
        for v in 0..n as u32 {
            if !e.live() {
                break;
            }
            emit_bounds(e, 3, v);
            let mut sum = 0.0;
            for ei in g.edge_range(v) {
                let u = g.target(ei);
                emit_target(e, 5, ei);
                e.load_sized(6, prop_b(u), 4, regs::VAL, [Some(regs::NBR), None]);
                e.fp(7, Some(regs::ACC), [Some(regs::VAL), Some(regs::ACC)]);
                sum += contrib[u as usize];
                e.loop_branch(8, ei + 1 < g.edge_range(v).end, 5);
            }
            rank[v as usize] = base + damp * sum;
            e.fp(9, Some(regs::VAL), [Some(regs::ACC), None]);
            e.store_sized(10, prop_a(v), 4, Some(regs::VAL), None);
        }
    }
    rank
}

/// Shiloach–Vishkin connected components; returns the component label of
/// every vertex (labels are component-minimum vertex ids after compression).
pub fn connected_components(g: &Graph, e: &mut Emitter<'_>) -> Vec<u32> {
    let n = g.num_vertices();
    let mut comp: Vec<u32> = (0..n).collect();
    for v in 0..n {
        e.store_sized(0, prop_a(v), 4, Some(regs::IDX), None);
        if !e.live() {
            break;
        }
    }
    let mut changed = true;
    while changed && e.live() {
        changed = false;
        // Hook phase: for every edge (u, v), link the higher root under the
        // lower one.
        for u in 0..n {
            if !e.live() {
                break;
            }
            e.load_sized(1, prop_a(u), 4, regs::VAL, [None, None]);
            emit_bounds(e, 2, u);
            for ei in g.edge_range(u) {
                let v = g.target(ei);
                emit_target(e, 4, ei);
                e.load_sized(5, prop_a(v), 4, regs::VAL2, [Some(regs::NBR), None]);
                let (cu, cv) = (comp[u as usize], comp[v as usize]);
                e.branch(6, cu == cv, 9, Some(regs::FLAG));
                if cu < cv && cv == comp[cv as usize] {
                    // comp[comp[v]] — dependent pointer chase.
                    e.load_sized(7, prop_a(cv), 4, regs::PTR, [Some(regs::VAL2), None]);
                    e.store_sized(8, prop_a(cv), 4, Some(regs::VAL), Some(regs::PTR));
                    comp[cv as usize] = cu;
                    changed = true;
                } else if cv < cu && cu == comp[cu as usize] {
                    e.load_sized(7, prop_a(cu), 4, regs::PTR, [Some(regs::VAL), None]);
                    e.store_sized(8, prop_a(cu), 4, Some(regs::VAL2), Some(regs::PTR));
                    comp[cu as usize] = cv;
                    changed = true;
                }
                e.loop_branch(9, ei + 1 < g.edge_range(u).end, 4);
            }
        }
        // Compress phase: pointer-jump every vertex to its root.
        for v in 0..n {
            if !e.live() {
                break;
            }
            e.load_sized(10, prop_a(v), 4, regs::PTR, [None, None]);
            while comp[v as usize] != comp[comp[v as usize] as usize] {
                // comp[comp[v]]: the classic dependent-load chain.
                e.load_sized(
                    11,
                    prop_a(comp[v as usize]),
                    4,
                    regs::PTR,
                    [Some(regs::PTR), None],
                );
                comp[v as usize] = comp[comp[v as usize] as usize];
                e.store_sized(12, prop_a(v), 4, Some(regs::PTR), None);
                if !e.live() {
                    break;
                }
            }
        }
    }
    comp
}

/// Brandes betweenness centrality from `sources` (unweighted); returns the
/// accumulated centrality scores.
pub fn betweenness(g: &Graph, sources: &[u32], e: &mut Emitter<'_>) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    let mut centrality = vec![0.0f64; n];
    for &s in sources {
        if !e.live() {
            break;
        }
        let mut sigma = vec![0u64; n];
        let mut depth = vec![i32::MAX; n];
        let mut delta = vec![0.0f64; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        sigma[s as usize] = 1;
        depth[s as usize] = 0;
        queue.push_back(s);
        // Forward BFS accumulating shortest-path counts.
        while let Some(u) = queue.pop_front() {
            if !e.live() {
                return centrality;
            }
            stack.push(u);
            e.load_sized(
                0,
                queue_addr(stack.len() as u64),
                4,
                regs::IDX,
                [None, None],
            );
            emit_bounds(e, 1, u);
            for ei in g.edge_range(u) {
                let v = g.target(ei);
                emit_target(e, 3, ei);
                e.load_sized(4, prop_c(v), 4, regs::VAL, [Some(regs::NBR), None]);
                if depth[v as usize] == i32::MAX {
                    depth[v as usize] = depth[u as usize] + 1;
                    e.store_sized(5, prop_c(v), 4, Some(regs::VAL), None);
                    queue.push_back(v);
                    e.store_sized(
                        6,
                        queue_addr(0x2_0000 + u64::from(v)),
                        4,
                        Some(regs::NBR),
                        None,
                    );
                }
                e.branch(
                    7,
                    depth[v as usize] == depth[u as usize] + 1,
                    8,
                    Some(regs::FLAG),
                );
                if depth[v as usize] == depth[u as usize] + 1 {
                    sigma[v as usize] += sigma[u as usize];
                    e.load_sized(8, prop_b(v), 4, regs::VAL2, [Some(regs::NBR), None]);
                    e.store_sized(9, prop_b(v), 4, Some(regs::VAL2), None);
                }
                e.loop_branch(10, ei + 1 < g.edge_range(u).end, 3);
            }
        }
        // Backward dependency accumulation.
        while let Some(w) = stack.pop() {
            if !e.live() {
                return centrality;
            }
            emit_bounds(e, 11, w);
            for ei in g.edge_range(w) {
                let v = g.target(ei);
                emit_target(e, 13, ei);
                e.load_sized(14, prop_c(v), 4, regs::VAL, [Some(regs::NBR), None]);
                e.branch(
                    15,
                    depth[v as usize] + 1 == depth[w as usize],
                    19,
                    Some(regs::VAL),
                );
                if depth[v as usize] + 1 == depth[w as usize] {
                    e.load_sized(16, prop_b(v), 4, regs::VAL2, [Some(regs::NBR), None]);
                    let share = sigma[v as usize] as f64 / sigma[w as usize] as f64
                        * (1.0 + delta[w as usize]);
                    delta[v as usize] += share;
                    e.fp(17, Some(regs::ACC), [Some(regs::VAL2), Some(regs::ACC)]);
                    e.store_sized(18, prop_b(v), 4, Some(regs::ACC), None);
                }
                e.loop_branch(19, ei + 1 < g.edge_range(w).end, 13);
            }
            if w != s {
                centrality[w as usize] += delta[w as usize];
                e.store_sized(20, prop_a(w), 4, Some(regs::ACC), None);
            }
        }
    }
    centrality
}

/// Triangle counting via sorted-adjacency intersection; returns the count.
pub fn triangle_count(g: &Graph, e: &mut Emitter<'_>) -> u64 {
    let n = g.num_vertices();
    let mut triangles = 0u64;
    for u in 0..n {
        if !e.live() {
            break;
        }
        emit_bounds(e, 0, u);
        for ei in g.edge_range(u) {
            let v = g.target(ei);
            emit_target(e, 2, ei);
            // GAP's OrderedCount convention: count each triangle once with
            // w < v < u. Adjacency is sorted, so v >= u ends the useful part.
            e.branch(3, v >= u, 4, Some(regs::NBR));
            if v >= u {
                break;
            }
            // Two-pointer intersection of adj(u) and adj(v): streaming loads
            // from both ranges, compare-and-advance branches; stop once a
            // common candidate reaches v.
            let (mut i, mut j) = (g.edge_range(u).start, g.edge_range(v).start);
            let (iend, jend) = (g.edge_range(u).end, g.edge_range(v).end);
            while i < iend && j < jend {
                let (a, b) = (g.target(i), g.target(j));
                if a >= v || b >= v {
                    break;
                }
                e.load_sized(4, targets_addr(i), 4, regs::VAL, [Some(regs::BEG), None]);
                e.load_sized(5, targets_addr(j), 4, regs::VAL2, [Some(regs::END), None]);
                e.alu(6, Some(regs::FLAG), [Some(regs::VAL), Some(regs::VAL2)]);
                e.branch(7, a == b, 4, Some(regs::FLAG));
                match a.cmp(&b) {
                    std::cmp::Ordering::Equal => {
                        triangles += 1;
                        i += 1;
                        j += 1;
                    }
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                }
                if !e.live() {
                    return triangles;
                }
            }
        }
    }
    triangles
}

/// Δ-stepping SSSP from `root` with bucket width `delta`; returns distances
/// (`u32::MAX` = unreachable). Edge weights come from [`Graph::weight`].
pub fn sssp(g: &Graph, root: u32, delta: u32, e: &mut Emitter<'_>) -> Vec<u32> {
    assert!(delta > 0, "delta must be positive");
    let n = g.num_vertices() as usize;
    let mut dist = vec![INF; n];
    dist[root as usize] = 0;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new()];
    buckets[0].push(root);
    let mut bi = 0usize;
    while bi < buckets.len() {
        if !e.live() {
            break;
        }
        while let Some(u) = buckets[bi].pop() {
            if !e.live() {
                break;
            }
            // Bucket pop: streaming load.
            e.load_sized(
                0,
                queue_addr(u64::from(u) & 0xffff),
                4,
                regs::IDX,
                [None, None],
            );
            e.load_sized(1, prop_a(u), 4, regs::VAL, [Some(regs::IDX), None]);
            let du = dist[u as usize];
            // Stale-entry check.
            e.branch(2, (du / delta) as usize != bi, 3, Some(regs::VAL));
            if (du / delta) as usize != bi {
                continue;
            }
            emit_bounds(e, 3, u);
            for ei in g.edge_range(u) {
                let v = g.target(ei);
                let w = g.weight(ei);
                emit_target(e, 5, ei);
                e.load_sized(6, weights_addr(ei), 4, regs::VAL2, [Some(regs::BEG), None]);
                e.load_sized(7, prop_a(v), 4, regs::ACC, [Some(regs::NBR), None]);
                let nd = du.saturating_add(w);
                let improves = nd < dist[v as usize];
                e.branch(8, !improves, 11, Some(regs::ACC));
                if improves {
                    dist[v as usize] = nd;
                    e.store_sized(9, prop_a(v), 4, Some(regs::VAL2), Some(regs::NBR));
                    let nb = (nd / delta) as usize;
                    if nb >= buckets.len() {
                        buckets.resize(nb + 1, Vec::new());
                    }
                    buckets[nb].push(v);
                    e.store_sized(
                        10,
                        queue_addr(0x3_0000 + u64::from(v)),
                        4,
                        Some(regs::NBR),
                        None,
                    );
                }
                e.loop_branch(11, ei + 1 < g.edge_range(u).end, 5);
            }
        }
        bi += 1;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CountingSink, RecorderSink};
    use crate::source::capture;

    fn tiny(kind: GraphKind) -> Graph {
        Graph::build(kind, GraphScale::Tiny, 42)
    }

    fn big_emitter(sink: &mut RecorderSink) -> Emitter<'_> {
        Emitter::new(sink, 0x1000)
    }

    #[test]
    fn bfs_builds_valid_parent_tree() {
        let g = tiny(GraphKind::Kron);
        let root = g.root_near(1);
        let mut sink = RecorderSink::new(50_000_000);
        let parent = bfs(&g, root, &mut big_emitter(&mut sink));
        assert_eq!(parent[root as usize], root);
        let mut reached = 0;
        for v in 0..g.num_vertices() {
            let p = parent[v as usize];
            if p == INF {
                continue;
            }
            reached += 1;
            if v != root {
                assert!(
                    g.neighbors(p).binary_search(&v).is_ok(),
                    "parent {p} of {v} is not a neighbor"
                );
            }
        }
        assert!(reached > 1, "BFS reached nothing");
    }

    #[test]
    fn bfs_matches_reference_reachability() {
        let g = tiny(GraphKind::Road);
        let root = g.root_near(5);
        let mut sink = RecorderSink::new(100_000_000);
        let parent = bfs(&g, root, &mut big_emitter(&mut sink));
        // Reference reachability via simple BFS.
        let mut seen = vec![false; g.num_vertices() as usize];
        let mut q = std::collections::VecDeque::from([root]);
        seen[root as usize] = true;
        while let Some(u) = q.pop_front() {
            for &v in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    q.push_back(v);
                }
            }
        }
        for v in 0..g.num_vertices() {
            assert_eq!(
                parent[v as usize] != INF,
                seen[v as usize],
                "reachability mismatch at {v}"
            );
        }
    }

    #[test]
    fn pagerank_sums_to_one() {
        let g = tiny(GraphKind::Urand);
        let mut sink = RecorderSink::new(100_000_000);
        let ranks = pagerank(&g, 3, &mut big_emitter(&mut sink));
        let sum: f64 = ranks.iter().sum();
        // Dangling mass leaks, but the sum stays near 1 for connected graphs.
        assert!((0.5..=1.05).contains(&sum), "rank sum {sum} out of range");
        assert!(ranks.iter().all(|&r| r >= 0.0));
    }

    #[test]
    fn cc_matches_union_find() {
        let g = tiny(GraphKind::Road);
        let mut sink = RecorderSink::new(200_000_000);
        let comp = connected_components(&g, &mut big_emitter(&mut sink));
        // Union-find reference.
        let n = g.num_vertices() as usize;
        let mut uf: Vec<u32> = (0..n as u32).collect();
        fn find(uf: &mut Vec<u32>, x: u32) -> u32 {
            if uf[x as usize] != x {
                let r = find(uf, uf[x as usize]);
                uf[x as usize] = r;
            }
            uf[x as usize]
        }
        for u in 0..n as u32 {
            for &v in g.neighbors(u) {
                let (ru, rv) = (find(&mut uf, u), find(&mut uf, v));
                if ru != rv {
                    uf[ru.max(rv) as usize] = ru.min(rv);
                }
            }
        }
        for u in 0..n as u32 {
            for &v in g.neighbors(u) {
                assert_eq!(comp[u as usize], comp[v as usize], "edge {u}-{v} split");
            }
        }
        let sv_comps: std::collections::HashSet<u32> = comp.iter().copied().collect();
        let uf_comps: std::collections::HashSet<u32> =
            (0..n as u32).map(|v| find(&mut uf, v)).collect();
        assert_eq!(sv_comps.len(), uf_comps.len(), "component count differs");
    }

    #[test]
    fn tc_matches_bruteforce_on_small_graph() {
        // Two triangles sharing an edge: (0,1,2) and (1,2,3).
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let mut sink = RecorderSink::new(1_000_000);
        let t = triangle_count(&g, &mut big_emitter(&mut sink));
        assert_eq!(t, 2);
    }

    #[test]
    fn tc_counts_kron_triangles() {
        let g = tiny(GraphKind::Kron);
        let mut sink = RecorderSink::new(500_000_000);
        let t = triangle_count(&g, &mut big_emitter(&mut sink));
        assert!(t > 0, "power-law graph should contain triangles");
    }

    #[test]
    fn sssp_matches_dijkstra() {
        let g = tiny(GraphKind::Road);
        let root = g.root_near(3);
        let mut sink = RecorderSink::new(500_000_000);
        let dist = sssp(&g, root, 16, &mut big_emitter(&mut sink));
        // Dijkstra reference with identical weights.
        let n = g.num_vertices() as usize;
        let mut ref_dist = vec![u64::MAX; n];
        ref_dist[root as usize] = 0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(std::cmp::Reverse((0u64, root)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > ref_dist[u as usize] {
                continue;
            }
            for ei in g.edge_range(u) {
                let v = g.target(ei);
                let nd = d + u64::from(g.weight(ei));
                if nd < ref_dist[v as usize] {
                    ref_dist[v as usize] = nd;
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        for v in 0..n {
            let expect = if ref_dist[v] == u64::MAX {
                INF
            } else {
                u32::try_from(ref_dist[v]).unwrap()
            };
            assert_eq!(dist[v], expect, "distance mismatch at {v}");
        }
    }

    #[test]
    fn bc_assigns_positive_centrality_on_path() {
        // Path 0-1-2: vertex 1 is on every shortest path between 0 and 2.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut sink = RecorderSink::new(1_000_000);
        let c = betweenness(&g, &[0, 1, 2], &mut big_emitter(&mut sink));
        assert!(
            c[1] > c[0] && c[1] > c[2],
            "middle vertex must dominate: {c:?}"
        );
    }

    #[test]
    fn workloads_emit_reasonable_mix() {
        for kernel in Kernel::ALL {
            let w = GapWorkload::new(kernel, GraphKind::Kron, GraphScale::Tiny, 9);
            let mut sink = CountingSink::with_budget(20_000);
            while !sink.is_closed() {
                w.generate(&mut sink);
            }
            let loads = sink.loads() as f64 / sink.total() as f64;
            let branches = sink.branches() as f64 / sink.total() as f64;
            assert!(
                (0.15..=0.75).contains(&loads),
                "{} load fraction {loads:.2} out of range",
                w.name()
            );
            assert!(branches > 0.02, "{} emits almost no branches", w.name());
        }
    }

    #[test]
    fn workload_passes_vary_roots() {
        let w = GapWorkload::new(Kernel::Bfs, GraphKind::Kron, GraphScale::Tiny, 9);
        let a = capture(&w, 5_000);
        let b = capture(&w, 5_000);
        assert_eq!(a.len(), b.len());
        // Not asserting equality of contents: successive passes use
        // different roots, so traces should diverge at some point.
        let _ = (a, b);
    }

    #[test]
    fn kernel_names_roundtrip() {
        for k in Kernel::ALL {
            assert_eq!(Kernel::from_name(k.name()), Some(k));
        }
        assert_eq!(Kernel::from_name("nope"), None);
    }
}
