//! GAP benchmark substrate: graphs (Table V) and kernels (Table IV).
//!
//! The paper evaluates six GAP kernels over six input graphs. We rebuild
//! both: [`graph`] provides CSR graphs with the degree distributions of the
//! paper's inputs (power-law Kron/Twitter/Web, uniform Urand, high-diameter
//! Road, community-structured Friendster), and [`kernels`] runs the *actual
//! algorithms* (direction-optimizing BFS, PageRank, Shiloach–Vishkin CC,
//! Brandes BC, triangle counting, Δ-stepping SSSP) while emitting every
//! memory access they perform, with register dependencies preserved
//! (an edge-target load feeds the property-array load it indexes).

pub mod graph;
pub mod kernels;

pub use graph::{Graph, GraphKind, GraphScale};
pub use kernels::{GapWorkload, Kernel};

/// Virtual-address layout of the GAP data structures.
///
/// Regions are spaced far apart so the simulator's first-touch page
/// allocation produces distinct physical regions per structure.
pub mod layout {
    /// Pseudo text segment (instruction PCs).
    pub const CODE: u64 = 0x0040_0000;
    /// CSR offsets array (`u32` per vertex).
    pub const OFFSETS: u64 = 0x0001_0000_0000;
    /// CSR edge-target array (`u32` per edge).
    pub const TARGETS: u64 = 0x0002_0000_0000;
    /// Edge weights (`u32` per edge, SSSP only).
    pub const WEIGHTS: u64 = 0x0003_0000_0000;
    /// Primary property array (parent / rank / comp / dist).
    pub const PROP_A: u64 = 0x0004_0000_0000;
    /// Secondary property array (next-rank / sigma).
    pub const PROP_B: u64 = 0x0005_0000_0000;
    /// Tertiary property array (delta / depth).
    pub const PROP_C: u64 = 0x0006_0000_0000;
    /// Worklists, frontiers and bucket queues.
    pub const QUEUE: u64 = 0x0007_0000_0000;
    /// Scratch (visit stacks, counters).
    pub const SCRATCH: u64 = 0x0008_0000_0000;
}
