//! Workload characterization: instruction mix, memory footprint, reuse
//! and stride profiles of a trace.
//!
//! The paper characterizes its workloads structurally (Table IV: element
//! sizes, push/pull style, frontier use) and selects them by cache
//! behaviour (§V-B filters on LLC MPKI > 1). This module computes the
//! equivalent measurable properties for any record stream, so the
//! synthetic catalog can be audited against the behaviours the paper
//! relies on — big footprints, irregular strides, dependent loads.

use std::collections::HashMap;

use crate::record::{Op, TraceRecord};

/// Cache-line size in bytes (matches `tlp-sim`; kept local so `tlp-trace`
/// stays independent of the simulator crate).
const LINE_SIZE: u64 = 64;

/// Aggregate characterization of one trace slice.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Total records profiled.
    pub instructions: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Branches.
    pub branches: u64,
    /// Taken branches.
    pub taken_branches: u64,
    /// Distinct cache lines touched (memory footprint in lines).
    pub footprint_lines: u64,
    /// Distinct 4 KB pages touched.
    pub footprint_pages: u64,
    /// Distinct static PCs observed.
    pub static_pcs: u64,
    /// Loads whose address register was written by an earlier load
    /// (pointer-chase / indirect-access indicator).
    pub dependent_loads: u64,
    /// Per-PC dominant stride coverage: fraction of memory accesses whose
    /// stride (vs. the same PC's previous access) equals that PC's most
    /// common stride. High values mean strided/prefetchable traffic.
    pub stride_regularity: f64,
}

impl TraceProfile {
    /// Loads per kilo-instruction.
    #[must_use]
    pub fn loads_pki(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.loads as f64 * 1000.0 / self.instructions as f64
    }

    /// Fraction of memory instructions among all instructions.
    #[must_use]
    pub fn mem_fraction(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        (self.loads + self.stores) as f64 / self.instructions as f64
    }

    /// Memory footprint in bytes (lines × 64).
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_lines * LINE_SIZE
    }

    /// Fraction of loads that depend on a prior load's result for their
    /// address.
    #[must_use]
    pub fn dependent_load_fraction(&self) -> f64 {
        if self.loads == 0 {
            return 0.0;
        }
        self.dependent_loads as f64 / self.loads as f64
    }
}

/// Profiles a record slice.
#[must_use]
pub fn profile(records: &[TraceRecord]) -> TraceProfile {
    let mut loads = 0u64;
    let mut stores = 0u64;
    let mut branches = 0u64;
    let mut taken = 0u64;
    let mut lines: HashMap<u64, ()> = HashMap::new();
    let mut pages: HashMap<u64, ()> = HashMap::new();
    let mut pcs: HashMap<u64, ()> = HashMap::new();
    // Which registers currently hold a loaded value.
    let mut reg_from_load = [false; crate::record::Reg::COUNT];
    let mut dependent_loads = 0u64;
    // Per-PC last address and stride histogram (top stride only).
    let mut last_addr: HashMap<u64, u64> = HashMap::new();
    let mut stride_counts: HashMap<(u64, i64), u64> = HashMap::new();
    let mut strided_total = 0u64;

    for r in records {
        pcs.entry(r.pc).or_insert(());
        match r.op {
            Op::Load => {
                loads += 1;
                let addr_dep = [r.src1, r.src2]
                    .iter()
                    .flatten()
                    .any(|reg| reg_from_load[reg.index()]);
                if addr_dep {
                    dependent_loads += 1;
                }
                if let Some(dst) = r.dst {
                    reg_from_load[dst.index()] = true;
                }
            }
            Op::Store => stores += 1,
            Op::Branch => {
                branches += 1;
                if r.taken {
                    taken += 1;
                }
            }
            Op::Alu | Op::Fp => {
                if let Some(dst) = r.dst {
                    reg_from_load[dst.index()] = false;
                }
            }
        }
        if r.op.is_mem() {
            lines.entry(r.addr / LINE_SIZE).or_insert(());
            pages.entry(r.addr / 4096).or_insert(());
            if let Some(prev) = last_addr.insert(r.pc, r.addr) {
                let stride = r.addr as i64 - prev as i64;
                *stride_counts.entry((r.pc, stride)).or_insert(0) += 1;
                strided_total += 1;
            }
        }
    }

    // Dominant-stride coverage: for each PC, take its most common stride's
    // count; sum over PCs; divide by all stride observations.
    let mut best_per_pc: HashMap<u64, u64> = HashMap::new();
    for (&(pc, _), &n) in &stride_counts {
        let e = best_per_pc.entry(pc).or_insert(0);
        if n > *e {
            *e = n;
        }
    }
    let dominant: u64 = best_per_pc.values().sum();
    let stride_regularity = if strided_total == 0 {
        0.0
    } else {
        dominant as f64 / strided_total as f64
    };

    TraceProfile {
        instructions: records.len() as u64,
        loads,
        stores,
        branches,
        taken_branches: taken,
        footprint_lines: lines.len() as u64,
        footprint_pages: pages.len() as u64,
        static_pcs: pcs.len() as u64,
        dependent_loads,
        stride_regularity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Reg;

    #[test]
    fn empty_trace_profiles_to_zero() {
        let p = profile(&[]);
        assert_eq!(p.instructions, 0);
        assert_eq!(p.loads_pki(), 0.0);
        assert_eq!(p.mem_fraction(), 0.0);
        assert_eq!(p.dependent_load_fraction(), 0.0);
        assert_eq!(p.stride_regularity, 0.0);
    }

    #[test]
    fn instruction_mix_is_counted() {
        let recs = vec![
            TraceRecord::load(0x400, 0x1000, 8, Reg(1), [None, None]),
            TraceRecord::store(0x404, 0x2000, 8, Some(Reg(1)), None),
            TraceRecord::alu(0x408, Some(Reg(2)), [Some(Reg(1)), None]),
            TraceRecord::branch(0x40c, true, 0x400, None),
            TraceRecord::branch(0x410, false, 0x400, None),
        ];
        let p = profile(&recs);
        assert_eq!(p.instructions, 5);
        assert_eq!(p.loads, 1);
        assert_eq!(p.stores, 1);
        assert_eq!(p.branches, 2);
        assert_eq!(p.taken_branches, 1);
        assert_eq!(p.static_pcs, 5);
        assert!((p.mem_fraction() - 0.4).abs() < 1e-12);
        assert!((p.loads_pki() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn footprint_counts_distinct_lines_and_pages() {
        let recs = vec![
            TraceRecord::load(0x400, 0x1000, 8, Reg(1), [None, None]),
            TraceRecord::load(0x400, 0x1008, 8, Reg(1), [None, None]), // same line
            TraceRecord::load(0x400, 0x1040, 8, Reg(1), [None, None]), // next line, same page
            TraceRecord::load(0x400, 0x9000, 8, Reg(1), [None, None]), // other page
        ];
        let p = profile(&recs);
        assert_eq!(p.footprint_lines, 3);
        assert_eq!(p.footprint_pages, 2);
        assert_eq!(p.footprint_bytes(), 3 * 64);
    }

    #[test]
    fn pointer_chase_is_flagged_dependent() {
        // load r2 <- [r2] repeatedly: every load after the first depends on
        // a loaded value.
        let recs: Vec<TraceRecord> = (0..10)
            .map(|i| TraceRecord::load(0x400, 0x1000 + i * 64, 8, Reg(2), [Some(Reg(2)), None]))
            .collect();
        let p = profile(&recs);
        assert_eq!(p.loads, 10);
        assert_eq!(p.dependent_loads, 9, "first load's source is not loaded");
        assert!((p.dependent_load_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn alu_breaks_load_dependence() {
        let recs = vec![
            TraceRecord::load(0x400, 0x1000, 8, Reg(2), [None, None]),
            // r2 is overwritten by an ALU op: the next load's address is
            // computed, not loaded.
            TraceRecord::alu(0x404, Some(Reg(2)), [Some(Reg(2)), None]),
            TraceRecord::load(0x408, 0x2000, 8, Reg(3), [Some(Reg(2)), None]),
        ];
        let p = profile(&recs);
        assert_eq!(p.dependent_loads, 0);
    }

    #[test]
    fn streaming_has_high_stride_regularity() {
        let recs: Vec<TraceRecord> = (0..100)
            .map(|i| TraceRecord::load(0x400, 0x1_0000 + i * 64, 8, Reg(1), [None, None]))
            .collect();
        let p = profile(&recs);
        assert!(
            p.stride_regularity > 0.99,
            "a pure stream is perfectly strided: {}",
            p.stride_regularity
        );
    }

    #[test]
    fn random_accesses_have_low_stride_regularity() {
        // Quadratic residues scatter the addresses; no repeated stride.
        let recs: Vec<TraceRecord> = (0..100u64)
            .map(|i| TraceRecord::load(0x400, (i * i * 37) % 100_000 * 64, 8, Reg(1), [None, None]))
            .collect();
        let p = profile(&recs);
        assert!(
            p.stride_regularity < 0.3,
            "scattered accesses must look irregular: {}",
            p.stride_regularity
        );
    }

    #[test]
    fn gap_kernels_are_less_regular_than_spec_streams() {
        use crate::catalog::{self, Scale};
        use crate::source::capture;
        let stream = catalog::workload("spec.lbm_17", Scale::Tiny).expect("catalog");
        let graph = catalog::workload("bfs.kron", Scale::Tiny).expect("catalog");
        let ps = profile(&capture(stream.as_ref(), 20_000));
        let pg = profile(&capture(graph.as_ref(), 20_000));
        assert!(
            ps.stride_regularity > pg.stride_regularity,
            "lbm (stream) {:.2} must be more regular than bfs {:.2}",
            ps.stride_regularity,
            pg.stride_regularity
        );
        assert!(
            pg.dependent_load_fraction() > 0.05,
            "graph traversal must show dependent loads: {:.2}",
            pg.dependent_load_fraction()
        );
    }

    #[test]
    fn footprint_scales_with_graph_size() {
        use crate::catalog::{self, Scale};
        use crate::source::capture;
        let w = catalog::workload("pr.urand", Scale::Tiny).expect("catalog");
        let small = profile(&capture(w.as_ref(), 5_000));
        let big = profile(&capture(w.as_ref(), 50_000));
        assert!(big.footprint_lines > small.footprint_lines);
    }
}
