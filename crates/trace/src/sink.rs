//! Trace sinks: where workload generators push their records.

use crate::record::TraceRecord;

/// The consumer side of a workload generator.
///
/// Generators call [`TraceSink::emit`] for every dynamic instruction they
/// produce and must stop generating promptly once it returns `false`
/// (budget exhausted or consumer gone).
pub trait TraceSink {
    /// Offers one record to the sink. Returns `false` when the sink wants no
    /// more records; the generator should unwind.
    fn emit(&mut self, rec: TraceRecord) -> bool;

    /// True once the sink has stopped accepting records.
    fn is_closed(&self) -> bool;
}

/// A sink that records into a `Vec`, bounded by a budget.
#[derive(Debug)]
pub struct RecorderSink {
    records: Vec<TraceRecord>,
    budget: usize,
}

impl RecorderSink {
    /// Creates a recorder that accepts at most `budget` records.
    #[must_use]
    pub fn new(budget: usize) -> Self {
        Self {
            records: Vec::with_capacity(budget.min(1 << 20)),
            budget,
        }
    }

    /// Consumes the recorder, returning the captured records.
    #[must_use]
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }

    /// Number of records captured so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl TraceSink for RecorderSink {
    fn emit(&mut self, rec: TraceRecord) -> bool {
        if self.records.len() >= self.budget {
            return false;
        }
        self.records.push(rec);
        self.records.len() < self.budget
    }

    fn is_closed(&self) -> bool {
        self.records.len() >= self.budget
    }
}

/// A sink that merely counts records; useful for workload statistics.
#[derive(Debug, Default)]
pub struct CountingSink {
    total: usize,
    loads: usize,
    stores: usize,
    branches: usize,
    budget: Option<usize>,
}

impl CountingSink {
    /// Creates an unbounded counting sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a counting sink that closes after `budget` records.
    #[must_use]
    pub fn with_budget(budget: usize) -> Self {
        Self {
            budget: Some(budget),
            ..Self::default()
        }
    }

    /// Total records observed.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Loads observed.
    #[must_use]
    pub fn loads(&self) -> usize {
        self.loads
    }

    /// Stores observed.
    #[must_use]
    pub fn stores(&self) -> usize {
        self.stores
    }

    /// Branches observed.
    #[must_use]
    pub fn branches(&self) -> usize {
        self.branches
    }
}

impl TraceSink for CountingSink {
    fn emit(&mut self, rec: TraceRecord) -> bool {
        if self.is_closed() {
            return false;
        }
        self.total += 1;
        match rec.op {
            crate::record::Op::Load => self.loads += 1,
            crate::record::Op::Store => self.stores += 1,
            crate::record::Op::Branch => self.branches += 1,
            _ => {}
        }
        !self.is_closed()
    }

    fn is_closed(&self) -> bool {
        self.budget.is_some_and(|b| self.total >= b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Reg;

    fn rec() -> TraceRecord {
        TraceRecord::load(0, 0x40, 8, Reg(0), [None, None])
    }

    #[test]
    fn recorder_respects_budget() {
        let mut s = RecorderSink::new(3);
        assert!(s.emit(rec()));
        assert!(s.emit(rec()));
        assert!(!s.emit(rec())); // third accepted, but budget now exhausted
        assert!(s.is_closed());
        assert!(!s.emit(rec())); // rejected
        assert_eq!(s.into_records().len(), 3);
    }

    #[test]
    fn recorder_zero_budget_rejects_immediately() {
        let mut s = RecorderSink::new(0);
        assert!(!s.emit(rec()));
        assert!(s.is_empty());
    }

    #[test]
    fn counting_sink_classifies() {
        let mut s = CountingSink::new();
        s.emit(rec());
        s.emit(TraceRecord::store(0, 0x80, 8, None, None));
        s.emit(TraceRecord::branch(0, true, 0, None));
        s.emit(TraceRecord::alu(0, None, [None, None]));
        assert_eq!(
            (s.total(), s.loads(), s.stores(), s.branches()),
            (4, 1, 1, 1)
        );
        assert!(!s.is_closed());
    }
}
