//! ChampSim trace import: the paper's evaluation traces are ChampSim
//! SimPoints (three Zenodo volumes); this module reads that record layout
//! and converts it into [`TraceRecord`] streams so external traces become
//! first-class workloads (the `trace:` namespace).
//!
//! A ChampSim x86 trace is a flat array of 64-byte `input_instr` records
//! (typically xz-compressed on disk; this importer reads the decompressed
//! form):
//!
//! ```text
//! ip                      u64 le
//! is_branch               u8
//! branch_taken            u8
//! destination_registers   2 × u8   (0 = invalid)
//! source_registers        4 × u8   (0 = invalid)
//! destination_memory      2 × u64 le (0 = none)
//! source_memory           4 × u64 le (0 = none)
//! ```
//!
//! The layout carries no branch target, so the importer runs one
//! instruction of lookahead: a taken branch's target is the next
//! instruction's `ip` (that is where the traced execution went), a
//! not-taken branch targets its fall-through. Memory operands fan out
//! into one load/store record each, sharing the instruction's `ip`, which
//! matches how the simulator's front end counts instructions.

use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::path::Path;

use tlp_trace::file::ReadTraceError;
use tlp_trace::{Reg, TraceRecord};

/// Encoded size of one ChampSim `input_instr`.
pub const CHAMPSIM_RECORD_LEN: usize = 64;

/// One decoded ChampSim instruction (the on-disk `input_instr` layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChampSimInstr {
    /// Instruction pointer.
    pub ip: u64,
    /// Nonzero for branches.
    pub is_branch: u8,
    /// Nonzero for taken branches.
    pub branch_taken: u8,
    /// Destination registers (0 = invalid).
    pub destination_registers: [u8; 2],
    /// Source registers (0 = invalid).
    pub source_registers: [u8; 4],
    /// Store addresses (0 = none).
    pub destination_memory: [u64; 2],
    /// Load addresses (0 = none).
    pub source_memory: [u64; 4],
}

impl ChampSimInstr {
    /// Decodes one 64-byte record.
    #[must_use]
    pub fn decode(buf: &[u8; CHAMPSIM_RECORD_LEN]) -> Self {
        let u64_at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().expect("8 bytes"));
        Self {
            ip: u64_at(0),
            is_branch: buf[8],
            branch_taken: buf[9],
            destination_registers: [buf[10], buf[11]],
            source_registers: [buf[12], buf[13], buf[14], buf[15]],
            destination_memory: [u64_at(16), u64_at(24)],
            source_memory: [u64_at(32), u64_at(40), u64_at(48), u64_at(56)],
        }
    }

    /// Encodes into the 64-byte on-disk layout (for synthesizing test
    /// traces; real traces come from ChampSim's tracer).
    #[must_use]
    pub fn encode(&self) -> [u8; CHAMPSIM_RECORD_LEN] {
        let mut out = [0u8; CHAMPSIM_RECORD_LEN];
        out[0..8].copy_from_slice(&self.ip.to_le_bytes());
        out[8] = self.is_branch;
        out[9] = self.branch_taken;
        out[10..12].copy_from_slice(&self.destination_registers);
        out[12..16].copy_from_slice(&self.source_registers);
        for (i, m) in self.destination_memory.iter().enumerate() {
            out[16 + i * 8..24 + i * 8].copy_from_slice(&m.to_le_bytes());
        }
        for (i, m) in self.source_memory.iter().enumerate() {
            out[32 + i * 8..40 + i * 8].copy_from_slice(&m.to_le_bytes());
        }
        out
    }
}

/// ChampSim register 0 is "invalid"; everything else folds into the
/// simulator's 64-register namespace.
fn reg(r: u8) -> Option<Reg> {
    if r == 0 {
        None
    } else {
        Some(Reg(r % Reg::COUNT as u8))
    }
}

/// Converts one instruction into its [`TraceRecord`] fan-out, given the
/// next instruction's `ip` (the taken-branch target).
fn convert(instr: &ChampSimInstr, next_ip: u64, out: &mut Vec<TraceRecord>) {
    let dst = instr.destination_registers.iter().copied().find_map(reg);
    let srcs = {
        let mut it = instr.source_registers.iter().copied().filter_map(reg);
        [it.next(), it.next()]
    };
    let mut emitted_mem = false;
    for &addr in &instr.source_memory {
        if addr != 0 {
            out.push(TraceRecord::load(
                instr.ip,
                addr,
                8,
                dst.unwrap_or(Reg(0)),
                srcs,
            ));
            emitted_mem = true;
        }
    }
    for &addr in &instr.destination_memory {
        if addr != 0 {
            out.push(TraceRecord::store(instr.ip, addr, 8, srcs[0], srcs[1]));
            emitted_mem = true;
        }
    }
    if instr.is_branch != 0 {
        let taken = instr.branch_taken != 0;
        let target = if taken {
            next_ip
        } else {
            instr.ip.wrapping_add(4)
        };
        out.push(TraceRecord::branch(instr.ip, taken, target, srcs[0]));
    } else if !emitted_mem {
        out.push(TraceRecord::alu(instr.ip, dst, srcs));
    }
}

/// Reads a (decompressed) ChampSim trace file into [`TraceRecord`]s.
///
/// # Errors
///
/// Returns [`ReadTraceError::Io`] on read failure and
/// [`ReadTraceError::Corrupt`] when the file is empty or not a whole
/// number of 64-byte records.
pub fn read_champsim(path: impl AsRef<Path>) -> Result<Vec<TraceRecord>, ReadTraceError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    let mut prev: Option<ChampSimInstr> = None;
    let mut buf = [0u8; CHAMPSIM_RECORD_LEN];
    loop {
        // read_exact would error mid-record without telling us how much it
        // consumed; fill manually so a trailing partial record is detected.
        let mut filled = 0;
        while filled < CHAMPSIM_RECORD_LEN {
            let n = r.read(&mut buf[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        if filled == 0 {
            break;
        }
        if filled < CHAMPSIM_RECORD_LEN {
            return Err(ReadTraceError::Corrupt("truncated champsim record"));
        }
        let instr = ChampSimInstr::decode(&buf);
        if let Some(p) = prev {
            convert(&p, instr.ip, &mut out);
        }
        prev = Some(instr);
    }
    match prev {
        // The last instruction has no successor; a taken branch there
        // falls back to its fall-through as the best available target.
        Some(p) => {
            let next_ip = p.ip.wrapping_add(4);
            convert(&p, next_ip, &mut out);
        }
        None => return Err(ReadTraceError::Corrupt("empty trace")),
    }
    Ok(out)
}

/// Writes instructions in the ChampSim on-disk layout (testing/CI helper).
///
/// # Errors
///
/// Returns the underlying I/O error on failure.
pub fn write_champsim(path: impl AsRef<Path>, instrs: &[ChampSimInstr]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(File::create(path)?);
    for i in instrs {
        f.write_all(&i.encode())?;
    }
    f.flush()
}

/// Synthesizes a deterministic ChampSim instruction stream: a pointer-
/// chase-flavoured loop with loads, stores, ALU filler and a loop branch.
/// Used by tests and the CI import smoke; `seed` varies the address
/// stream.
#[must_use]
pub fn synthetic_champsim(n: usize, seed: u64) -> Vec<ChampSimInstr> {
    let mut out = Vec::with_capacity(n);
    let mut x = seed | 1;
    let base = 0x0040_0000u64;
    for i in 0..n {
        // xorshift64 keeps the stream deterministic and irregular.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let site = (i % 8) as u64;
        let ip = base + site * 4;
        let instr = match i % 8 {
            0 | 3 | 5 => ChampSimInstr {
                ip,
                destination_registers: [3, 0],
                source_registers: [1, 0, 0, 0],
                source_memory: [0x1000_0000 + (x % 0x10_0000) * 64, 0, 0, 0],
                ..Default::default()
            },
            6 => ChampSimInstr {
                ip,
                source_registers: [3, 2, 0, 0],
                destination_memory: [0x2000_0000 + (x % 0x1000) * 64, 0],
                ..Default::default()
            },
            7 => ChampSimInstr {
                ip,
                is_branch: 1,
                branch_taken: u8::from(i + 1 < n),
                source_registers: [4, 0, 0, 0],
                ..Default::default()
            },
            _ => ChampSimInstr {
                ip,
                destination_registers: [5, 0],
                source_registers: [3, 5, 0, 0],
                ..Default::default()
            },
        };
        out.push(instr);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_trace::Op;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tlp-champsim-test-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join("trace.champsim")
    }

    #[test]
    fn instr_encode_decode_roundtrip() {
        let instrs = synthetic_champsim(100, 7);
        for i in &instrs {
            assert_eq!(ChampSimInstr::decode(&i.encode()), *i);
        }
    }

    #[test]
    fn import_maps_every_operand_class() {
        let path = tmp("map");
        write_champsim(&path, &synthetic_champsim(4000, 42)).expect("write");
        let recs = read_champsim(&path).expect("import");
        assert!(!recs.is_empty());
        let count = |op: Op| recs.iter().filter(|r| r.op == op).count();
        assert!(count(Op::Load) > 0, "loads must survive import");
        assert!(count(Op::Store) > 0, "stores must survive import");
        assert!(count(Op::Alu) > 0, "alu filler must survive import");
        assert!(count(Op::Branch) > 0, "branches must survive import");
        for r in &recs {
            if r.op.is_mem() {
                assert!(r.addr != 0 && r.size == 8);
            } else {
                assert_eq!((r.addr, r.size), (0, 0));
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn taken_branch_targets_next_instruction_ip() {
        let path = tmp("lookahead");
        let instrs = vec![
            ChampSimInstr {
                ip: 0x400,
                is_branch: 1,
                branch_taken: 1,
                ..Default::default()
            },
            ChampSimInstr {
                ip: 0x9000,
                is_branch: 1,
                branch_taken: 0,
                ..Default::default()
            },
        ];
        write_champsim(&path, &instrs).expect("write");
        let recs = read_champsim(&path).expect("import");
        assert_eq!(recs.len(), 2);
        assert_eq!((recs[0].taken, recs[0].target), (true, 0x9000));
        // Not-taken branches target their fall-through.
        assert_eq!((recs[1].taken, recs[1].target), (false, 0x9004));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_and_empty_files() {
        let path = tmp("truncated");
        std::fs::write(&path, [0u8; CHAMPSIM_RECORD_LEN + 17]).expect("write");
        assert!(matches!(
            read_champsim(&path),
            Err(ReadTraceError::Corrupt("truncated champsim record"))
        ));
        std::fs::write(&path, []).expect("write");
        assert!(matches!(
            read_champsim(&path),
            Err(ReadTraceError::Corrupt("empty trace"))
        ));
        std::fs::remove_file(&path).ok();
    }
}
