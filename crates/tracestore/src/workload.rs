//! The `trace:` workload namespace: stored trace files as first-class
//! catalog workloads.
//!
//! A [`TraceWorkload`] wraps an on-disk trace (imported ChampSim or any
//! stored capture) behind the [`Workload`] trait, so every harness path —
//! single cells, sweeps, timelines — runs it like a generated workload.
//! The harness resolves [`Workload::trace_path`] and streams the file
//! directly (zero captures); the [`Workload::generate`] fallback decodes
//! the file for paths that genuinely need a generator.

use std::path::{Path, PathBuf};

use tlp_trace::emit::{Suite, Workload};
use tlp_trace::file::ReadTraceError;
use tlp_trace::sink::TraceSink;
use tlp_trace::TraceSource;

use crate::v2::TraceReader;

/// Prefix of the workload namespace (`trace:NAME`).
pub const TRACE_NAMESPACE: &str = "trace:";

/// A workload backed by an on-disk trace file.
#[derive(Debug)]
pub struct TraceWorkload {
    name: String,
    path: PathBuf,
}

impl TraceWorkload {
    /// Wraps the trace at `path` as workload `trace:{name}`, validating
    /// the file up front (one open) so later harness paths can rely on
    /// it.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] when the file cannot be read or parsed.
    pub fn open(name: &str, path: impl Into<PathBuf>) -> Result<Self, ReadTraceError> {
        let path = path.into();
        let _ = TraceReader::open(&path)?;
        Ok(Self {
            name: format!("{TRACE_NAMESPACE}{name}"),
            path,
        })
    }
}

impl Workload for TraceWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn suite(&self) -> Suite {
        // External traces are SPEC-shaped from the catalog's point of
        // view: single-binary regions, not graph kernels.
        Suite::Spec
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut reader =
            TraceReader::open(&self.path).expect("trace file validated at TraceWorkload::open");
        while let Some(rec) = reader.next_record() {
            if !sink.emit(rec) {
                return;
            }
        }
    }

    fn trace_path(&self) -> Option<&Path> {
        Some(&self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_trace::source::capture;
    use tlp_trace::{Reg, TraceRecord};

    fn records(n: usize) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| {
                if i % 7 == 6 {
                    TraceRecord::branch(0x418, i % 3 != 0, 0x400, None)
                } else {
                    TraceRecord::load(
                        0x400 + (i as u64 % 6) * 4,
                        0x20_0000 + i as u64 * 64,
                        8,
                        Reg(2),
                        [None, None],
                    )
                }
            })
            .collect()
    }

    #[test]
    fn trace_workload_generates_the_stored_records() {
        let dir = std::env::temp_dir().join(format!("tlp-twl-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("wl.tlpt");
        let recs = records(512);
        crate::v2::write_trace_v2(&path, "trace:demo", true, &recs, &[], 0).expect("write");
        let w = TraceWorkload::open("demo", &path).expect("open");
        assert_eq!(w.name(), "trace:demo");
        assert_eq!(w.trace_path(), Some(path.as_path()));
        // capture() drives generate(); a looping trace restarts cleanly.
        let captured = capture(&w, recs.len() + 100);
        assert_eq!(&captured[..recs.len()], &recs[..]);
        assert_eq!(&captured[recs.len()..], &recs[..100]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("tlp-twl-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("bad.tlpt");
        std::fs::write(&path, b"not a trace").expect("write");
        assert!(TraceWorkload::open("bad", &path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
