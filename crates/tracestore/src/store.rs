//! The content-addressed on-disk trace store.
//!
//! Mirrors the result cache's disk discipline (`tlp_harness::cache`):
//! every trace is one file named by its [`TraceKey`] hex under the store
//! directory, written to a uniquely named temp file and atomically
//! renamed into place (safe for concurrent threads and processes),
//! corrupt entries deleted on sight and counted. Captured traces are
//! keyed by workload + capture environment + budget, salted with
//! [`TRACE_VERSION`]; imported external traces (the `trace:` namespace)
//! are keyed by their import name.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tlp_trace::file::ReadTraceError;
use tlp_trace::simpoint::SimPoint;
use tlp_trace::TraceRecord;

use crate::v2::{write_trace_v2, StreamTrace, TraceReader};

/// Salt folded into every [`TraceKey`]. Bump this whenever trace capture
/// or the v2 encoding changes records, so stale on-disk traces can never
/// be replayed against new code.
pub const TRACE_VERSION: &str = "tlp-trace-v2";

/// Content hash identifying one stored trace (same double-FNV discipline
/// as the result cache's `RunKey`, under its own salt).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceKey(u128);

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl TraceKey {
    /// Hashes a canonical trace description: two independent 64-bit
    /// FNV-1a streams with the [`TRACE_VERSION`] salt folded into both.
    #[must_use]
    pub fn from_desc(desc: &str) -> Self {
        let lo = fnv1a(
            fnv1a(0xcbf2_9ce4_8422_2325, TRACE_VERSION.as_bytes()),
            desc.as_bytes(),
        );
        let hi = fnv1a(
            fnv1a(0x6c62_272e_07bb_0142, TRACE_VERSION.as_bytes()),
            desc.as_bytes(),
        );
        Self((u128::from(hi) << 64) | u128::from(lo))
    }

    /// The key as 32 hex digits (the on-disk file stem).
    #[must_use]
    pub fn hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

/// Canonical description of a captured workload trace. `env` is the
/// harness's run-budget fragment (scale, warmup, instructions); `budget`
/// is the record count captured.
#[must_use]
pub fn capture_desc(env: &str, workload: &str, budget: usize) -> String {
    format!("capture|{env}|{workload}|b{budget}")
}

/// Canonical description of an imported external trace (the `trace:`
/// namespace); imports are scale-independent.
#[must_use]
pub fn import_desc(name: &str) -> String {
    format!("import|{name}")
}

/// What [`TraceStore::open_trace`] found for a key.
#[derive(Debug)]
pub enum TraceLoad {
    /// A well-formed trace file.
    Hit(Box<StreamTrace>),
    /// No file for this key.
    Miss,
    /// A file existed but failed validation; it has been deleted.
    Corrupt,
}

/// The on-disk trace store: one v2 file per [`TraceKey`].
#[derive(Debug)]
pub struct TraceStore {
    dir: PathBuf,
    corrupt: AtomicU64,
}

/// Uniquifies temp names across threads of one process; the PID component
/// covers concurrent processes.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl TraceStore {
    /// Opens (creating if absent) a trace store under `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            corrupt: AtomicU64::new(0),
        })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path for a key.
    #[must_use]
    pub fn path_for(&self, key: TraceKey) -> PathBuf {
        self.dir.join(format!("{}.tlpt", key.hex()))
    }

    /// Corrupt entries deleted since open.
    #[must_use]
    pub fn corrupt_count(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// Opens the stored trace for `key`, classifying the outcome. A
    /// corrupt file (torn write survivor, stale format) is deleted so the
    /// caller re-captures into a fresh entry.
    #[must_use]
    pub fn open_trace(&self, key: TraceKey) -> TraceLoad {
        let path = self.path_for(key);
        match StreamTrace::open(&path) {
            Ok(t) => TraceLoad::Hit(Box::new(t)),
            Err(ReadTraceError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                TraceLoad::Miss
            }
            Err(_) => {
                std::fs::remove_file(&path).ok();
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                TraceLoad::Corrupt
            }
        }
    }

    /// Writes a trace under `key`: encode to a uniquely named temp file,
    /// then atomically rename into place. Concurrent writers of the same
    /// key are harmless — captures are deterministic per fresh process,
    /// so racing renames publish identical bytes.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the temp file is cleaned up.
    pub fn save(
        &self,
        key: TraceKey,
        name: &str,
        looping: bool,
        records: &[TraceRecord],
        simpoints: &[SimPoint],
        bbv_interval: usize,
    ) -> std::io::Result<PathBuf> {
        let final_path = self.path_for(key);
        let tmp = self.dir.join(format!(
            "{}.tmp.{}.{}",
            key.hex(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        match write_trace_v2(&tmp, name, looping, records, simpoints, bbv_interval)
            .and_then(|_| std::fs::rename(&tmp, &final_path))
        {
            Ok(()) => Ok(final_path),
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                Err(e)
            }
        }
    }

    /// Imports external records (e.g. a converted ChampSim trace) under
    /// the `trace:` namespace: SimPoints are computed with the standard
    /// capture-time parameters and the trace is stored looping (shorter
    /// traces wrap to fill a run budget), keyed by `name` alone.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the temp file is cleaned up.
    pub fn import(&self, name: &str, records: &[TraceRecord]) -> std::io::Result<PathBuf> {
        let cfg = tlp_trace::simpoint::BbvConfig::standard();
        let sps = tlp_trace::simpoint::simpoints_of(
            records,
            cfg,
            crate::CAPTURE_SIMPOINT_K,
            crate::CAPTURE_SIMPOINT_SEED,
        );
        self.save(
            TraceKey::from_desc(&import_desc(name)),
            &format!("trace:{name}"),
            true,
            records,
            &sps,
            cfg.interval,
        )
    }

    /// Whether an imported trace named `name` exists in the store.
    #[must_use]
    pub fn has_import(&self, name: &str) -> bool {
        self.path_for(TraceKey::from_desc(&import_desc(name)))
            .exists()
    }

    /// Opens an imported trace by its import name.
    #[must_use]
    pub fn open_import(&self, name: &str) -> TraceLoad {
        self.open_trace(TraceKey::from_desc(&import_desc(name)))
    }

    /// The on-disk path of an imported trace (whether or not it exists).
    #[must_use]
    pub fn import_path(&self, name: &str) -> PathBuf {
        self.path_for(TraceKey::from_desc(&import_desc(name)))
    }

    /// Names of all imported traces... are not recoverable from hashes;
    /// instead, stored trace files of either kind can be enumerated for
    /// maintenance. Returns `(path, file_bytes)` per entry.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory is unreadable.
    pub fn entries(&self) -> std::io::Result<Vec<(PathBuf, u64)>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "tlpt") {
                out.push((path, entry.metadata()?.len()));
            }
        }
        out.sort();
        Ok(out)
    }
}

/// Convenience: open the trace for `key`, ignoring the corrupt/miss
/// distinction (both mean "not available, re-capture").
#[must_use]
pub fn open_if_present(store: &TraceStore, key: TraceKey) -> Option<TraceReader> {
    match store.open_trace(key) {
        TraceLoad::Hit(t) => Some(TraceReader::V2(t)),
        TraceLoad::Miss | TraceLoad::Corrupt => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_trace::{Reg, TraceSource};

    fn records(n: usize) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| {
                TraceRecord::load(
                    0x400 + (i as u64 % 9) * 4,
                    0x10_0000 + i as u64 * 64,
                    8,
                    Reg(1),
                    [None, None],
                )
            })
            .collect()
    }

    fn store(tag: &str) -> TraceStore {
        let dir = std::env::temp_dir().join(format!("tlp-store-test-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        TraceStore::open(dir).expect("open store")
    }

    #[test]
    fn keys_separate_every_axis_and_differ_from_runkeys() {
        let descs = [
            capture_desc("Tiny|w5000|i25000", "bfs.urand", 30_096),
            capture_desc("Tiny|w5000|i25000", "bfs.urand", 30_097),
            capture_desc("Tiny|w5001|i25000", "bfs.urand", 30_096),
            capture_desc("Tiny|w5000|i25000", "bfs.kron", 30_096),
            import_desc("bfs.urand"),
        ];
        let keys: std::collections::HashSet<_> =
            descs.iter().map(|d| TraceKey::from_desc(d)).collect();
        assert_eq!(keys.len(), descs.len(), "every axis must change the key");
        assert_eq!(TraceKey::from_desc(&descs[0]).hex().len(), 32);
    }

    #[test]
    fn save_then_open_roundtrips() {
        let s = store("roundtrip");
        let recs = records(500);
        let key = TraceKey::from_desc(&capture_desc("env", "w", 500));
        assert!(matches!(s.open_trace(key), TraceLoad::Miss));
        let path = s.save(key, "w", true, &recs, &[], 0).expect("save");
        assert!(path.exists());
        let TraceLoad::Hit(mut t) = s.open_trace(key) else {
            panic!("expected hit");
        };
        assert_eq!(t.name(), "w");
        for r in &recs {
            assert_eq!(t.next_record().as_ref(), Some(r));
        }
        // No temp droppings left behind.
        let leftovers: Vec<_> = std::fs::read_dir(s.dir())
            .expect("readdir")
            .filter_map(Result::ok)
            .filter(|e| e.path().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be renamed away");
        std::fs::remove_dir_all(s.dir()).ok();
    }

    #[test]
    fn corrupt_entries_are_deleted_and_counted() {
        let s = store("corrupt");
        let key = TraceKey::from_desc(&capture_desc("env", "w", 100));
        let path = s.path_for(key);
        std::fs::write(&path, b"TLP2 garbage that is not a trace").expect("write");
        assert!(matches!(s.open_trace(key), TraceLoad::Corrupt));
        assert!(!path.exists(), "corrupt entry must be deleted");
        assert_eq!(s.corrupt_count(), 1);
        // Next lookup is a clean miss.
        assert!(matches!(s.open_trace(key), TraceLoad::Miss));
        std::fs::remove_dir_all(s.dir()).ok();
    }

    #[test]
    fn imports_are_addressable_by_name() {
        let s = store("imports");
        assert!(!s.has_import("demo"));
        let key = TraceKey::from_desc(&import_desc("demo"));
        s.save(key, "trace:demo", true, &records(64), &[], 0)
            .expect("save");
        assert!(s.has_import("demo"));
        let TraceLoad::Hit(t) = s.open_import("demo") else {
            panic!("expected hit");
        };
        assert_eq!(t.name(), "trace:demo");
        assert_eq!(s.entries().expect("entries").len(), 1);
        std::fs::remove_dir_all(s.dir()).ok();
    }
}
