//! Weighted report reconstitution for SimPoint-sampled runs.
//!
//! SimPoint methodology: simulate each representative region, then
//! estimate the full run as the weight-blended combination of the region
//! results. Rather than hand-maintaining a field-by-field merge that
//! would rot as `SimReport` grows, the merge works generically over the
//! [`tlp_sim::serial`] JSON tree — every numeric leaf is a counter, so a
//! weighted sum of leaves *is* the weighted report.

use tlp_sim::serial::{self, Value};
use tlp_sim::SimReport;

/// Merges region reports into one estimate: every numeric leaf becomes
/// `round(Σ wᵢ · leafᵢ)`. Pass weights that already include any
/// scale-up factor (e.g. `cluster_weight × full_instructions /
/// region_instructions`) so the estimate is in full-run units.
///
/// # Panics
///
/// Panics when `reports` is empty, lengths differ, or the reports do not
/// share a JSON shape (impossible for reports from one simulator build).
#[must_use]
pub fn weighted_merge(reports: &[SimReport], weights: &[f64]) -> SimReport {
    assert!(!reports.is_empty(), "need at least one region report");
    assert_eq!(reports.len(), weights.len(), "one weight per report");
    let values: Vec<Value> = reports
        .iter()
        .map(|r| serial::parse_value(&serial::report_to_json(r)).expect("own codec parses"))
        .collect();
    let refs: Vec<&Value> = values.iter().collect();
    let merged = merge(&refs, weights);
    serial::report_from_value(&merged).expect("merged tree keeps the report shape")
}

fn merge(values: &[&Value], weights: &[f64]) -> Value {
    match values[0] {
        Value::Num(_) => {
            let sum: f64 = values
                .iter()
                .zip(weights)
                .map(|(v, w)| match v {
                    Value::Num(n) => *n as f64 * w,
                    _ => panic!("report shapes diverge at a numeric leaf"),
                })
                .sum();
            Value::Num(if sum <= 0.0 { 0 } else { sum.round() as u64 })
        }
        Value::Str(s) => Value::Str(s.clone()),
        Value::Arr(first) => {
            let arrs: Vec<&Vec<Value>> = values
                .iter()
                .map(|v| match v {
                    Value::Arr(a) if a.len() == first.len() => a,
                    _ => panic!("report shapes diverge at an array"),
                })
                .collect();
            Value::Arr(
                (0..first.len())
                    .map(|i| {
                        let elems: Vec<&Value> = arrs.iter().map(|a| &a[i]).collect();
                        merge(&elems, weights)
                    })
                    .collect(),
            )
        }
        Value::Obj(first) => {
            let objs: Vec<&Vec<(String, Value)>> = values
                .iter()
                .map(|v| match v {
                    Value::Obj(o) if o.len() == first.len() => o,
                    _ => panic!("report shapes diverge at an object"),
                })
                .collect();
            Value::Obj(
                first
                    .iter()
                    .enumerate()
                    .map(|(i, (key, _))| {
                        let fields: Vec<&Value> = objs
                            .iter()
                            .map(|o| {
                                assert_eq!(&o[i].0, key, "report field order diverges");
                                &o[i].1
                            })
                            .collect();
                        (key.clone(), merge(&fields, weights))
                    })
                    .collect(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_sim::{System, SystemConfig};
    use tlp_trace::{Reg, TraceRecord, VecTrace};

    fn small_report(salt: u64) -> SimReport {
        let recs: Vec<TraceRecord> = (0..512u64)
            .map(|i| {
                if i % 5 == 4 {
                    TraceRecord::branch(0x410, true, 0x400, None)
                } else {
                    TraceRecord::load(
                        0x400 + (i % 4) * 4,
                        (0x10_0000 + i * 64) ^ (salt << 8),
                        8,
                        Reg(1),
                        [None, None],
                    )
                }
            })
            .collect();
        let trace = VecTrace::looping("w", recs);
        let setup = tlp_sim::engine::CoreSetup::new(Box::new(trace));
        System::new(SystemConfig::test_tiny(1), vec![setup]).run(500, 2_000)
    }

    #[test]
    fn identity_weight_reproduces_the_report() {
        let r = small_report(1);
        let merged = weighted_merge(std::slice::from_ref(&r), &[1.0]);
        assert_eq!(
            serial::report_to_json(&merged),
            serial::report_to_json(&r),
            "weight 1.0 must be the identity"
        );
    }

    #[test]
    fn equal_halves_of_identical_reports_reproduce_it() {
        let r = small_report(2);
        let merged = weighted_merge(&[r.clone(), r.clone()], &[0.5, 0.5]);
        assert_eq!(serial::report_to_json(&merged), serial::report_to_json(&r));
    }

    #[test]
    fn weights_scale_counters() {
        let r = small_report(3);
        let merged = weighted_merge(std::slice::from_ref(&r), &[2.0]);
        assert_eq!(merged.total_cycles, r.total_cycles * 2);
    }

    #[test]
    fn blends_distinct_regions() {
        let (a, b) = (small_report(1), small_report(9));
        let merged = weighted_merge(&[a.clone(), b.clone()], &[0.25, 0.75]);
        let expect = (a.total_cycles as f64 * 0.25 + b.total_cycles as f64 * 0.75).round() as u64;
        assert_eq!(merged.total_cycles, expect);
    }
}
