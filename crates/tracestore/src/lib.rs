//! `tlp-tracestore`: a content-addressed streaming trace store.
//!
//! The paper evaluates on ChampSim trace files — 1B-instruction SimPoints
//! shipped as Zenodo volumes. This crate is the workspace's equivalent
//! trace tier, with four pieces:
//!
//! * [`v2`] — **TLPT v2**, a compressed streaming trace format:
//!   delta-encoded PCs/addresses as zigzag LEB128 varints in independently
//!   decodable 64K-record blocks, with a block index, checksums and
//!   SimPoints in a seek-from-end footer. [`v2::StreamTrace`] implements
//!   `TraceSource` directly, so replay never materializes the trace;
//!   [`v2::TraceReader`] still accepts v1 files.
//! * [`store`] — the **content-addressed on-disk store**: one file per
//!   [`store::TraceKey`] (workload + capture environment + budget, salted
//!   with [`store::TRACE_VERSION`]), written with the temp-name +
//!   atomic-rename + corrupt-delete discipline the result cache proved
//!   out. `Harness::trace_for` resolves memory → disk → capture through
//!   it, so a warm trace dir makes cold-process runs capture nothing.
//! * [`champsim`] — the **ChampSim importer**: the 64-byte `input_instr`
//!   layout → `TraceRecord` streams, with one-instruction lookahead for
//!   branch targets. Imported traces become first-class workloads via the
//!   [`workload::TraceWorkload`] `trace:` namespace.
//! * [`reconstitute`] — **SimPoint-weighted report reconstitution**:
//!   region reports blend into a full-run estimate generically over the
//!   `tlp_sim::serial` value tree.

pub mod champsim;
pub mod reconstitute;
pub mod store;
pub mod v2;
pub mod workload;

pub use champsim::{read_champsim, write_champsim, ChampSimInstr};
pub use reconstitute::weighted_merge;
pub use store::{capture_desc, import_desc, TraceKey, TraceLoad, TraceStore, TRACE_VERSION};
pub use v2::{encode_trace_v2, trace_info, write_trace_v2, StreamTrace, TraceInfo, TraceReader};
pub use workload::{TraceWorkload, TRACE_NAMESPACE};

/// SimPoints computed at capture time use these fixed parameters (with
/// `BbvConfig::standard()`), so a stored trace's footer is a pure function
/// of its records.
pub const CAPTURE_SIMPOINT_K: usize = 8;

/// Seed for capture-time k-means++ clustering (deterministic).
pub const CAPTURE_SIMPOINT_SEED: u64 = 0x7502;
