//! TLPT v2: the compressed, block-structured, streamable trace format.
//!
//! The v1 format in `tlp_trace::file` is a flat array of fixed 29-byte
//! records — simple, but ~6× larger than it needs to be and only usable by
//! materializing the whole trace in memory. v2 keeps the record model and
//! fixes both:
//!
//! ```text
//! magic   "TLP2"                          4 bytes
//! version u16 le = 2                      2 bytes
//! flags   u16 le (bit 0: looping)         2 bytes
//! name    u16 le length + UTF-8           2 + n bytes
//! blocks  (≤ 65 536 records each; delta state resets per block)
//!   per record:
//!     flags   u8   (op code | taken << 7)
//!     dst/src1/src2  3 × u8 (0xff = none)
//!     Δpc     zigzag LEB128 vs previous record's pc
//!     [mem]   Δaddr zigzag LEB128 + size u8
//!     [branch] Δtarget zigzag LEB128
//! footer
//!   block_count u64 le
//!   per block: offset, byte_len, records, fnv1a checksum (4 × u64 le)
//!   total_records u64 le
//!   bbv_interval u64 le                   (SimPoint interval length)
//!   simpoint_count u64 le
//!   per simpoint: interval u64 le, weight f64 bits u64 le
//! footer_len u64 le                       (bytes of the footer section)
//! magic   "TLPF"                          4 bytes
//! ```
//!
//! The trailing `footer_len + "TLPF"` makes the footer discoverable by
//! seeking from the end, so a reader never scans the record area to find
//! the block index. Every block is independently decodable (the delta
//! state starts from zero at each block boundary) and carries an FNV-1a
//! checksum, verified once at open — [`StreamTrace`] then replays with a
//! single reused block buffer and zero per-record allocation.
//!
//! Fields an op does not carry (e.g. `addr` on an ALU record) are encoded
//! as their canonical zero values, exactly as the [`TraceRecord`]
//! constructors produce them, so capture → v2 → replay is bit-identical.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use tlp_trace::file::{read_trace, ReadTraceError};
use tlp_trace::simpoint::SimPoint;
use tlp_trace::{Op, Reg, TraceRecord, TraceSource, VecTrace};

/// Records per block; the delta coder restarts at every block boundary.
pub const BLOCK_RECORDS: usize = 65_536;

const MAGIC2: &[u8; 4] = b"TLP2";
const FOOTER_MAGIC: &[u8; 4] = b"TLPF";
const FLAG_LOOPING: u16 = 1;
const VERSION2: u16 = 2;

/// Worst-case encoded record: flags + 3 regs + three 10-byte varints + size.
const MAX_RECORD_LEN: usize = 1 + 3 + 10 + 10 + 1 + 10;

/// FNV-1a 64 over raw bytes (the per-block checksum).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn op_code(op: Op) -> u8 {
    match op {
        Op::Load => 0,
        Op::Store => 1,
        Op::Alu => 2,
        Op::Fp => 3,
        Op::Branch => 4,
    }
}

fn op_from_code(c: u8) -> Option<Op> {
    Some(match c {
        0 => Op::Load,
        1 => Op::Store,
        2 => Op::Alu,
        3 => Op::Fp,
        4 => Op::Branch,
        _ => return None,
    })
}

fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None; // over-long varint
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Per-block delta-coder state; starts from zero at every block boundary.
#[derive(Default, Clone, Copy)]
struct DeltaState {
    pc: u64,
    addr: u64,
    target: u64,
}

fn put_delta(out: &mut Vec<u8>, cur: u64, prev: u64) {
    put_varint(out, zigzag(cur.wrapping_sub(prev) as i64));
}

fn get_delta(buf: &[u8], pos: &mut usize, prev: u64) -> Option<u64> {
    Some(prev.wrapping_add(unzigzag(get_varint(buf, pos)?) as u64))
}

fn reg_byte(r: Option<Reg>) -> u8 {
    r.map_or(0xff, |r| r.0)
}

fn reg_from_byte(b: u8) -> Option<Reg> {
    if b == 0xff {
        None
    } else {
        Some(Reg(b))
    }
}

fn encode_record(out: &mut Vec<u8>, r: &TraceRecord, st: &mut DeltaState) {
    debug_assert!(
        r.op.is_mem() || (r.addr == 0 && r.size == 0),
        "non-memory record with addr/size set is not canonical"
    );
    debug_assert!(
        r.op.is_branch() || r.target == 0,
        "non-branch record with target set is not canonical"
    );
    let mut flags = op_code(r.op);
    if r.taken {
        flags |= 0x80;
    }
    out.push(flags);
    out.push(reg_byte(r.dst));
    out.push(reg_byte(r.src1));
    out.push(reg_byte(r.src2));
    put_delta(out, r.pc, st.pc);
    st.pc = r.pc;
    if r.op.is_mem() {
        put_delta(out, r.addr, st.addr);
        st.addr = r.addr;
        out.push(r.size);
    }
    if r.op.is_branch() {
        put_delta(out, r.target, st.target);
        st.target = r.target;
    }
}

fn decode_record(buf: &[u8], pos: &mut usize, st: &mut DeltaState) -> Option<TraceRecord> {
    let flags = *buf.get(*pos)?;
    *pos += 1;
    let op = op_from_code(flags & 0x7f)?;
    let dst = reg_from_byte(*buf.get(*pos)?);
    let src1 = reg_from_byte(*buf.get(*pos + 1)?);
    let src2 = reg_from_byte(*buf.get(*pos + 2)?);
    *pos += 3;
    let pc = get_delta(buf, pos, st.pc)?;
    st.pc = pc;
    let (mut addr, mut size) = (0u64, 0u8);
    if op.is_mem() {
        addr = get_delta(buf, pos, st.addr)?;
        st.addr = addr;
        size = *buf.get(*pos)?;
        *pos += 1;
    }
    let mut target = 0u64;
    if op.is_branch() {
        target = get_delta(buf, pos, st.target)?;
        st.target = target;
    }
    Some(TraceRecord {
        pc,
        op,
        dst,
        src1,
        src2,
        addr,
        size,
        taken: flags & 0x80 != 0,
        target,
    })
}

/// One entry of the footer's block index.
#[derive(Debug, Clone, Copy)]
struct BlockMeta {
    /// Byte offset of the block from the start of the file.
    offset: u64,
    /// Encoded length in bytes.
    byte_len: u64,
    /// Records in the block.
    records: u64,
    /// FNV-1a 64 of the encoded bytes.
    checksum: u64,
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let bytes: [u8; 8] = buf.get(*pos..*pos + 8)?.try_into().ok()?;
    *pos += 8;
    Some(u64::from_le_bytes(bytes))
}

/// Serializes a trace into the v2 binary representation.
///
/// `simpoints` and `bbv_interval` land in the footer (pass an empty slice
/// and 0 when phase analysis was not run).
///
/// # Panics
///
/// Panics if `records` is empty or `name` exceeds `u16::MAX` bytes.
#[must_use]
pub fn encode_trace_v2(
    name: &str,
    looping: bool,
    records: &[TraceRecord],
    simpoints: &[SimPoint],
    bbv_interval: usize,
) -> Vec<u8> {
    assert!(!records.is_empty(), "empty trace");
    let name_bytes = name.as_bytes();
    assert!(
        name_bytes.len() <= u16::MAX as usize,
        "workload name too long"
    );
    let mut out = Vec::with_capacity(10 + name_bytes.len() + records.len() * 8);
    out.extend_from_slice(MAGIC2);
    out.extend_from_slice(&VERSION2.to_le_bytes());
    out.extend_from_slice(&(if looping { FLAG_LOOPING } else { 0u16 }).to_le_bytes());
    out.extend_from_slice(&(name_bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(name_bytes);

    let mut blocks: Vec<BlockMeta> = Vec::new();
    for chunk in records.chunks(BLOCK_RECORDS) {
        let offset = out.len() as u64;
        let start = out.len();
        let mut st = DeltaState::default();
        for r in chunk {
            encode_record(&mut out, r, &mut st);
        }
        blocks.push(BlockMeta {
            offset,
            byte_len: (out.len() - start) as u64,
            records: chunk.len() as u64,
            checksum: fnv1a(&out[start..]),
        });
    }

    let footer_start = out.len();
    put_u64(&mut out, blocks.len() as u64);
    for b in &blocks {
        put_u64(&mut out, b.offset);
        put_u64(&mut out, b.byte_len);
        put_u64(&mut out, b.records);
        put_u64(&mut out, b.checksum);
    }
    put_u64(&mut out, records.len() as u64);
    put_u64(&mut out, bbv_interval as u64);
    put_u64(&mut out, simpoints.len() as u64);
    for sp in simpoints {
        put_u64(&mut out, sp.interval as u64);
        put_u64(&mut out, sp.weight.to_bits());
    }
    let footer_len = (out.len() - footer_start) as u64;
    put_u64(&mut out, footer_len);
    out.extend_from_slice(FOOTER_MAGIC);
    out
}

/// Writes a v2 trace file to `path`, returning the bytes written.
///
/// # Errors
///
/// Returns the underlying I/O error on failure.
///
/// # Panics
///
/// Panics if `records` is empty.
pub fn write_trace_v2(
    path: impl AsRef<Path>,
    name: &str,
    looping: bool,
    records: &[TraceRecord],
    simpoints: &[SimPoint],
    bbv_interval: usize,
) -> std::io::Result<u64> {
    let bytes = encode_trace_v2(name, looping, records, simpoints, bbv_interval);
    let mut f = File::create(path)?;
    f.write_all(&bytes)?;
    f.flush()?;
    Ok(bytes.len() as u64)
}

/// A v2 trace streamed from disk: one reusable block buffer, zero
/// per-record allocation, [`TraceSource`] for direct use in the engine.
///
/// Block checksums are verified once at open, so the steady-state decode
/// path never fails; replay wraps to the first block when the looping flag
/// is set.
pub struct StreamTrace {
    name: String,
    looping: bool,
    file: File,
    blocks: Vec<BlockMeta>,
    total_records: u64,
    bbv_interval: u64,
    simpoints: Vec<SimPoint>,
    file_bytes: u64,
    /// Reused block buffer, sized to the largest block at open.
    buf: Vec<u8>,
    cur_block: usize,
    cur_len: usize,
    pos: usize,
    remaining_in_block: u64,
    st: DeltaState,
}

impl StreamTrace {
    /// Opens a v2 trace file, parsing the footer and verifying every
    /// block's checksum (one streaming pass; replay itself never
    /// re-validates).
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] when the file is not a well-formed v2
    /// trace: wrong magic or version, inconsistent footer, or a block
    /// whose checksum does not match.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ReadTraceError> {
        let mut file = File::open(path)?;
        let file_bytes = file.seek(SeekFrom::End(0))?;

        // Header: magic, version, flags, name.
        let mut header = [0u8; 10];
        if file_bytes < (header.len() + 12) as u64 {
            return Err(ReadTraceError::Corrupt("short header"));
        }
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header)?;
        if &header[0..4] != MAGIC2 {
            if &header[0..4] == b"TLPT" {
                return Err(ReadTraceError::BadVersion(1));
            }
            return Err(ReadTraceError::BadMagic);
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != VERSION2 {
            return Err(ReadTraceError::BadVersion(version));
        }
        let flags = u16::from_le_bytes([header[6], header[7]]);
        let name_len = u16::from_le_bytes([header[8], header[9]]) as usize;
        let body_start = (header.len() + name_len) as u64;
        if file_bytes < body_start + 12 {
            return Err(ReadTraceError::Corrupt("truncated name"));
        }
        let mut name_bytes = vec![0u8; name_len];
        file.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| ReadTraceError::Corrupt("name is not UTF-8"))?;

        // Tail: footer_len + "TLPF", then the footer itself.
        let mut tail = [0u8; 12];
        file.seek(SeekFrom::End(-12))?;
        file.read_exact(&mut tail)?;
        if &tail[8..12] != FOOTER_MAGIC {
            return Err(ReadTraceError::Corrupt("missing footer magic"));
        }
        let footer_len = u64::from_le_bytes(tail[0..8].try_into().expect("8 bytes"));
        let footer_start = (file_bytes - 12)
            .checked_sub(footer_len)
            .filter(|&s| s >= body_start)
            .ok_or(ReadTraceError::Corrupt("footer length out of range"))?;
        let mut footer = vec![0u8; footer_len as usize];
        file.seek(SeekFrom::Start(footer_start))?;
        file.read_exact(&mut footer)?;

        let p = &mut 0usize;
        let bad = || ReadTraceError::Corrupt("truncated footer");
        let block_count = get_u64(&footer, p).ok_or_else(bad)? as usize;
        // A block holds at least one record at one byte each; cap the
        // index size so a corrupt count can't trigger a huge allocation.
        if block_count as u64 > file_bytes {
            return Err(ReadTraceError::Corrupt("block count out of range"));
        }
        let mut blocks = Vec::with_capacity(block_count);
        for _ in 0..block_count {
            let b = BlockMeta {
                offset: get_u64(&footer, p).ok_or_else(bad)?,
                byte_len: get_u64(&footer, p).ok_or_else(bad)?,
                records: get_u64(&footer, p).ok_or_else(bad)?,
                checksum: get_u64(&footer, p).ok_or_else(bad)?,
            };
            let in_body = b.offset >= body_start
                && b.byte_len > 0
                && b.offset
                    .checked_add(b.byte_len)
                    .is_some_and(|end| end <= footer_start);
            let sane = b.records > 0
                && b.records <= BLOCK_RECORDS as u64
                && b.byte_len <= (BLOCK_RECORDS * MAX_RECORD_LEN) as u64;
            if !in_body || !sane {
                return Err(ReadTraceError::Corrupt("block index out of range"));
            }
            blocks.push(b);
        }
        let total_records = get_u64(&footer, p).ok_or_else(bad)?;
        let bbv_interval = get_u64(&footer, p).ok_or_else(bad)?;
        let simpoint_count = get_u64(&footer, p).ok_or_else(bad)? as usize;
        if simpoint_count as u64 > file_bytes {
            return Err(ReadTraceError::Corrupt("simpoint count out of range"));
        }
        let mut simpoints = Vec::with_capacity(simpoint_count);
        for _ in 0..simpoint_count {
            let interval = get_u64(&footer, p).ok_or_else(bad)? as usize;
            let weight = f64::from_bits(get_u64(&footer, p).ok_or_else(bad)?);
            if !weight.is_finite() || weight < 0.0 {
                return Err(ReadTraceError::Corrupt("simpoint weight not finite"));
            }
            simpoints.push(SimPoint { interval, weight });
        }
        if *p != footer.len() {
            return Err(ReadTraceError::Corrupt("trailing bytes in footer"));
        }
        if total_records == 0 || blocks.is_empty() {
            return Err(ReadTraceError::Corrupt("empty trace"));
        }
        if blocks.iter().map(|b| b.records).sum::<u64>() != total_records {
            return Err(ReadTraceError::Corrupt("block records disagree with total"));
        }

        let max_len = blocks.iter().map(|b| b.byte_len).max().expect("non-empty") as usize;
        let mut t = Self {
            name,
            looping: flags & FLAG_LOOPING != 0,
            file,
            blocks,
            total_records,
            bbv_interval,
            simpoints,
            file_bytes,
            buf: vec![0u8; max_len],
            cur_block: 0,
            cur_len: 0,
            pos: 0,
            remaining_in_block: 0,
            st: DeltaState::default(),
        };
        // One verification pass: every block's bytes must match its
        // checksum and decode into exactly `records` records. After this,
        // replay cannot hit corruption and decodes infallibly.
        for i in 0..t.blocks.len() {
            t.load_block(i).map_err(ReadTraceError::Io)?;
            if fnv1a(&t.buf[..t.cur_len]) != t.blocks[i].checksum {
                return Err(ReadTraceError::Corrupt("block checksum mismatch"));
            }
            let mut st = DeltaState::default();
            let mut pos = 0usize;
            for _ in 0..t.blocks[i].records {
                if decode_record(&t.buf[..t.cur_len], &mut pos, &mut st).is_none() {
                    return Err(ReadTraceError::Corrupt("invalid record"));
                }
            }
            if pos != t.cur_len {
                return Err(ReadTraceError::Corrupt("trailing bytes in block"));
            }
        }
        t.load_block(0).map_err(ReadTraceError::Io)?;
        Ok(t)
    }

    fn load_block(&mut self, i: usize) -> std::io::Result<()> {
        let b = self.blocks[i];
        self.file.seek(SeekFrom::Start(b.offset))?;
        let len = b.byte_len as usize;
        self.file.read_exact(&mut self.buf[..len])?;
        self.cur_block = i;
        self.cur_len = len;
        self.pos = 0;
        self.remaining_in_block = b.records;
        self.st = DeltaState::default();
        Ok(())
    }

    /// Rewinds replay to the first record.
    pub fn rewind(&mut self) {
        self.load_block(0)
            .expect("trace file readable after open-time verification");
    }

    /// Total records in the file (one full pass before looping).
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Number of blocks in the file.
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.blocks.len()
    }

    /// On-disk size in bytes.
    #[must_use]
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Whether replay wraps at the end of the trace.
    #[must_use]
    pub fn looping(&self) -> bool {
        self.looping
    }

    /// SimPoints recorded in the footer at capture time (may be empty).
    #[must_use]
    pub fn simpoints(&self) -> &[SimPoint] {
        &self.simpoints
    }

    /// The BBV interval length the footer's SimPoints were computed with.
    #[must_use]
    pub fn bbv_interval(&self) -> u64 {
        self.bbv_interval
    }

    /// Decodes the whole trace into memory (for SimPoint slicing), leaving
    /// the stream rewound to the first record.
    #[must_use]
    pub fn read_records(&mut self) -> Vec<TraceRecord> {
        self.rewind();
        let mut out = Vec::with_capacity(self.total_records as usize);
        for _ in 0..self.total_records {
            out.push(self.decode_next().expect("verified trace decodes fully"));
        }
        self.rewind();
        out
    }

    /// One decode step without looping (None at end of last block).
    fn decode_next(&mut self) -> Option<TraceRecord> {
        if self.remaining_in_block == 0 {
            let next = self.cur_block + 1;
            if next >= self.blocks.len() {
                return None;
            }
            self.load_block(next)
                .expect("trace file readable after open-time verification");
        }
        let r = decode_record(&self.buf[..self.cur_len], &mut self.pos, &mut self.st)
            .expect("checksummed block decodes");
        self.remaining_in_block -= 1;
        Some(r)
    }
}

impl TraceSource for StreamTrace {
    fn next_record(&mut self) -> Option<TraceRecord> {
        match self.decode_next() {
            Some(r) => Some(r),
            None => {
                if !self.looping {
                    return None;
                }
                self.rewind();
                self.decode_next()
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for StreamTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamTrace")
            .field("name", &self.name)
            .field("records", &self.total_records)
            .field("blocks", &self.blocks.len())
            .finish_non_exhaustive()
    }
}

/// A reader accepting both trace format generations: v1 files are
/// materialized (the flat format cannot be streamed without a scan), v2
/// files stream through [`StreamTrace`].
#[derive(Debug)]
pub enum TraceReader {
    /// A materialized v1 trace.
    V1(VecTrace),
    /// A streamed v2 trace.
    V2(Box<StreamTrace>),
}

impl TraceReader {
    /// Opens a trace file of either format, dispatching on the magic.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] when the file cannot be read or parsed.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ReadTraceError> {
        let path = path.as_ref();
        let mut magic = [0u8; 4];
        File::open(path)?
            .read_exact(&mut magic)
            .map_err(|_| ReadTraceError::Corrupt("short header"))?;
        match &magic {
            b"TLP2" => Ok(Self::V2(Box::new(StreamTrace::open(path)?))),
            b"TLPT" => Ok(Self::V1(read_trace(path)?.into_source())),
            _ => Err(ReadTraceError::BadMagic),
        }
    }

    /// Format version of the underlying file.
    #[must_use]
    pub fn version(&self) -> u16 {
        match self {
            Self::V1(_) => 1,
            Self::V2(_) => 2,
        }
    }

    /// Total records before looping.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        match self {
            Self::V1(t) => t.len() as u64,
            Self::V2(t) => t.total_records(),
        }
    }

    /// SimPoints from the v2 footer; v1 files carry none.
    #[must_use]
    pub fn simpoints(&self) -> &[SimPoint] {
        match self {
            Self::V1(_) => &[],
            Self::V2(t) => t.simpoints(),
        }
    }
}

impl TraceSource for TraceReader {
    fn next_record(&mut self) -> Option<TraceRecord> {
        match self {
            Self::V1(t) => t.next_record(),
            Self::V2(t) => t.next_record(),
        }
    }

    fn name(&self) -> &str {
        match self {
            Self::V1(t) => t.name(),
            Self::V2(t) => t.name(),
        }
    }
}

/// Header/footer summary of a trace file, for `--trace-info`.
#[derive(Debug, Clone)]
pub struct TraceInfo {
    /// Format generation (1 or 2).
    pub version: u16,
    /// Workload name recorded at capture time.
    pub name: String,
    /// Whether replay loops.
    pub looping: bool,
    /// Total records before looping.
    pub records: u64,
    /// Blocks in the file (1 for v1, which is a single flat array).
    pub blocks: usize,
    /// On-disk size in bytes.
    pub file_bytes: u64,
    /// Size the same records occupy in the flat v1 encoding.
    pub v1_bytes: u64,
    /// SimPoints in the footer (empty for v1).
    pub simpoints: Vec<SimPoint>,
    /// BBV interval the SimPoints were computed with (0 for v1).
    pub bbv_interval: u64,
}

impl TraceInfo {
    /// v1-equivalent size over actual size (how much smaller v2 is).
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        self.v1_bytes as f64 / self.file_bytes as f64
    }
}

/// Reads the header/footer summary of a trace file of either format.
///
/// # Errors
///
/// Returns [`ReadTraceError`] when the file cannot be read or parsed.
pub fn trace_info(path: impl AsRef<Path>) -> Result<TraceInfo, ReadTraceError> {
    let path = path.as_ref();
    let reader = TraceReader::open(path)?;
    let file_bytes = std::fs::metadata(path)?.len();
    let v1_bytes = |name: &str, records: u64| 18 + name.len() as u64 + records * 29;
    Ok(match reader {
        TraceReader::V1(t) => TraceInfo {
            version: 1,
            v1_bytes: v1_bytes(t.name(), t.len() as u64),
            name: t.name().to_owned(),
            // v1 looping is visible only via `into_source` behaviour; the
            // harness writes all captures looping, so re-read the flag.
            looping: read_trace(path)?.looping,
            records: t.len() as u64,
            blocks: 1,
            file_bytes,
            simpoints: Vec::new(),
            bbv_interval: 0,
        },
        TraceReader::V2(t) => TraceInfo {
            version: 2,
            v1_bytes: v1_bytes(t.name(), t.total_records()),
            name: t.name().to_owned(),
            looping: t.looping(),
            records: t.total_records(),
            blocks: t.blocks(),
            file_bytes,
            simpoints: t.simpoints().to_vec(),
            bbv_interval: t.bbv_interval(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tlp-v2-test-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join("trace.tlpt")
    }

    /// A mixed record stream exercising every op and delta polarity.
    fn mixed_records(n: usize) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(n);
        let mut addr = 0x10_0000u64;
        for i in 0..n {
            let pc = 0x400 + (i as u64 % 13) * 4;
            match i % 5 {
                0 => out.push(TraceRecord::load(pc, addr, 8, Reg(3), [Some(Reg(1)), None])),
                1 => out.push(TraceRecord::store(pc, addr ^ 0xfff0, 4, Some(Reg(2)), None)),
                2 => out.push(TraceRecord::alu(
                    pc,
                    Some(Reg(5)),
                    [Some(Reg(3)), Some(Reg(5))],
                )),
                3 => out.push(TraceRecord::fp(pc, Some(Reg(9)), [None, Some(Reg(9))])),
                _ => out.push(TraceRecord::branch(pc, i % 2 == 0, 0x400, Some(Reg(7)))),
            }
            // Wander both up and down so deltas change sign.
            addr = addr.wrapping_add(if i % 3 == 0 { 0x40 } else { u64::MAX - 0x17 });
            if i % 97 == 0 {
                addr = addr.wrapping_mul(0x9e37_79b9_7f4a_7c15); // occasional big jump
            }
        }
        out
    }

    #[test]
    fn varint_zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, 64, 300, -300, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v, "zigzag {v}");
        }
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn roundtrip_is_bit_exact_across_blocks() {
        // More than one block so per-block delta resets are exercised.
        let recs = mixed_records(BLOCK_RECORDS + 1234);
        let path = tmp("roundtrip");
        let sps = vec![SimPoint {
            interval: 3,
            weight: 1.0,
        }];
        write_trace_v2(&path, "mixed", true, &recs, &sps, 10_000).expect("write");
        let mut t = StreamTrace::open(&path).expect("open");
        assert_eq!(t.name(), "mixed");
        assert!(t.looping());
        assert_eq!(t.total_records(), recs.len() as u64);
        assert_eq!(t.blocks(), 2);
        assert_eq!(t.simpoints(), &sps[..]);
        assert_eq!(t.bbv_interval(), 10_000);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(t.next_record().as_ref(), Some(r), "record {i}");
        }
        // Looping wraps back to record 0 with reset delta state.
        assert_eq!(t.next_record().as_ref(), Some(&recs[0]));
        assert_eq!(t.next_record().as_ref(), Some(&recs[1]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_records_materializes_and_rewinds() {
        let recs = mixed_records(5000);
        let path = tmp("materialize");
        write_trace_v2(&path, "m", false, &recs, &[], 0).expect("write");
        let mut t = StreamTrace::open(&path).expect("open");
        assert_eq!(t.read_records(), recs);
        // Still replays from the start afterwards.
        assert_eq!(t.next_record().as_ref(), Some(&recs[0]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_looping_stream_ends() {
        let recs = mixed_records(100);
        let path = tmp("finite");
        write_trace_v2(&path, "f", false, &recs, &[], 0).expect("write");
        let mut t = StreamTrace::open(&path).expect("open");
        for _ in 0..100 {
            assert!(t.next_record().is_some());
        }
        assert!(t.next_record().is_none());
        assert!(t.next_record().is_none(), "stays exhausted");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reader_accepts_both_generations() {
        let recs = mixed_records(300);
        let dir = tmp("dispatch");
        let v1 = dir.with_file_name("v1.tlpt");
        let v2 = dir.with_file_name("v2.tlpt");
        tlp_trace::write_trace(&v1, "w", true, &recs).expect("v1 write");
        write_trace_v2(&v2, "w", true, &recs, &[], 0).expect("v2 write");
        for path in [&v1, &v2] {
            let mut r = TraceReader::open(path).expect("open");
            assert_eq!(r.name(), "w");
            assert_eq!(r.total_records(), 300);
            for rec in &recs {
                assert_eq!(r.next_record().as_ref(), Some(rec));
            }
        }
        assert_eq!(TraceReader::open(&v1).expect("v1").version(), 1);
        assert_eq!(TraceReader::open(&v2).expect("v2").version(), 2);
        std::fs::remove_file(&v1).ok();
        std::fs::remove_file(&v2).ok();
    }

    #[test]
    fn trace_info_reports_both_generations() {
        let recs = mixed_records(400);
        let dir = tmp("info");
        let v1 = dir.with_file_name("info1.tlpt");
        let v2 = dir.with_file_name("info2.tlpt");
        tlp_trace::write_trace(&v1, "w", true, &recs).expect("v1 write");
        let sps = vec![SimPoint {
            interval: 0,
            weight: 1.0,
        }];
        write_trace_v2(&v2, "w", true, &recs, &sps, 100).expect("v2 write");
        let i1 = trace_info(&v1).expect("info v1");
        assert_eq!((i1.version, i1.records, i1.blocks), (1, 400, 1));
        assert_eq!(i1.file_bytes, i1.v1_bytes);
        let i2 = trace_info(&v2).expect("info v2");
        assert_eq!((i2.version, i2.records), (2, 400));
        assert_eq!(i2.simpoints, sps);
        assert!(
            i2.compression_ratio() > 1.5,
            "even adversarial mixed records compress: {:.2}",
            i2.compression_ratio()
        );
        std::fs::remove_file(&v1).ok();
        std::fs::remove_file(&v2).ok();
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let recs = mixed_records(2000);
        let bytes = encode_trace_v2("c", true, &recs, &[], 0);
        let path = tmp("fuzz");
        // Deterministic fuzz smoke: truncations and single-byte flips at
        // positions spread over the whole file must never panic, and
        // payload damage must be detected (header/name damage may also
        // surface as BadMagic/BadVersion, which is fine — it must only
        // never succeed with different records).
        let mut lcg = 0x1234_5678_9abc_def0u64;
        for i in 0..64 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let cut = (lcg as usize) % bytes.len();
            std::fs::write(&path, &bytes[..cut]).expect("write truncated");
            assert!(StreamTrace::open(&path).is_err(), "truncation {i} at {cut}");

            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let flip = (lcg as usize) % bytes.len();
            let mut mutated = bytes.clone();
            mutated[flip] ^= 0x01 << (lcg >> 60 & 0x7);
            if mutated[flip] == bytes[flip] {
                continue;
            }
            std::fs::write(&path, &mutated).expect("write mutated");
            match StreamTrace::open(&path) {
                Err(_) => {}
                Ok(mut t) => {
                    // A flip inside the name or flags can still parse; the
                    // records themselves must then be untouched.
                    let got: Vec<TraceRecord> = (0..recs.len())
                        .map(|_| t.next_record().expect("len"))
                        .collect();
                    assert_eq!(got, recs, "flip {i} at {flip} silently altered records");
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_magic_with_right_error() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOPE-not-a-trace-file-at-all....").expect("write");
        assert!(matches!(
            StreamTrace::open(&path),
            Err(ReadTraceError::BadMagic)
        ));
        assert!(matches!(
            TraceReader::open(&path),
            Err(ReadTraceError::BadMagic)
        ));
        // A v1 file handed directly to the v2 opener names the version.
        let recs = mixed_records(10);
        tlp_trace::write_trace(&path, "w", false, &recs).expect("v1 write");
        assert!(matches!(
            StreamTrace::open(&path),
            Err(ReadTraceError::BadVersion(1))
        ));
        std::fs::remove_file(&path).ok();
    }
}
