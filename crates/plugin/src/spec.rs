//! Declarative scheme specifications and their factory-bound resolutions.

use tlp_sim::engine::CoreSetup;
use tlp_trace::TraceSource;

use crate::error::PluginError;
use crate::params::Params;
use crate::registry::{
    BuildCtx, L1FilterFactory, L1PrefetcherFactory, L2FilterFactory, L2PrefetcherFactory,
    OffChipFactory,
};

/// A reference to one registered component: a name plus its parameters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ComponentRef {
    /// Registered (namespaced) component name, e.g. `ipcp` or
    /// `custom:sandwich`.
    pub name: String,
    /// Factory parameters.
    pub params: Params,
}

impl ComponentRef {
    /// A parameterless reference.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            params: Params::new(),
        }
    }

    /// Builder-style parameter insert.
    #[must_use]
    pub fn param(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.params.set(key, value);
        self
    }

    /// The canonical cache-key fragment: the bare name, or
    /// `name{k=v,...}` when parameterized.
    #[must_use]
    pub fn canonical(&self) -> String {
        format!("{}{}", self.name, self.params.canonical())
    }
}

impl From<&str> for ComponentRef {
    fn from(name: &str) -> Self {
        ComponentRef::new(name)
    }
}

impl From<String> for ComponentRef {
    fn from(name: String) -> Self {
        ComponentRef::new(name)
    }
}

impl From<(&str, Params)> for ComponentRef {
    fn from((name, params): (&str, Params)) -> Self {
        Self {
            name: name.to_owned(),
            params,
        }
    }
}

/// A declarative scheme: which component (if any) fills each of the five
/// hook seams. Built by chaining, resolved against a
/// [`crate::ComponentRegistry`]:
///
/// ```
/// use tlp_plugin::SchemeSpec;
///
/// let spec = SchemeSpec::new("TLP").offchip("flp").l1_filter("slp");
/// assert_eq!(spec.name(), "TLP");
/// assert!(spec.cache_key().starts_with("spec:"));
/// ```
///
/// An unfilled seam means "none" (the simulator's inert default). The L1D
/// prefetcher seam is special: the harness's evaluation grid supplies it
/// per cell (the paper sweeps scheme × prefetcher), so most specs leave
/// it empty and only pin it to force a specific prefetcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeSpec {
    name: String,
    offchip: Option<ComponentRef>,
    l1_prefetcher: Option<ComponentRef>,
    l1_filter: Option<ComponentRef>,
    l2_prefetcher: Option<ComponentRef>,
    l2_filter: Option<ComponentRef>,
    key: Option<String>,
}

impl SchemeSpec {
    /// An empty spec with a display name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            offchip: None,
            l1_prefetcher: None,
            l1_filter: None,
            l2_prefetcher: None,
            l2_filter: None,
            key: None,
        }
    }

    /// Sets the off-chip predictor seam.
    #[must_use]
    pub fn offchip(mut self, r: impl Into<ComponentRef>) -> Self {
        self.offchip = Some(r.into());
        self
    }

    /// Pins the L1D prefetcher seam (overrides the grid's per-cell
    /// prefetcher).
    #[must_use]
    pub fn l1_prefetcher(mut self, r: impl Into<ComponentRef>) -> Self {
        self.l1_prefetcher = Some(r.into());
        self
    }

    /// Sets the L1D prefetch-filter seam.
    #[must_use]
    pub fn l1_filter(mut self, r: impl Into<ComponentRef>) -> Self {
        self.l1_filter = Some(r.into());
        self
    }

    /// Sets the L2 prefetcher seam.
    #[must_use]
    pub fn l2_prefetcher(mut self, r: impl Into<ComponentRef>) -> Self {
        self.l2_prefetcher = Some(r.into());
        self
    }

    /// Sets the L2 prefetch-filter seam.
    #[must_use]
    pub fn l2_filter(mut self, r: impl Into<ComponentRef>) -> Self {
        self.l2_filter = Some(r.into());
        self
    }

    /// Pins an explicit cache key instead of the derived canonical one.
    ///
    /// This exists for exactly one purpose: the built-in schemes predate
    /// the registry and their historical keys (`"TLP"`, `"Hermes+PPF"`,
    /// `tlp:TlpParams { ... }`, ...) address years of golden fixtures and
    /// on-disk cache entries, so their specs pin those strings
    /// byte-for-byte. New specs should leave the key derived — derived
    /// keys live in the `spec:` namespace, which no pinned built-in key
    /// occupies.
    ///
    /// Registries reject pinned keys that could alias other cached
    /// results: keys in the derived namespaces (`spec:`, `custom:`), on
    /// specs referencing custom components, or equal to a registered
    /// scheme's key with a different composition. Beyond those checks, a
    /// pinned key is the caller asserting stewardship of that address —
    /// pinning a string that collides with cells you did not produce
    /// (e.g. a hand-forged `tlp:TlpParams { ... }`) corrupts the shared
    /// cache.
    #[must_use]
    pub fn pinned_key(mut self, key: impl Into<String>) -> Self {
        self.key = Some(key.into());
        self
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pinned cache key, when one was set.
    #[must_use]
    pub fn pinned(&self) -> Option<&str> {
        self.key.as_deref()
    }

    /// Whether two specs compose the same components (seam by seam,
    /// parameters included). Display names and pinned keys are ignored —
    /// the composition is what determines simulation behavior.
    #[must_use]
    pub fn same_composition(&self, other: &SchemeSpec) -> bool {
        self.offchip == other.offchip
            && self.l1_prefetcher == other.l1_prefetcher
            && self.l1_filter == other.l1_filter
            && self.l2_prefetcher == other.l2_prefetcher
            && self.l2_filter == other.l2_filter
    }

    /// References of every filled seam, in build order.
    #[must_use]
    pub fn component_refs(&self) -> Vec<&ComponentRef> {
        [
            &self.offchip,
            &self.l1_prefetcher,
            &self.l1_filter,
            &self.l2_prefetcher,
            &self.l2_filter,
        ]
        .into_iter()
        .filter_map(Option::as_ref)
        .collect()
    }

    /// The component filling a seam, if any.
    #[must_use]
    pub fn offchip_ref(&self) -> Option<&ComponentRef> {
        self.offchip.as_ref()
    }

    /// The pinned L1D prefetcher, if any.
    #[must_use]
    pub fn l1_prefetcher_ref(&self) -> Option<&ComponentRef> {
        self.l1_prefetcher.as_ref()
    }

    /// The L1D prefetch filter, if any.
    #[must_use]
    pub fn l1_filter_ref(&self) -> Option<&ComponentRef> {
        self.l1_filter.as_ref()
    }

    /// The L2 prefetcher, if any.
    #[must_use]
    pub fn l2_prefetcher_ref(&self) -> Option<&ComponentRef> {
        self.l2_prefetcher.as_ref()
    }

    /// The L2 prefetch filter, if any.
    #[must_use]
    pub fn l2_filter_ref(&self) -> Option<&ComponentRef> {
        self.l2_filter.as_ref()
    }

    /// One-line composition summary for listings, e.g.
    /// `offchip=flp l1f=slp l2pf=spp{profile=standard}`.
    #[must_use]
    pub fn composition(&self) -> String {
        let mut parts = Vec::new();
        let mut push = |label: &str, r: &Option<ComponentRef>| {
            if let Some(r) = r {
                parts.push(format!("{label}={}", r.canonical()));
            }
        };
        push("offchip", &self.offchip);
        push("l1pf", &self.l1_prefetcher);
        push("l1f", &self.l1_filter);
        push("l2pf", &self.l2_prefetcher);
        push("l2f", &self.l2_filter);
        if parts.is_empty() {
            "(all seams empty)".to_owned()
        } else {
            parts.join(" ")
        }
    }

    /// The cache key feeding `RunKey` derivation: the pinned key when
    /// present, else the canonical derived key over the five seams. The
    /// display name is deliberately **not** part of the derived key — two
    /// specs composing identical components are the same simulation and
    /// share cache entries.
    #[must_use]
    pub fn cache_key(&self) -> String {
        if let Some(k) = &self.key {
            return k.clone();
        }
        let part =
            |r: &Option<ComponentRef>| r.as_ref().map_or("-".to_owned(), ComponentRef::canonical);
        format!(
            "spec:oc={};l1pf={};l1f={};l2pf={};l2f={}",
            part(&self.offchip),
            part(&self.l1_prefetcher),
            part(&self.l1_filter),
            part(&self.l2_prefetcher),
            part(&self.l2_filter),
        )
    }
}

/// One resolved seam: the factory, its parameters, and the canonical
/// cache-key fragment of the originating [`ComponentRef`].
#[derive(Clone)]
pub struct ResolvedComponent<F> {
    /// Canonical fragment (`name` or `name{params}`).
    pub key: String,
    /// The registered factory.
    pub factory: F,
    /// Parameters passed to the factory at build time.
    pub params: Params,
}

impl<F> std::fmt::Debug for ResolvedComponent<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolvedComponent")
            .field("key", &self.key)
            .field("params", &self.params)
            .finish_non_exhaustive()
    }
}

impl<F> ResolvedComponent<F> {
    /// Builds the component through its factory.
    ///
    /// # Errors
    ///
    /// Propagates the factory's [`PluginError`] (typically
    /// [`PluginError::InvalidParam`]).
    pub fn build<T>(&self, ctx: &mut BuildCtx) -> Result<T, PluginError>
    where
        F: std::ops::Deref,
        F::Target: Fn(&Params, &mut BuildCtx) -> Result<T, PluginError>,
    {
        (*self.factory)(&self.params, ctx)
    }
}

/// A [`SchemeSpec`] bound to its factories: everything needed to assemble
/// a [`CoreSetup`] with no further registry access. Resolution happens
/// once (with did-you-mean errors at spec-validation time); the resolved
/// scheme is then cheap to clone into every grid cell and is `Send +
/// Sync` (factories are `Arc` closures), so cells build their systems on
/// worker threads.
#[derive(Debug, Clone)]
pub struct ResolvedScheme {
    /// Display name (from the spec).
    pub name: String,
    /// Cache key (from [`SchemeSpec::cache_key`]).
    pub cache_key: String,
    pub(crate) offchip: Option<ResolvedComponent<OffChipFactory>>,
    pub(crate) l1_prefetcher: Option<ResolvedComponent<L1PrefetcherFactory>>,
    pub(crate) l1_filter: Option<ResolvedComponent<L1FilterFactory>>,
    pub(crate) l2_prefetcher: Option<ResolvedComponent<L2PrefetcherFactory>>,
    pub(crate) l2_filter: Option<ResolvedComponent<L2FilterFactory>>,
}

impl ResolvedScheme {
    /// Dry-runs every factory (fresh throwaway [`BuildCtx`], components
    /// discarded), so parameter errors — unknown keys, unparseable
    /// values — surface as `Err` *before* any simulation is planned.
    /// Resolution alone only validates names; the parameters are the
    /// factories' to judge.
    ///
    /// # Errors
    ///
    /// Returns the first factory's [`PluginError`].
    pub fn validate(&self) -> Result<(), PluginError> {
        let mut ctx = BuildCtx::new();
        if let Some(c) = &self.offchip {
            c.build(&mut ctx).map(drop)?;
        }
        if let Some(c) = &self.l1_prefetcher {
            c.build(&mut ctx).map(drop)?;
        }
        if let Some(c) = &self.l1_filter {
            c.build(&mut ctx).map(drop)?;
        }
        if let Some(c) = &self.l2_prefetcher {
            c.build(&mut ctx).map(drop)?;
        }
        if let Some(c) = &self.l2_filter {
            c.build(&mut ctx).map(drop)?;
        }
        Ok(())
    }

    /// Assembles a [`CoreSetup`] around `trace`. `default_l1pf` fills the
    /// L1D prefetcher seam when the spec does not pin one (the grid's
    /// per-cell prefetcher); `None` with an unpinned seam leaves the
    /// simulator's inert default.
    ///
    /// Factories run in a fixed, documented order — off-chip predictor,
    /// L1D prefetcher, L1D filter, L2 prefetcher, L2 filter — and share
    /// `ctx`, so coupled components (e.g. Athena-RL's two faces) can
    /// exchange state deterministically.
    ///
    /// # Errors
    ///
    /// Propagates the first factory error.
    pub fn build_setup(
        &self,
        trace: Box<dyn TraceSource>,
        default_l1pf: Option<&ResolvedComponent<L1PrefetcherFactory>>,
        ctx: &mut BuildCtx,
    ) -> Result<CoreSetup, PluginError> {
        let mut setup = CoreSetup::new(trace);
        if let Some(c) = &self.offchip {
            setup = setup.with_offchip(c.build(ctx)?);
        }
        if let Some(c) = self.l1_prefetcher.as_ref().or(default_l1pf) {
            setup = setup.with_l1_prefetcher(c.build(ctx)?);
        }
        if let Some(c) = &self.l1_filter {
            setup = setup.with_l1_filter(c.build(ctx)?);
        }
        if let Some(c) = &self.l2_prefetcher {
            setup = setup.with_l2_prefetcher(c.build(ctx)?);
        }
        if let Some(c) = &self.l2_filter {
            setup = setup.with_l2_filter(c.build(ctx)?);
        }
        Ok(setup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_keys_cover_all_seams_and_ignore_the_name() {
        let a = SchemeSpec::new("A")
            .offchip("flp")
            .l1_filter("slp")
            .l2_prefetcher(ComponentRef::new("spp").param("profile", "standard"));
        let b = SchemeSpec::new("B")
            .offchip("flp")
            .l1_filter("slp")
            .l2_prefetcher(ComponentRef::new("spp").param("profile", "standard"));
        assert_eq!(a.cache_key(), b.cache_key(), "name must not affect the key");
        assert_eq!(
            a.cache_key(),
            "spec:oc=flp;l1pf=-;l1f=slp;l2pf=spp{profile=standard};l2f=-"
        );
        let c = SchemeSpec::new("A").offchip("flp").l1_filter("slp");
        assert_ne!(a.cache_key(), c.cache_key(), "every seam is key material");
    }

    #[test]
    fn pinned_key_wins() {
        let s = SchemeSpec::new("TLP").offchip("flp").pinned_key("TLP");
        assert_eq!(s.cache_key(), "TLP");
    }

    #[test]
    fn component_ref_canonical_forms() {
        assert_eq!(ComponentRef::new("ipcp").canonical(), "ipcp");
        assert_eq!(
            ComponentRef::new("ipcp").param("scale", 4).canonical(),
            "ipcp{scale=4}"
        );
    }

    #[test]
    fn composition_summary_names_filled_seams() {
        let s = SchemeSpec::new("X").offchip("hermes").l2_filter("ppf");
        assert_eq!(s.composition(), "offchip=hermes l2f=ppf");
        assert_eq!(SchemeSpec::new("Y").composition(), "(all seams empty)");
    }
}
