//! The string-keyed component registry behind scheme composition.

use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use tlp_sim::engine::CoreSetup;
use tlp_sim::hooks::{
    L1PrefetchFilter, L1Prefetcher, L2PrefetchFilter, L2Prefetcher, NoL1Filter, NoL1Prefetcher,
    NoL2Filter, NoL2Prefetcher, NoOffChip, OffChipPredictor,
};
use tlp_trace::TraceSource;

use crate::error::{suggest, PluginError};
use crate::params::Params;
use crate::spec::{ComponentRef, ResolvedComponent, ResolvedScheme, SchemeSpec};

/// The five hook seams a component can fill (the plugin interfaces of
/// [`tlp_sim::hooks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Seam {
    /// Off-chip predictor for demand loads ([`OffChipPredictor`]).
    OffChip,
    /// L1D hardware prefetcher ([`L1Prefetcher`]).
    L1Prefetcher,
    /// L1D prefetch filter ([`L1PrefetchFilter`]).
    L1Filter,
    /// L2 hardware prefetcher ([`L2Prefetcher`]).
    L2Prefetcher,
    /// L2 prefetch filter ([`L2PrefetchFilter`]).
    L2Filter,
}

impl Seam {
    /// All seams, in the canonical listing order.
    pub const ALL: [Seam; 5] = [
        Seam::OffChip,
        Seam::L1Prefetcher,
        Seam::L1Filter,
        Seam::L2Prefetcher,
        Seam::L2Filter,
    ];

    /// Human-readable seam label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Seam::OffChip => "off-chip predictor",
            Seam::L1Prefetcher => "L1D prefetcher",
            Seam::L1Filter => "L1D prefetch filter",
            Seam::L2Prefetcher => "L2 prefetcher",
            Seam::L2Filter => "L2 prefetch filter",
        }
    }
}

impl std::fmt::Display for Seam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Shared state across the factories of **one** `CoreSetup` build.
///
/// Coupled components use it to exchange state: the Athena-RL scheme's
/// off-chip face creates the shared agent with [`BuildCtx::shared`] and
/// its filter face picks the same agent up under the same slot name.
/// Experiment code can pre-[`seed`](BuildCtx::seed) a slot to inject
/// externally owned state (the persistent-agent learning-curve study
/// seeds its agent across epochs this way).
///
/// A fresh context is used per core setup, so multi-core mixes build
/// per-core state unless the caller deliberately shares one context.
#[derive(Default)]
pub struct BuildCtx {
    slots: HashMap<String, Box<dyn Any + Send>>,
}

impl std::fmt::Debug for BuildCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.slots.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("BuildCtx").field("slots", &names).finish()
    }
}

impl BuildCtx {
    /// An empty context.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-populates a slot (overwriting any previous value).
    pub fn seed<T: Clone + Send + 'static>(&mut self, slot: &str, value: T) {
        self.slots.insert(slot.to_owned(), Box::new(value));
    }

    /// Returns a clone of the slot's value, creating it with `make` on
    /// first access. A type mismatch with an existing slot panics — two
    /// factories disagreeing about a slot's type is a plugin bug, not a
    /// runtime condition.
    ///
    /// # Panics
    ///
    /// Panics when the slot holds a value of a different type.
    pub fn shared<T: Clone + Send + 'static>(&mut self, slot: &str, make: impl FnOnce() -> T) -> T {
        if let Some(boxed) = self.slots.get(slot) {
            return boxed
                .downcast_ref::<T>()
                .unwrap_or_else(|| {
                    panic!(
                        "BuildCtx slot '{slot}' holds a different type than requested \
                         ({} expected)",
                        std::any::type_name::<T>()
                    )
                })
                .clone();
        }
        let value = make();
        self.slots.insert(slot.to_owned(), Box::new(value.clone()));
        value
    }
}

/// Factory signature for the off-chip predictor seam.
pub type OffChipFactory = Arc<
    dyn Fn(&Params, &mut BuildCtx) -> Result<Box<dyn OffChipPredictor>, PluginError> + Send + Sync,
>;
/// Factory signature for the L1D prefetcher seam.
pub type L1PrefetcherFactory =
    Arc<dyn Fn(&Params, &mut BuildCtx) -> Result<Box<dyn L1Prefetcher>, PluginError> + Send + Sync>;
/// Factory signature for the L1D prefetch-filter seam.
pub type L1FilterFactory = Arc<
    dyn Fn(&Params, &mut BuildCtx) -> Result<Box<dyn L1PrefetchFilter>, PluginError> + Send + Sync,
>;
/// Factory signature for the L2 prefetcher seam.
pub type L2PrefetcherFactory =
    Arc<dyn Fn(&Params, &mut BuildCtx) -> Result<Box<dyn L2Prefetcher>, PluginError> + Send + Sync>;
/// Factory signature for the L2 prefetch-filter seam.
pub type L2FilterFactory = Arc<
    dyn Fn(&Params, &mut BuildCtx) -> Result<Box<dyn L2PrefetchFilter>, PluginError> + Send + Sync,
>;

/// Namespace prefix applied to every custom registration. Built-in names
/// may never start with it, so a custom component can never collide with
/// — or be spoofed as — a built-in, and its cache-key fragments are
/// recognizably foreign.
///
/// **Cache-staleness caveat:** result-cache keys address a custom
/// component by its name and parameters, not its code — built-in code is
/// guarded by the harness's `CODE_VERSION` salt, but the registry cannot
/// see inside a user factory. After changing a custom component's
/// *implementation*, bump a version parameter in the specs that
/// reference it (e.g. `.param("v", 2)`) or point the session at a fresh
/// cache directory; otherwise a persistent disk tier will keep serving
/// the old implementation's results.
pub const CUSTOM_PREFIX: &str = "custom:";

/// One listing row of [`ComponentRegistry::components`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentInfo {
    /// Registered (namespaced) name.
    pub name: String,
    /// The seam the component fills.
    pub seam: Seam,
    /// Origin crate (or `custom`).
    pub origin: String,
}

/// One listing row of [`ComponentRegistry::schemes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeInfo {
    /// Scheme name (the `--scheme` lookup key).
    pub name: String,
    /// Origin crate (or `custom`).
    pub origin: String,
    /// Composition summary ([`SchemeSpec::composition`]).
    pub composition: String,
    /// The spec's cache key.
    pub cache_key: String,
}

#[derive(Clone)]
struct Entry<F> {
    factory: F,
    origin: String,
}

struct SeamMap<F> {
    seam: Seam,
    entries: BTreeMap<String, Entry<F>>,
}

impl<F: Clone> Clone for SeamMap<F> {
    fn clone(&self) -> Self {
        Self {
            seam: self.seam,
            entries: self.entries.clone(),
        }
    }
}

impl<F> SeamMap<F> {
    fn new(seam: Seam) -> Self {
        Self {
            seam,
            entries: BTreeMap::new(),
        }
    }

    fn register(
        &mut self,
        name: &str,
        origin: &str,
        custom: bool,
        factory: F,
    ) -> Result<String, PluginError> {
        if name.is_empty() {
            return Err(PluginError::InvalidName {
                name: name.to_owned(),
                reason: "empty name",
            });
        }
        if name.contains(['|', '{', '}', ';', '=', ',']) {
            return Err(PluginError::InvalidName {
                name: name.to_owned(),
                reason: "names may not contain '|', '{', '}', ';', '=' or ',' \
                         (cache-key structural characters)",
            });
        }
        if !custom && name.starts_with(CUSTOM_PREFIX) {
            return Err(PluginError::InvalidName {
                name: name.to_owned(),
                reason: "the 'custom:' namespace is reserved for register_custom_* calls",
            });
        }
        let key = if custom {
            format!("{CUSTOM_PREFIX}{name}")
        } else {
            name.to_owned()
        };
        if self.entries.contains_key(&key) {
            return Err(PluginError::DuplicateComponent {
                seam: self.seam,
                name: key,
            });
        }
        self.entries.insert(
            key.clone(),
            Entry {
                factory,
                origin: origin.to_owned(),
            },
        );
        Ok(key)
    }

    fn get(&self, name: &str) -> Result<&Entry<F>, PluginError> {
        self.entries
            .get(name)
            .ok_or_else(|| PluginError::UnknownComponent {
                seam: self.seam,
                name: name.to_owned(),
                did_you_mean: suggest(name, self.entries.keys().map(String::as_str)),
            })
    }

    fn resolve(&self, r: &ComponentRef) -> Result<ResolvedComponent<F>, PluginError>
    where
        F: Clone,
    {
        let entry = self.get(&r.name)?;
        Ok(ResolvedComponent {
            key: r.canonical(),
            factory: entry.factory.clone(),
            params: r.params.clone(),
        })
    }

    fn infos(&self, out: &mut Vec<ComponentInfo>) {
        for (name, e) in &self.entries {
            out.push(ComponentInfo {
                name: name.clone(),
                seam: self.seam,
                origin: e.origin.clone(),
            });
        }
    }
}

#[derive(Clone)]
struct SchemeEntry {
    spec: SchemeSpec,
    origin: String,
}

/// The registry: five seams of named component factories plus a map of
/// named [`SchemeSpec`]s (the `--scheme` lookup space).
///
/// Cloning is cheap-ish (factories are `Arc`s); the harness keeps one
/// built-in registry and a `Session` clones it so user registrations
/// never leak across sessions.
#[derive(Clone)]
pub struct ComponentRegistry {
    offchip: SeamMap<OffChipFactory>,
    l1_prefetchers: SeamMap<L1PrefetcherFactory>,
    l1_filters: SeamMap<L1FilterFactory>,
    l2_prefetchers: SeamMap<L2PrefetcherFactory>,
    l2_filters: SeamMap<L2FilterFactory>,
    schemes: BTreeMap<String, SchemeEntry>,
}

impl std::fmt::Debug for ComponentRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComponentRegistry")
            .field("offchip", &self.offchip.entries.len())
            .field("l1_prefetchers", &self.l1_prefetchers.entries.len())
            .field("l1_filters", &self.l1_filters.entries.len())
            .field("l2_prefetchers", &self.l2_prefetchers.entries.len())
            .field("l2_filters", &self.l2_filters.entries.len())
            .field("schemes", &self.schemes.len())
            .finish()
    }
}

impl Default for ComponentRegistry {
    fn default() -> Self {
        Self::new()
    }
}

macro_rules! seam_api {
    ($field:ident, $fty:ty, $out:ty,
     $reg:ident, $reg_custom:ident, $resolve:ident, $build:ident) => {
        /// Registers a built-in component on this seam.
        ///
        /// # Errors
        ///
        /// Rejects duplicate or invalid names.
        pub fn $reg(&mut self, name: &str, origin: &str, factory: $fty) -> Result<(), PluginError> {
            self.$field
                .register(name, origin, false, factory)
                .map(|_| ())
        }

        /// Registers a user component on this seam under the
        /// collision-checked `custom:` namespace; returns the namespaced
        /// name to reference in specs. See [`CUSTOM_PREFIX`] for the
        /// cache-staleness caveat when the component's *code* changes.
        ///
        /// # Errors
        ///
        /// Rejects duplicate or invalid names.
        pub fn $reg_custom(&mut self, name: &str, factory: $fty) -> Result<String, PluginError> {
            self.$field.register(name, "custom", true, factory)
        }

        /// Resolves a reference on this seam to its factory.
        ///
        /// # Errors
        ///
        /// Returns [`PluginError::UnknownComponent`] (with did-you-mean
        /// suggestions) for unregistered names.
        pub fn $resolve(&self, r: &ComponentRef) -> Result<ResolvedComponent<$fty>, PluginError> {
            self.$field.resolve(r)
        }

        /// Builds a component on this seam directly from a reference.
        ///
        /// # Errors
        ///
        /// Propagates resolution and factory errors.
        pub fn $build(&self, r: &ComponentRef, ctx: &mut BuildCtx) -> Result<$out, PluginError> {
            (self.$field.get(&r.name)?.factory)(&r.params, ctx)
        }
    };
}

impl ComponentRegistry {
    /// An empty registry, except for the inert `none` component
    /// pre-registered on every seam (origin `tlp-sim`) so specs and
    /// `--l1pf none` can name "no component" uniformly.
    #[must_use]
    pub fn new() -> Self {
        let mut reg = Self {
            offchip: SeamMap::new(Seam::OffChip),
            l1_prefetchers: SeamMap::new(Seam::L1Prefetcher),
            l1_filters: SeamMap::new(Seam::L1Filter),
            l2_prefetchers: SeamMap::new(Seam::L2Prefetcher),
            l2_filters: SeamMap::new(Seam::L2Filter),
            schemes: BTreeMap::new(),
        };
        const SIM: &str = "tlp-sim";
        let strict = |component: &'static str, p: &Params| -> Result<(), PluginError> {
            p.allow_keys(component, &[])
        };
        reg.register_offchip(
            "none",
            SIM,
            Arc::new(move |p, _| {
                strict("none (off-chip)", p)?;
                Ok(Box::new(NoOffChip))
            }),
        )
        .expect("fresh registry");
        reg.register_l1_prefetcher(
            "none",
            SIM,
            Arc::new(move |p, _| {
                strict("none (L1 prefetcher)", p)?;
                Ok(Box::new(NoL1Prefetcher))
            }),
        )
        .expect("fresh registry");
        reg.register_l1_filter(
            "none",
            SIM,
            Arc::new(move |p, _| {
                strict("none (L1 filter)", p)?;
                Ok(Box::new(NoL1Filter))
            }),
        )
        .expect("fresh registry");
        reg.register_l2_prefetcher(
            "none",
            SIM,
            Arc::new(move |p, _| {
                strict("none (L2 prefetcher)", p)?;
                Ok(Box::new(NoL2Prefetcher))
            }),
        )
        .expect("fresh registry");
        reg.register_l2_filter(
            "none",
            SIM,
            Arc::new(move |p, _| {
                strict("none (L2 filter)", p)?;
                Ok(Box::new(NoL2Filter))
            }),
        )
        .expect("fresh registry");
        reg
    }

    seam_api!(
        offchip,
        OffChipFactory,
        Box<dyn OffChipPredictor>,
        register_offchip,
        register_custom_offchip,
        resolve_offchip,
        build_offchip
    );
    seam_api!(
        l1_prefetchers,
        L1PrefetcherFactory,
        Box<dyn L1Prefetcher>,
        register_l1_prefetcher,
        register_custom_l1_prefetcher,
        resolve_l1_prefetcher,
        build_l1_prefetcher
    );
    seam_api!(
        l1_filters,
        L1FilterFactory,
        Box<dyn L1PrefetchFilter>,
        register_l1_filter,
        register_custom_l1_filter,
        resolve_l1_filter,
        build_l1_filter
    );
    seam_api!(
        l2_prefetchers,
        L2PrefetcherFactory,
        Box<dyn L2Prefetcher>,
        register_l2_prefetcher,
        register_custom_l2_prefetcher,
        resolve_l2_prefetcher,
        build_l2_prefetcher
    );
    seam_api!(
        l2_filters,
        L2FilterFactory,
        Box<dyn L2PrefetchFilter>,
        register_l2_filter,
        register_custom_l2_filter,
        resolve_l2_filter,
        build_l2_filter
    );

    /// Whether a component name is registered on a seam.
    #[must_use]
    pub fn contains(&self, seam: Seam, name: &str) -> bool {
        match seam {
            Seam::OffChip => self.offchip.entries.contains_key(name),
            Seam::L1Prefetcher => self.l1_prefetchers.entries.contains_key(name),
            Seam::L1Filter => self.l1_filters.entries.contains_key(name),
            Seam::L2Prefetcher => self.l2_prefetchers.entries.contains_key(name),
            Seam::L2Filter => self.l2_filters.entries.contains_key(name),
        }
    }

    /// Every registered component, ordered by seam then name.
    #[must_use]
    pub fn components(&self) -> Vec<ComponentInfo> {
        let mut out = Vec::new();
        self.offchip.infos(&mut out);
        self.l1_prefetchers.infos(&mut out);
        self.l1_filters.infos(&mut out);
        self.l2_prefetchers.infos(&mut out);
        self.l2_filters.infos(&mut out);
        out
    }

    /// The components of one seam, ordered by name.
    #[must_use]
    pub fn components_of(&self, seam: Seam) -> Vec<ComponentInfo> {
        self.components()
            .into_iter()
            .filter(|c| c.seam == seam)
            .collect()
    }

    /// Registers a named scheme (the `--scheme` lookup space).
    ///
    /// # Errors
    ///
    /// Rejects duplicate names and aliasing pinned keys.
    pub fn register_scheme(&mut self, spec: SchemeSpec, origin: &str) -> Result<(), PluginError> {
        self.check_pinned_key(&spec)?;
        let name = spec.name().to_owned();
        if self.schemes.contains_key(&name) {
            return Err(PluginError::DuplicateScheme { name });
        }
        self.schemes.insert(
            name,
            SchemeEntry {
                spec,
                origin: origin.to_owned(),
            },
        );
        Ok(())
    }

    /// Registers a user scheme (origin `custom`). The name is kept as
    /// given — the `custom:` namespace applies to component names, which
    /// is where cache keys come from — but collisions with registered
    /// schemes are rejected.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names.
    pub fn register_custom_scheme(&mut self, spec: SchemeSpec) -> Result<(), PluginError> {
        self.register_scheme(spec, "custom")
    }

    /// Looks a scheme up by name, with did-you-mean suggestions.
    ///
    /// # Errors
    ///
    /// Returns [`PluginError::UnknownScheme`] for unregistered names.
    pub fn scheme(&self, name: &str) -> Result<&SchemeSpec, PluginError> {
        self.schemes
            .get(name)
            .map(|e| &e.spec)
            .ok_or_else(|| PluginError::UnknownScheme {
                name: name.to_owned(),
                did_you_mean: suggest(name, self.schemes.keys().map(String::as_str)),
            })
    }

    /// Every registered scheme, ordered by name.
    #[must_use]
    pub fn schemes(&self) -> Vec<SchemeInfo> {
        self.schemes
            .iter()
            .map(|(name, e)| SchemeInfo {
                name: name.clone(),
                origin: e.origin.clone(),
                composition: e.spec.composition(),
                cache_key: e.spec.cache_key(),
            })
            .collect()
    }

    /// Guards the pinned-key escape hatch: pinned keys exist solely so
    /// the built-in schemes keep their historical cache addresses, so a
    /// pinned spec may neither reference custom components (their
    /// results must stay content-addressed under derived keys) nor reuse
    /// a registered scheme's key for a *different* composition — either
    /// would let one composition warm-hit another's cached results.
    fn check_pinned_key(&self, spec: &SchemeSpec) -> Result<(), PluginError> {
        let Some(key) = spec.pinned() else {
            return Ok(());
        };
        // The derived-key namespaces are never pinnable: a pinned key
        // shaped like a derived key could collide with a genuine derived
        // composition's address.
        for reserved in ["spec:", CUSTOM_PREFIX] {
            if key.starts_with(reserved) {
                return Err(PluginError::PinnedKeyRejected {
                    key: key.to_owned(),
                    reason: format!("the '{reserved}' namespace is reserved for derived keys"),
                });
            }
        }
        if let Some(r) = spec
            .component_refs()
            .iter()
            .find(|r| r.name.starts_with(CUSTOM_PREFIX))
        {
            return Err(PluginError::PinnedKeyRejected {
                key: key.to_owned(),
                reason: format!(
                    "the spec references custom component '{}'; leave the key \
                     derived so results stay content-addressed",
                    r.name
                ),
            });
        }
        if let Some((name, entry)) = self
            .schemes
            .iter()
            .find(|(_, e)| e.spec.cache_key() == key && !e.spec.same_composition(spec))
        {
            return Err(PluginError::PinnedKeyRejected {
                key: key.to_owned(),
                reason: format!(
                    "it is the cache key of registered scheme '{name}' \
                     (origin {}) with a different composition",
                    entry.origin
                ),
            });
        }
        Ok(())
    }

    /// Resolves a spec: every filled seam is bound to its factory. This
    /// is where unknown component names surface — and where pinned-key
    /// aliasing is rejected — before any simulation starts.
    ///
    /// # Errors
    ///
    /// Returns the first seam's [`PluginError::UnknownComponent`], or
    /// [`PluginError::PinnedKeyRejected`] for a pinned key that could
    /// alias other cached results.
    pub fn resolve(&self, spec: &SchemeSpec) -> Result<ResolvedScheme, PluginError> {
        self.check_pinned_key(spec)?;
        Ok(ResolvedScheme {
            name: spec.name().to_owned(),
            cache_key: spec.cache_key(),
            offchip: spec
                .offchip_ref()
                .map(|r| self.offchip.resolve(r))
                .transpose()?,
            l1_prefetcher: spec
                .l1_prefetcher_ref()
                .map(|r| self.l1_prefetchers.resolve(r))
                .transpose()?,
            l1_filter: spec
                .l1_filter_ref()
                .map(|r| self.l1_filters.resolve(r))
                .transpose()?,
            l2_prefetcher: spec
                .l2_prefetcher_ref()
                .map(|r| self.l2_prefetchers.resolve(r))
                .transpose()?,
            l2_filter: spec
                .l2_filter_ref()
                .map(|r| self.l2_filters.resolve(r))
                .transpose()?,
        })
    }

    /// Resolves and assembles a spec around a trace in one step.
    ///
    /// # Errors
    ///
    /// Propagates resolution and factory errors.
    pub fn build_setup(
        &self,
        spec: &SchemeSpec,
        default_l1pf: Option<&ComponentRef>,
        trace: Box<dyn TraceSource>,
        ctx: &mut BuildCtx,
    ) -> Result<CoreSetup, PluginError> {
        let resolved = self.resolve(spec)?;
        let pf = default_l1pf
            .map(|r| self.l1_prefetchers.resolve(r))
            .transpose()?;
        resolved.build_setup(trace, pf.as_ref(), ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop_l1pf() -> L1PrefetcherFactory {
        Arc::new(|_, _| Ok(Box::new(NoL1Prefetcher)))
    }

    #[test]
    fn duplicate_builtin_registration_is_rejected() {
        let mut reg = ComponentRegistry::new();
        reg.register_l1_prefetcher("toy", "here", noop_l1pf())
            .expect("first");
        let err = reg
            .register_l1_prefetcher("toy", "there", noop_l1pf())
            .unwrap_err();
        assert_eq!(
            err,
            PluginError::DuplicateComponent {
                seam: Seam::L1Prefetcher,
                name: "toy".into()
            }
        );
    }

    #[test]
    fn duplicate_custom_registration_is_rejected() {
        let mut reg = ComponentRegistry::new();
        let key = reg
            .register_custom_l1_prefetcher("toy", noop_l1pf())
            .expect("first");
        assert_eq!(key, "custom:toy");
        assert!(reg
            .register_custom_l1_prefetcher("toy", noop_l1pf())
            .is_err());
        // The namespaces are disjoint: a builtin "toy" still fits.
        reg.register_l1_prefetcher("toy", "here", noop_l1pf())
            .expect("distinct namespace");
    }

    #[test]
    fn builtins_may_not_squat_the_custom_namespace() {
        let mut reg = ComponentRegistry::new();
        let err = reg
            .register_l1_prefetcher("custom:evil", "here", noop_l1pf())
            .unwrap_err();
        assert!(matches!(err, PluginError::InvalidName { .. }));
    }

    #[test]
    fn structural_characters_are_rejected_in_names() {
        let mut reg = ComponentRegistry::new();
        for bad in ["a|b", "a{b", "a}b", "a;b", "a=b", "a,b", ""] {
            assert!(
                reg.register_l1_prefetcher(bad, "here", noop_l1pf())
                    .is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn pinned_keys_cannot_alias_registered_schemes_or_custom_components() {
        let mut reg = ComponentRegistry::new();
        reg.register_scheme(
            SchemeSpec::new("TLP").offchip("none").pinned_key("TLP"),
            "here",
        )
        .expect("the real scheme registers");
        // Same pinned key, different composition: rejected at both
        // registration and resolution.
        let imposter = SchemeSpec::new("mine").l2_filter("none").pinned_key("TLP");
        assert!(matches!(
            reg.register_scheme(imposter.clone(), "evil").unwrap_err(),
            PluginError::PinnedKeyRejected { .. }
        ));
        assert!(matches!(
            reg.resolve(&imposter).unwrap_err(),
            PluginError::PinnedKeyRejected { .. }
        ));
        // The genuine spec still resolves (identical composition) —
        // even under a different display name, which is not key material.
        assert!(reg
            .resolve(&SchemeSpec::new("TLP").offchip("none").pinned_key("TLP"))
            .is_ok());
        assert!(reg
            .resolve(&SchemeSpec::new("alias").offchip("none").pinned_key("TLP"))
            .is_ok());
        // Pinned keys may not address custom components at all.
        reg.register_custom_l1_prefetcher("toy", noop_l1pf())
            .expect("register");
        let pinned_custom = SchemeSpec::new("x")
            .l1_prefetcher("custom:toy")
            .pinned_key("anything");
        assert!(matches!(
            reg.resolve(&pinned_custom).unwrap_err(),
            PluginError::PinnedKeyRejected { .. }
        ));
        // Derived keys over custom components are fine.
        assert!(reg
            .resolve(&SchemeSpec::new("x").l1_prefetcher("custom:toy"))
            .is_ok());
    }

    #[test]
    fn unknown_lookups_suggest_neighbors() {
        let mut reg = ComponentRegistry::new();
        reg.register_l1_prefetcher("ipcp", "tlp-prefetch", noop_l1pf())
            .expect("register");
        let err = reg
            .resolve_l1_prefetcher(&ComponentRef::new("ipc"))
            .unwrap_err();
        match err {
            PluginError::UnknownComponent { did_you_mean, .. } => {
                assert_eq!(did_you_mean.first().map(String::as_str), Some("ipcp"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn none_components_exist_on_every_seam_and_reject_params() {
        let reg = ComponentRegistry::new();
        for seam in Seam::ALL {
            assert!(reg.contains(seam, "none"), "{seam} missing 'none'");
        }
        let mut ctx = BuildCtx::new();
        let err = reg
            .build_l1_prefetcher(&ComponentRef::new("none").param("x", 1), &mut ctx)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, PluginError::InvalidParam { .. }));
    }

    #[test]
    fn build_ctx_shares_and_seeds() {
        let mut ctx = BuildCtx::new();
        let a: Arc<u32> = ctx.shared("slot", || Arc::new(7));
        let b: Arc<u32> = ctx.shared("slot", || Arc::new(99));
        assert!(Arc::ptr_eq(&a, &b), "second access must reuse the first");
        let mut seeded = BuildCtx::new();
        seeded.seed("slot", Arc::new(42u32));
        let c: Arc<u32> = seeded.shared("slot", || Arc::new(0));
        assert_eq!(*c, 42);
    }

    #[test]
    fn scheme_registration_and_lookup() {
        let mut reg = ComponentRegistry::new();
        reg.register_scheme(SchemeSpec::new("Baseline"), "tlp-harness")
            .expect("register");
        assert!(reg
            .register_custom_scheme(SchemeSpec::new("Baseline"))
            .is_err());
        assert!(reg.scheme("Baseline").is_ok());
        let err = reg.scheme("Basline").unwrap_err();
        match err {
            PluginError::UnknownScheme { did_you_mean, .. } => {
                assert_eq!(did_you_mean.first().map(String::as_str), Some("Baseline"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn resolve_binds_all_filled_seams() {
        let reg = ComponentRegistry::new();
        let spec = SchemeSpec::new("empty-ish")
            .offchip("none")
            .l2_filter("none");
        let resolved = reg.resolve(&spec).expect("resolve");
        assert_eq!(resolved.cache_key, spec.cache_key());
        let trace: Box<dyn TraceSource> = Box::new(tlp_trace::VecTrace::looping(
            "t",
            vec![tlp_trace::TraceRecord::alu(0, None, [None, None])],
        ));
        let setup = resolved
            .build_setup(trace, None, &mut BuildCtx::new())
            .expect("build");
        assert_eq!(setup.offchip.name(), "none");
    }
}
