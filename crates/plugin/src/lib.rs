//! `tlp-plugin`: the registry-driven scheme/prefetcher composition API.
//!
//! The paper's whole evaluation is a matrix of *compositions* — off-chip
//! predictors (Hermes, FLP, LP, Athena-RL) × prefetchers (IPCP, Berti,
//! SPP) × filters (SLP, PPF). This crate turns scenario definition into
//! **data** instead of harness surgery:
//!
//! * [`ComponentRegistry`] — a string-keyed factory registry for all five
//!   hook seams of [`tlp_sim::hooks`]: [`Seam::OffChip`],
//!   [`Seam::L1Prefetcher`], [`Seam::L1Filter`], [`Seam::L2Prefetcher`]
//!   and [`Seam::L2Filter`]. Built-in components are registered by their
//!   home crates (`tlp_core::register_builtin`,
//!   `tlp_prefetch::register_builtin`, ...); user components register
//!   through the `register_custom_*` methods and live in the
//!   collision-checked `custom:` namespace, so a custom component can
//!   never alias a built-in cache key.
//! * [`SchemeSpec`] — a declarative builder naming one component (plus a
//!   free-form [`Params`] map) per seam:
//!   `SchemeSpec::new("TLP").offchip("flp").l1_filter("slp")`.
//! * [`ResolvedScheme`] — a spec bound to its factories, ready to
//!   assemble a [`tlp_sim::engine::CoreSetup`] around a trace. Factories
//!   of one build share state through a [`BuildCtx`] (the Athena-RL
//!   scheme couples its off-chip and filter faces to one agent this way).
//!
//! Cache-key discipline: [`SchemeSpec::cache_key`] feeds the harness's
//! `RunKey` derivation. Built-in schemes pin their pre-registry key with
//! [`SchemeSpec::pinned_key`], so every historical on-disk cache entry
//! and golden fixture stays byte-for-byte valid; derived keys (the
//! default for user specs) start with `spec:` and custom component names
//! with `custom:`, two namespaces no built-in key ever occupies.

pub mod error;
pub mod params;
pub mod registry;
pub mod spec;

pub use error::{edit_distance, suggest, PluginError};
pub use params::Params;
pub use registry::{
    BuildCtx, ComponentInfo, ComponentRegistry, L1FilterFactory, L1PrefetcherFactory,
    L2FilterFactory, L2PrefetcherFactory, OffChipFactory, SchemeInfo, Seam, CUSTOM_PREFIX,
};
pub use spec::{ComponentRef, ResolvedComponent, ResolvedScheme, SchemeSpec};
