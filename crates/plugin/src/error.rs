//! Error type and the shared did-you-mean machinery.

use crate::registry::Seam;

/// Everything that can go wrong registering, resolving or building
/// components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PluginError {
    /// A component name was registered twice on one seam.
    DuplicateComponent {
        /// The seam carrying the collision.
        seam: Seam,
        /// The colliding (namespaced) name.
        name: String,
    },
    /// A lookup named a component the registry does not hold.
    UnknownComponent {
        /// The seam that was searched.
        seam: Seam,
        /// The unknown name.
        name: String,
        /// Closest registered names, best first (may be empty).
        did_you_mean: Vec<String>,
    },
    /// A scheme name was registered twice.
    DuplicateScheme {
        /// The colliding scheme name.
        name: String,
    },
    /// A lookup named a scheme the registry does not hold.
    UnknownScheme {
        /// The unknown name.
        name: String,
        /// Closest registered names, best first (may be empty).
        did_you_mean: Vec<String>,
    },
    /// A name failed validation at registration time.
    InvalidName {
        /// The rejected name.
        name: String,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// A spec's pinned cache key was rejected (pinned keys exist only to
    /// preserve the built-in schemes' historical addresses).
    PinnedKeyRejected {
        /// The offending pinned key.
        key: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A factory rejected one of its parameters.
    InvalidParam {
        /// The component whose factory complained.
        component: String,
        /// The offending parameter key.
        param: String,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for PluginError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PluginError::DuplicateComponent { seam, name } => {
                write!(f, "{seam} '{name}' is already registered")
            }
            PluginError::UnknownComponent {
                seam,
                name,
                did_you_mean,
            } => {
                write!(f, "unknown {seam}: {name}")?;
                if !did_you_mean.is_empty() {
                    write!(f, " (did you mean: {}?)", did_you_mean.join(", "))?;
                }
                Ok(())
            }
            PluginError::DuplicateScheme { name } => {
                write!(f, "scheme '{name}' is already registered")
            }
            PluginError::UnknownScheme { name, did_you_mean } => {
                write!(f, "unknown scheme: {name}")?;
                if !did_you_mean.is_empty() {
                    write!(f, " (did you mean: {}?)", did_you_mean.join(", "))?;
                }
                Ok(())
            }
            PluginError::InvalidName { name, reason } => {
                write!(f, "invalid component name '{name}': {reason}")
            }
            PluginError::PinnedKeyRejected { key, reason } => {
                write!(f, "pinned cache key '{key}' rejected: {reason}")
            }
            PluginError::InvalidParam {
                component,
                param,
                message,
            } => {
                write!(f, "{component}: parameter '{param}': {message}")
            }
        }
    }
}

impl std::error::Error for PluginError {}

/// Levenshtein edit distance (small inputs; O(len²) is fine). Shared by
/// the registry's did-you-mean suggestions and the CLI's experiment-name
/// validation.
#[must_use]
pub fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The closest candidates to `unknown`, best first: at most three names
/// within edit distance 3 (the "did you mean" list).
#[must_use]
pub fn suggest<'a, I>(unknown: &str, candidates: I) -> Vec<String>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut scored: Vec<(usize, &str)> = candidates
        .into_iter()
        .map(|n| (edit_distance(unknown, n), n))
        .collect();
    scored.sort();
    scored
        .into_iter()
        .take_while(|&(d, _)| d <= 3)
        .take(3)
        .map(|(_, n)| n.to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("ipcp", "ipc"), 1);
        assert_eq!(edit_distance("berti", "bert"), 1);
    }

    #[test]
    fn suggest_ranks_and_caps() {
        let cands = ["ipcp", "berti", "stride", "next-line"];
        let s = suggest("ipc", cands);
        assert_eq!(s.first().map(String::as_str), Some("ipcp"));
        assert!(suggest("zzzzzzzz", cands).is_empty());
    }

    #[test]
    fn errors_render_suggestions() {
        let e = PluginError::UnknownComponent {
            seam: Seam::L1Prefetcher,
            name: "ipc".into(),
            did_you_mean: vec!["ipcp".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("unknown L1D prefetcher: ipc"), "{msg}");
        assert!(msg.contains("did you mean: ipcp?"), "{msg}");
    }
}
