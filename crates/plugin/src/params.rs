//! Free-form, canonically ordered parameter maps for component factories.

use std::collections::BTreeMap;

use crate::error::PluginError;

/// A string→string parameter map with a canonical rendering.
///
/// Parameters feed two places: the component **factory** (which parses
/// them into its config) and the **cache key** (via
/// [`Params::canonical`]), so two references with different parameters
/// can never share a result-cache entry. Keys are kept sorted; insertion
/// order never leaks into the canonical form.
///
/// Keys and values may not contain `{`, `}`, `,`, `=` or `|` — they are
/// the canonical form's structural characters (`|` additionally
/// separates cell-description fields in the harness), so smuggling one
/// in could make two distinct parameter maps render the same cache key.
/// [`Params::set`] enforces this with a panic: parameters are composed
/// by code, not parsed from untrusted input, so a structural character
/// is a composition bug.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Params {
    map: BTreeMap<String, String>,
}

/// Characters with structural meaning in canonical cache keys.
const STRUCTURAL: [char; 5] = ['{', '}', ',', '=', '|'];

impl Params {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insert.
    #[must_use]
    pub fn with(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.set(key, value);
        self
    }

    /// Inserts (or overwrites) one parameter.
    ///
    /// # Panics
    ///
    /// Panics when the key or value contains a cache-key structural
    /// character (`{`, `}`, `,`, `=`, `|`) — two maps differing only by
    /// a smuggled separator could otherwise canonicalize identically
    /// and share a result-cache entry.
    pub fn set(&mut self, key: impl Into<String>, value: impl ToString) {
        let (key, value) = (key.into(), value.to_string());
        for (what, s) in [("key", &key), ("value", &value)] {
            assert!(
                !s.contains(STRUCTURAL),
                "parameter {what} '{s}' contains a cache-key structural character \
                 (one of {STRUCTURAL:?})"
            );
        }
        self.map.insert(key, value);
    }

    /// Looks one parameter up.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    /// Parses one parameter into `T`, reporting a factory-grade error on
    /// failure. Absent keys return `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Returns [`PluginError::InvalidParam`] when the value does not parse.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        component: &str,
        key: &str,
    ) -> Result<Option<T>, PluginError>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|e| PluginError::InvalidParam {
                    component: component.to_owned(),
                    param: key.to_owned(),
                    message: format!("cannot parse '{raw}': {e}"),
                }),
        }
    }

    /// Rejects any key outside `allowed` — factories call this first so a
    /// typo'd knob fails loudly instead of silently running the default.
    ///
    /// # Errors
    ///
    /// Returns [`PluginError::InvalidParam`] naming the first unknown key.
    pub fn allow_keys(&self, component: &str, allowed: &[&str]) -> Result<(), PluginError> {
        for key in self.map.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(PluginError::InvalidParam {
                    component: component.to_owned(),
                    param: key.clone(),
                    message: format!("unknown parameter (accepted: {})", allowed.join(", ")),
                });
            }
        }
        Ok(())
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of parameters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Iterates `(key, value)` pairs in canonical (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// The canonical rendering: `{k1=v1,k2=v2}` in sorted key order, or
    /// the empty string for an empty map (so a parameterless reference
    /// renders as its bare component name).
    #[must_use]
    pub fn canonical(&self) -> String {
        if self.map.is_empty() {
            return String::new();
        }
        let inner: Vec<String> = self.map.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{{{}}}", inner.join(","))
    }
}

impl<K: Into<String>, V: ToString> FromIterator<(K, V)> for Params {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut p = Params::new();
        for (k, v) in iter {
            p.set(k, v);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_is_sorted_and_insertion_order_free() {
        let a = Params::new().with("zeta", 1).with("alpha", 2);
        let b = Params::new().with("alpha", 2).with("zeta", 1);
        assert_eq!(a.canonical(), "{alpha=2,zeta=1}");
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(Params::new().canonical(), "");
    }

    #[test]
    fn get_parsed_reports_component_and_param() {
        let p = Params::new().with("scale", "four");
        let err = p.get_parsed::<u32>("ipcp", "scale").unwrap_err();
        assert!(matches!(
            err,
            PluginError::InvalidParam { ref component, ref param, .. }
                if component == "ipcp" && param == "scale"
        ));
        assert_eq!(
            Params::new()
                .with("scale", 4)
                .get_parsed::<u32>("ipcp", "scale")
                .unwrap(),
            Some(4)
        );
        assert_eq!(Params::new().get_parsed::<u32>("x", "y").unwrap(), None);
    }

    #[test]
    #[should_panic(expected = "structural character")]
    fn structural_characters_in_values_panic() {
        let _ = Params::new().with("a", "1,b=2");
    }

    #[test]
    fn allow_keys_rejects_typos() {
        let p = Params::new().with("scal", 4);
        let err = p.allow_keys("ipcp", &["scale"]).unwrap_err();
        assert!(err.to_string().contains("unknown parameter"), "{err}");
        assert!(Params::new()
            .with("scale", 4)
            .allow_keys("ipcp", &["scale"])
            .is_ok());
    }
}
