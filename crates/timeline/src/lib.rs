//! Simulated-time telemetry for the TLP engine.
//!
//! Two instruments, both driven purely by *simulated* cycles so their output
//! is bit-identical across engine modes, thread counts, and cache
//! temperature:
//!
//! * **Windowed time-series** — every `window_cycles` simulated cycles the
//!   engine snapshots its monotone counters and the [`Recorder`] stores the
//!   per-window delta as a [`WindowSample`]. The hot loop only bumps counters
//!   it already maintains; the recorder touches them at window boundaries.
//! * **Sampled request journeys** — every `journey_every`-th demand load per
//!   core (deterministic modulus on the per-core load ordinal, never an RNG)
//!   carries a [`JourneyRecord`] collecting per-stage simulated-cycle
//!   timestamps from dispatch to fill delivery.
//!
//! Everything is preallocated at `Recorder::new` / `restart` time and every
//! hot-path push is capacity-guarded, preserving the engine's zero-steady-
//! state-allocation invariant (`tests/zero_alloc.rs`).

/// Sentinel journey id meaning "this request is not sampled".
pub const JOURNEY_NONE: u32 = u32::MAX;

/// Journey ids pack a slot index in the low 8 bits and a wrapping
/// generation in the upper 24. Slots are capped below 255 so no live id
/// can ever collide with [`JOURNEY_NONE`].
const SLOT_BITS: u32 = 8;
const SLOT_MASK: u32 = (1 << SLOT_BITS) - 1;
const GEN_MASK: u32 = (1 << 24) - 1;
const MAX_SLOTS: usize = 128;

/// Configuration for a timeline capture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimelineConfig {
    /// Simulated cycles per window sample.
    pub window_cycles: u64,
    /// Sample every K-th demand load per core (0 disables journeys).
    pub journey_every: u64,
    /// Hard cap on stored window samples; overflow is counted, not stored.
    pub max_windows: usize,
    /// Hard cap on stored journey records; overflow is counted, not stored.
    pub max_journeys: usize,
    /// In-flight journey slots (clamped to 128 so ids stay 8-bit).
    pub journey_slots: usize,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            window_cycles: 10_000,
            journey_every: 64,
            max_windows: 4096,
            max_journeys: 4096,
            journey_slots: 64,
        }
    }
}

/// Monotone counter snapshot taken from the engine. Windows store the
/// delta between two snapshots; the fields mirror what the simulator
/// already tracks, so snapshotting is a pure read.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    pub instructions: u64,
    pub l1d_misses: u64,
    pub l2_misses: u64,
    pub llc_misses: u64,
    pub pf_issued: u64,
    pub pf_useful: u64,
    pub pf_useless: u64,
    pub pf_filtered: u64,
    pub offchip_issued: u64,
    pub offchip_accurate: u64,
    pub offchip_missed: u64,
    pub offchip_predicted_onchip: u64,
    pub offchip_correct_onchip: u64,
    pub dram_reads: u64,
    pub dram_writes: u64,
    pub dram_row_hits: u64,
    pub dram_row_conflicts: u64,
}

impl Counters {
    /// Per-window delta (`self` is the later snapshot). Saturating so a
    /// mid-run stats reset can never underflow.
    pub fn delta(&self, prev: &Counters) -> Counters {
        Counters {
            instructions: self.instructions.saturating_sub(prev.instructions),
            l1d_misses: self.l1d_misses.saturating_sub(prev.l1d_misses),
            l2_misses: self.l2_misses.saturating_sub(prev.l2_misses),
            llc_misses: self.llc_misses.saturating_sub(prev.llc_misses),
            pf_issued: self.pf_issued.saturating_sub(prev.pf_issued),
            pf_useful: self.pf_useful.saturating_sub(prev.pf_useful),
            pf_useless: self.pf_useless.saturating_sub(prev.pf_useless),
            pf_filtered: self.pf_filtered.saturating_sub(prev.pf_filtered),
            offchip_issued: self.offchip_issued.saturating_sub(prev.offchip_issued),
            offchip_accurate: self.offchip_accurate.saturating_sub(prev.offchip_accurate),
            offchip_missed: self.offchip_missed.saturating_sub(prev.offchip_missed),
            offchip_predicted_onchip: self
                .offchip_predicted_onchip
                .saturating_sub(prev.offchip_predicted_onchip),
            offchip_correct_onchip: self
                .offchip_correct_onchip
                .saturating_sub(prev.offchip_correct_onchip),
            dram_reads: self.dram_reads.saturating_sub(prev.dram_reads),
            dram_writes: self.dram_writes.saturating_sub(prev.dram_writes),
            dram_row_hits: self.dram_row_hits.saturating_sub(prev.dram_row_hits),
            dram_row_conflicts: self
                .dram_row_conflicts
                .saturating_sub(prev.dram_row_conflicts),
        }
    }
}

/// `num * 1000 / den`, 0 when the denominator is 0. All derived rates in
/// the timeline are integer milli-units so the artifact never contains a
/// float (the serial codec is integer-only, and floats would threaten
/// bit-identity).
pub fn ratio_milli(num: u64, den: u64) -> u64 {
    num.saturating_mul(1000).checked_div(den).unwrap_or(0)
}

/// One window of the time-series: counter deltas over
/// `[start_cycle, end_cycle)` plus end-of-window occupancy gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowSample {
    pub start_cycle: u64,
    pub end_cycle: u64,
    pub counters: Counters,
    pub rob_occupancy: u64,
    pub mshr_occupancy: u64,
}

impl WindowSample {
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }
    /// Instructions per cycle, in thousandths.
    pub fn ipc_milli(&self) -> u64 {
        ratio_milli(self.counters.instructions, self.cycles())
    }
    /// Misses per kilo-instruction, in thousandths (misses * 1e6 / insts).
    fn mpki_milli(misses: u64, insts: u64) -> u64 {
        misses
            .saturating_mul(1_000_000)
            .checked_div(insts)
            .unwrap_or(0)
    }
    pub fn l1d_mpki_milli(&self) -> u64 {
        Self::mpki_milli(self.counters.l1d_misses, self.counters.instructions)
    }
    pub fn l2_mpki_milli(&self) -> u64 {
        Self::mpki_milli(self.counters.l2_misses, self.counters.instructions)
    }
    pub fn llc_mpki_milli(&self) -> u64 {
        Self::mpki_milli(self.counters.llc_misses, self.counters.instructions)
    }
    /// Prefetch accuracy: useful / issued.
    pub fn pf_accuracy_milli(&self) -> u64 {
        ratio_milli(self.counters.pf_useful, self.counters.pf_issued)
    }
    /// Prefetch coverage proxy: useful / (useful + L1D demand misses).
    pub fn pf_coverage_milli(&self) -> u64 {
        ratio_milli(
            self.counters.pf_useful,
            self.counters.pf_useful + self.counters.l1d_misses,
        )
    }
    /// Off-chip predictor precision: accurate issues / issues.
    pub fn offchip_precision_milli(&self) -> u64 {
        ratio_milli(self.counters.offchip_accurate, self.counters.offchip_issued)
    }
    /// Off-chip predictor recall: accurate / (accurate + missed off-chip).
    pub fn offchip_recall_milli(&self) -> u64 {
        ratio_milli(
            self.counters.offchip_accurate,
            self.counters.offchip_accurate + self.counters.offchip_missed,
        )
    }
    /// Filter drop rate: filtered / (filtered + issued).
    pub fn filter_drop_milli(&self) -> u64 {
        ratio_milli(
            self.counters.pf_filtered,
            self.counters.pf_filtered + self.counters.pf_issued,
        )
    }
    /// DRAM read bandwidth: lines read per kilo-cycle.
    pub fn dram_read_bw_milli(&self) -> u64 {
        ratio_milli(self.counters.dram_reads, self.cycles())
    }
    /// DRAM row-buffer hit rate over reads+writes that touched a row.
    pub fn dram_row_hit_milli(&self) -> u64 {
        ratio_milli(
            self.counters.dram_row_hits,
            self.counters.dram_row_hits + self.counters.dram_row_conflicts,
        )
    }
}

/// Journey stages stamped between dispatch and completion. `Dispatch` and
/// the fill are implicit (`begin_load` / `finish`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Request reached the L1D lookup (hit or miss decided here).
    L1Lookup,
    /// Miss forwarded to / resolved in the L2.
    L2Lookup,
    /// Miss entered the DRAM read queue.
    DramQueue,
    /// DRAM bank began servicing the transaction.
    BankService,
}

/// Flight record for one sampled demand load. Stage timestamps are
/// absolute simulated cycles; 0 means "stage never reached" (a load that
/// hits in the L1 never sees the L2, a merged MSHR waiter never owns a
/// DRAM transaction). `served_level` is the `Level::index()` of the level
/// that satisfied the load, or [`JourneyRecord::SERVED_NONE`] for a
/// journey still in flight when the run ended.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JourneyRecord {
    pub core: u64,
    /// Per-core demand-load ordinal at sampling time (0, K, 2K, ...).
    pub ordinal: u64,
    pub pc: u64,
    pub vaddr: u64,
    pub dispatch: u64,
    pub l1_at: u64,
    pub l2_at: u64,
    pub dram_queue_at: u64,
    pub bank_at: u64,
    pub fill_at: u64,
    /// Off-chip prediction seen at dispatch: 0 NoIssue, 1 IssueOnL1dMiss,
    /// 2 IssueNow.
    pub offchip_decision: u64,
    pub offchip_valid: u64,
    /// 1 if a prefetch filter stamped a verdict on this request.
    pub filter_seen: u64,
    pub served_level: u64,
}

impl JourneyRecord {
    pub const SERVED_NONE: u64 = 4;
}

#[derive(Clone, Copy, Default)]
struct Slot {
    gen: u32,
    active: bool,
    /// Global begin ordinal, used to flush still-active journeys in a
    /// deterministic order at end of run.
    order: u64,
    rec: JourneyRecord,
}

/// Completed timeline artifact for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Timeline {
    pub window_cycles: u64,
    pub journey_every: u64,
    pub start_cycle: u64,
    pub end_cycle: u64,
    pub windows: Vec<WindowSample>,
    pub journeys: Vec<JourneyRecord>,
    pub windows_dropped: u64,
    pub journeys_dropped: u64,
}

impl Timeline {
    /// Render the window table as CSV (raw deltas plus derived milli-rates).
    pub fn windows_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(128 + self.windows.len() * 160);
        out.push_str(
            "start_cycle,end_cycle,instructions,l1d_misses,l2_misses,llc_misses,\
             pf_issued,pf_useful,pf_useless,pf_filtered,offchip_issued,\
             offchip_accurate,offchip_missed,dram_reads,dram_writes,\
             dram_row_hits,dram_row_conflicts,rob_occupancy,mshr_occupancy,\
             ipc_milli,l1d_mpki_milli,l2_mpki_milli,llc_mpki_milli,\
             pf_accuracy_milli,pf_coverage_milli,offchip_precision_milli,\
             offchip_recall_milli,filter_drop_milli,dram_read_bw_milli,\
             dram_row_hit_milli\n",
        );
        for w in &self.windows {
            let c = &w.counters;
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                w.start_cycle,
                w.end_cycle,
                c.instructions,
                c.l1d_misses,
                c.l2_misses,
                c.llc_misses,
                c.pf_issued,
                c.pf_useful,
                c.pf_useless,
                c.pf_filtered,
                c.offchip_issued,
                c.offchip_accurate,
                c.offchip_missed,
                c.dram_reads,
                c.dram_writes,
                c.dram_row_hits,
                c.dram_row_conflicts,
                w.rob_occupancy,
                w.mshr_occupancy,
                w.ipc_milli(),
                w.l1d_mpki_milli(),
                w.l2_mpki_milli(),
                w.llc_mpki_milli(),
                w.pf_accuracy_milli(),
                w.pf_coverage_milli(),
                w.offchip_precision_milli(),
                w.offchip_recall_milli(),
                w.filter_drop_milli(),
                w.dram_read_bw_milli(),
                w.dram_row_hit_milli(),
            );
        }
        out
    }
}

/// Live recorder owned by the engine while a timeline capture is armed.
pub struct Recorder {
    cfg: TimelineConfig,
    start: u64,
    last_sampled: u64,
    prev: Counters,
    windows: Vec<WindowSample>,
    windows_dropped: u64,
    slots: Vec<Slot>,
    free: Vec<u32>,
    journeys: Vec<JourneyRecord>,
    journeys_dropped: u64,
    loads_seen: Vec<u64>,
    begun: u64,
}

impl Recorder {
    pub fn new(mut cfg: TimelineConfig, cores: usize) -> Recorder {
        if cfg.window_cycles == 0 {
            cfg.window_cycles = TimelineConfig::default().window_cycles;
        }
        cfg.journey_slots = cfg.journey_slots.clamp(1, MAX_SLOTS);
        let slots = cfg.journey_slots;
        Recorder {
            cfg,
            start: 0,
            last_sampled: 0,
            prev: Counters::default(),
            windows: Vec::with_capacity(cfg.max_windows),
            windows_dropped: 0,
            slots: vec![Slot::default(); slots],
            // Pop order is highest-index-first; refilled in `restart`.
            free: (0..slots as u32).rev().collect(),
            journeys: Vec::with_capacity(cfg.max_journeys),
            journeys_dropped: 0,
            loads_seen: vec![0; cores.max(1)],
            begun: 0,
        }
    }

    pub fn config(&self) -> &TimelineConfig {
        &self.cfg
    }

    /// Re-arm at the start of the measured region. `snap` is the counter
    /// snapshot at `start`; everything recorded so far (warmup) is
    /// discarded.
    pub fn restart(&mut self, start: u64, snap: Counters) {
        self.start = start;
        self.last_sampled = start;
        self.prev = snap;
        self.windows.clear();
        self.windows_dropped = 0;
        self.journeys.clear();
        self.journeys_dropped = 0;
        self.begun = 0;
        for s in &mut self.slots {
            // Bump the generation so ids handed out before the restart
            // (warmup in-flight loads) can no longer stamp into slots.
            s.gen = (s.gen + 1) & GEN_MASK;
            s.active = false;
        }
        self.free.clear();
        for i in (0..self.slots.len() as u32).rev() {
            self.free.push(i);
        }
        for n in &mut self.loads_seen {
            *n = 0;
        }
    }

    /// True if at least one window boundary lies strictly before `now`
    /// and has not been sampled yet. Used by the event engine to catch up
    /// on boundaries skipped over during idle cycles.
    #[inline]
    pub fn window_due_before(&self, now: u64) -> bool {
        self.last_sampled + self.cfg.window_cycles < now
    }

    /// True if `now` is exactly the next window boundary.
    #[inline]
    pub fn window_due_at(&self, now: u64) -> bool {
        self.last_sampled + self.cfg.window_cycles == now
    }

    fn emit(&mut self, end: u64, snap: Counters, rob: u64, mshr: u64) {
        let sample = WindowSample {
            start_cycle: self.last_sampled,
            end_cycle: end,
            counters: snap.delta(&self.prev),
            rob_occupancy: rob,
            mshr_occupancy: mshr,
        };
        if self.windows.len() < self.cfg.max_windows {
            self.windows.push(sample);
        } else {
            self.windows_dropped += 1;
        }
        self.prev = snap;
        self.last_sampled = end;
    }

    /// Sample every boundary strictly before `now`. Correct to call with
    /// the *current* counters even though the boundaries are in the past:
    /// the engine only skips cycles it has proven idle, so the counters
    /// at those boundaries equal the counters now. The first boundary
    /// gets the real delta; later ones are zero windows — exactly what
    /// the cycle engine produces for idle windows.
    pub fn sample_skipped(&mut self, now: u64, snap: Counters, rob: u64, mshr: u64) {
        while self.last_sampled + self.cfg.window_cycles < now {
            let end = self.last_sampled + self.cfg.window_cycles;
            self.emit(end, snap, rob, mshr);
        }
    }

    /// Sample the boundary landing exactly on `now`, if any.
    pub fn sample_at(&mut self, now: u64, snap: Counters, rob: u64, mshr: u64) {
        if self.window_due_at(now) {
            self.emit(now, snap, rob, mshr);
        }
    }

    /// Account one demand load on `core`; returns a journey id if this is
    /// a sampled (every K-th) load, else [`JOURNEY_NONE`].
    #[allow(clippy::too_many_arguments)]
    pub fn begin_load(
        &mut self,
        core: usize,
        pc: u64,
        vaddr: u64,
        now: u64,
        offchip_decision: u64,
        offchip_valid: bool,
    ) -> u32 {
        if self.cfg.journey_every == 0 {
            return JOURNEY_NONE;
        }
        let Some(seen) = self.loads_seen.get_mut(core) else {
            return JOURNEY_NONE;
        };
        let ordinal = *seen;
        *seen += 1;
        if ordinal % self.cfg.journey_every != 0 {
            return JOURNEY_NONE;
        }
        let Some(slot) = self.free.pop() else {
            self.journeys_dropped += 1;
            return JOURNEY_NONE;
        };
        let s = &mut self.slots[slot as usize];
        s.gen = (s.gen + 1) & GEN_MASK;
        s.active = true;
        s.order = self.begun;
        self.begun += 1;
        s.rec = JourneyRecord {
            core: core as u64,
            ordinal,
            pc,
            vaddr,
            dispatch: now,
            offchip_decision,
            offchip_valid: offchip_valid as u64,
            served_level: JourneyRecord::SERVED_NONE,
            ..JourneyRecord::default()
        };
        slot | (s.gen << SLOT_BITS)
    }

    fn slot_for(&mut self, id: u32) -> Option<&mut Slot> {
        if id == JOURNEY_NONE {
            return None;
        }
        let slot = (id & SLOT_MASK) as usize;
        let gen = id >> SLOT_BITS;
        let s = self.slots.get_mut(slot)?;
        if s.active && s.gen == gen {
            Some(s)
        } else {
            None
        }
    }

    /// Record `stage` reached at cycle `at`. First stamp wins; stale ids
    /// (freed or recycled slots) are ignored.
    pub fn stamp(&mut self, id: u32, stage: Stage, at: u64) {
        let Some(s) = self.slot_for(id) else { return };
        let field = match stage {
            Stage::L1Lookup => &mut s.rec.l1_at,
            Stage::L2Lookup => &mut s.rec.l2_at,
            Stage::DramQueue => &mut s.rec.dram_queue_at,
            Stage::BankService => &mut s.rec.bank_at,
        };
        if *field == 0 {
            *field = at;
        }
    }

    /// Mark a sampled request as having seen a prefetch-filter verdict.
    pub fn stamp_filter(&mut self, id: u32) {
        if let Some(s) = self.slot_for(id) {
            s.rec.filter_seen = 1;
        }
    }

    /// Complete a journey: the load's data was delivered at `at` from
    /// `served_level` (a `Level::index()`).
    pub fn finish(&mut self, id: u32, at: u64, served_level: u64) {
        let slot = (id & SLOT_MASK) as usize;
        let Some(s) = self.slot_for(id) else { return };
        s.rec.fill_at = at;
        s.rec.served_level = served_level;
        s.active = false;
        let rec = s.rec;
        if self.journeys.len() < self.cfg.max_journeys {
            self.journeys.push(rec);
        } else {
            self.journeys_dropped += 1;
        }
        // `free` was allocated with capacity for every slot.
        self.free.push(slot as u32);
    }

    /// Finish the capture at `now`: emit the trailing partial window,
    /// flush still-in-flight journeys (in begin order), and return the
    /// artifact. The recorder is left reusable via `restart`.
    pub fn finish_run(&mut self, now: u64, snap: Counters, rob: u64, mshr: u64) -> Timeline {
        self.sample_skipped(now, snap, rob, mshr);
        if now > self.last_sampled {
            self.emit(now, snap, rob, mshr);
        }
        let mut active: Vec<(u64, JourneyRecord)> = self
            .slots
            .iter_mut()
            .filter(|s| s.active)
            .map(|s| {
                s.active = false;
                (s.order, s.rec)
            })
            .collect();
        active.sort_by_key(|(order, _)| *order);
        for (_, rec) in active {
            if self.journeys.len() < self.cfg.max_journeys {
                self.journeys.push(rec);
            } else {
                self.journeys_dropped += 1;
            }
        }
        self.free.clear();
        for i in (0..self.slots.len() as u32).rev() {
            self.free.push(i);
        }
        Timeline {
            window_cycles: self.cfg.window_cycles,
            journey_every: self.cfg.journey_every,
            start_cycle: self.start,
            end_cycle: now,
            windows: std::mem::take(&mut self.windows),
            journeys: std::mem::take(&mut self.journeys),
            windows_dropped: self.windows_dropped,
            journeys_dropped: self.journeys_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(instructions: u64, misses: u64) -> Counters {
        Counters {
            instructions,
            l1d_misses: misses,
            ..Counters::default()
        }
    }

    #[test]
    fn windows_are_deltas_between_snapshots() {
        let mut r = Recorder::new(
            TimelineConfig {
                window_cycles: 100,
                ..TimelineConfig::default()
            },
            1,
        );
        r.restart(1000, snap(50, 5));
        r.sample_at(1100, snap(90, 7), 10, 2);
        r.sample_at(1200, snap(140, 7), 12, 0);
        let t = r.finish_run(1200, snap(140, 7), 12, 0);
        assert_eq!(t.windows.len(), 2);
        assert_eq!(t.windows[0].start_cycle, 1000);
        assert_eq!(t.windows[0].end_cycle, 1100);
        assert_eq!(t.windows[0].counters.instructions, 40);
        assert_eq!(t.windows[0].counters.l1d_misses, 2);
        assert_eq!(t.windows[1].counters.instructions, 50);
        assert_eq!(t.windows[1].counters.l1d_misses, 0);
        assert_eq!(t.windows[1].rob_occupancy, 12);
        assert_eq!(t.start_cycle, 1000);
        assert_eq!(t.end_cycle, 1200);
    }

    #[test]
    fn skipped_boundaries_become_zero_windows() {
        let mut r = Recorder::new(
            TimelineConfig {
                window_cycles: 100,
                ..TimelineConfig::default()
            },
            1,
        );
        r.restart(0, snap(10, 0));
        // Event engine jumped from cycle 5 to cycle 350: boundaries 100,
        // 200, 300 are all strictly before `now`.
        r.sample_skipped(350, snap(25, 1), 3, 1);
        let t = r.finish_run(350, snap(25, 1), 3, 1);
        assert_eq!(t.windows.len(), 4);
        assert_eq!(t.windows[0].counters.instructions, 15);
        assert_eq!(t.windows[1].counters.instructions, 0);
        assert_eq!(t.windows[2].counters.instructions, 0);
        // Trailing partial window [300, 350).
        assert_eq!(t.windows[3].start_cycle, 300);
        assert_eq!(t.windows[3].end_cycle, 350);
        assert_eq!(t.windows[3].counters.instructions, 0);
    }

    #[test]
    fn every_kth_load_is_sampled_deterministically() {
        let cfg = TimelineConfig {
            journey_every: 4,
            ..TimelineConfig::default()
        };
        let mut r = Recorder::new(cfg, 2);
        r.restart(0, Counters::default());
        let mut sampled = Vec::new();
        for i in 0..10 {
            let id = r.begin_load(0, 0x400000 + i, 0x1000 * i, i, 0, false);
            if id != JOURNEY_NONE {
                sampled.push(i);
                r.finish(id, i + 10, 0);
            }
        }
        assert_eq!(sampled, vec![0, 4, 8]);
        // Core 1 has its own ordinal sequence.
        let id = r.begin_load(1, 0x99, 0x99, 50, 2, true);
        assert_ne!(id, JOURNEY_NONE);
        r.finish(id, 60, 3);
        let t = r.finish_run(100, Counters::default(), 0, 0);
        assert_eq!(t.journeys.len(), 4);
        assert_eq!(t.journeys[3].core, 1);
        assert_eq!(t.journeys[3].ordinal, 0);
        assert_eq!(t.journeys[3].offchip_decision, 2);
        assert_eq!(t.journeys[3].offchip_valid, 1);
        assert_eq!(t.journeys[3].served_level, 3);
    }

    #[test]
    fn stale_ids_never_stamp_recycled_slots() {
        let cfg = TimelineConfig {
            journey_every: 1,
            journey_slots: 1,
            ..TimelineConfig::default()
        };
        let mut r = Recorder::new(cfg, 1);
        r.restart(0, Counters::default());
        let a = r.begin_load(0, 1, 1, 10, 0, false);
        r.finish(a, 20, 0);
        let b = r.begin_load(0, 2, 2, 30, 0, false);
        // A late stamp carrying the dead id must not corrupt journey `b`.
        r.stamp(a, Stage::DramQueue, 999);
        r.finish(b, 40, 1);
        let t = r.finish_run(100, Counters::default(), 0, 0);
        assert_eq!(t.journeys.len(), 2);
        assert_eq!(t.journeys[1].dram_queue_at, 0);
    }

    #[test]
    fn restart_invalidates_warmup_journeys_and_resets_ordinals() {
        let cfg = TimelineConfig {
            journey_every: 2,
            ..TimelineConfig::default()
        };
        let mut r = Recorder::new(cfg, 1);
        r.restart(0, Counters::default());
        let warm = r.begin_load(0, 1, 1, 5, 0, false);
        assert_ne!(warm, JOURNEY_NONE);
        r.restart(1000, Counters::default());
        // The warmup id is dead after restart.
        r.stamp(warm, Stage::L1Lookup, 1001);
        r.finish(warm, 1002, 0);
        // Ordinals start over: the first post-restart load is sampled.
        let id = r.begin_load(0, 2, 2, 1005, 0, false);
        assert_ne!(id, JOURNEY_NONE);
        r.finish(id, 1010, 0);
        let t = r.finish_run(2000, Counters::default(), 0, 0);
        assert_eq!(t.journeys.len(), 1);
        assert_eq!(t.journeys[0].pc, 2);
    }

    #[test]
    fn slot_exhaustion_drops_instead_of_allocating() {
        let cfg = TimelineConfig {
            journey_every: 1,
            journey_slots: 2,
            ..TimelineConfig::default()
        };
        let mut r = Recorder::new(cfg, 1);
        r.restart(0, Counters::default());
        let a = r.begin_load(0, 1, 1, 1, 0, false);
        let b = r.begin_load(0, 2, 2, 2, 0, false);
        let c = r.begin_load(0, 3, 3, 3, 0, false);
        assert_ne!(a, JOURNEY_NONE);
        assert_ne!(b, JOURNEY_NONE);
        assert_eq!(c, JOURNEY_NONE);
        let t = r.finish_run(10, Counters::default(), 0, 0);
        assert_eq!(t.journeys_dropped, 1);
        // In-flight journeys flushed in begin order.
        assert_eq!(t.journeys.len(), 2);
        assert_eq!(t.journeys[0].pc, 1);
        assert_eq!(t.journeys[1].pc, 2);
        assert_eq!(t.journeys[0].served_level, JourneyRecord::SERVED_NONE);
    }

    #[test]
    fn window_overflow_is_counted() {
        let cfg = TimelineConfig {
            window_cycles: 10,
            max_windows: 2,
            ..TimelineConfig::default()
        };
        let mut r = Recorder::new(cfg, 1);
        r.restart(0, Counters::default());
        for now in [10u64, 20, 30, 40] {
            r.sample_at(now, Counters::default(), 0, 0);
        }
        let t = r.finish_run(40, Counters::default(), 0, 0);
        assert_eq!(t.windows.len(), 2);
        assert_eq!(t.windows_dropped, 2);
    }

    #[test]
    fn derived_rates_are_integer_milli_units() {
        let w = WindowSample {
            start_cycle: 0,
            end_cycle: 1000,
            counters: Counters {
                instructions: 2500,
                l1d_misses: 25,
                pf_issued: 10,
                pf_useful: 4,
                pf_filtered: 10,
                offchip_issued: 8,
                offchip_accurate: 6,
                offchip_missed: 2,
                dram_reads: 50,
                dram_row_hits: 30,
                dram_row_conflicts: 10,
                ..Counters::default()
            },
            rob_occupancy: 0,
            mshr_occupancy: 0,
        };
        assert_eq!(w.ipc_milli(), 2500);
        assert_eq!(w.l1d_mpki_milli(), 10_000);
        assert_eq!(w.pf_accuracy_milli(), 400);
        assert_eq!(w.filter_drop_milli(), 500);
        assert_eq!(w.offchip_precision_milli(), 750);
        assert_eq!(w.offchip_recall_milli(), 750);
        assert_eq!(w.dram_read_bw_milli(), 50);
        assert_eq!(w.dram_row_hit_milli(), 750);
        // Zero denominators never panic and never divide.
        let z = WindowSample::default();
        assert_eq!(z.ipc_milli(), 0);
        assert_eq!(z.pf_accuracy_milli(), 0);
        assert_eq!(z.dram_row_hit_milli(), 0);
    }

    #[test]
    fn csv_has_header_and_one_line_per_window() {
        let mut r = Recorder::new(
            TimelineConfig {
                window_cycles: 100,
                ..TimelineConfig::default()
            },
            1,
        );
        r.restart(0, Counters::default());
        r.sample_at(100, snap(100, 1), 5, 1);
        let t = r.finish_run(150, snap(120, 2), 0, 0);
        let csv = t.windows_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("start_cycle,end_cycle,instructions"));
        assert!(lines[1].starts_with("0,100,100,1,"));
        assert!(lines[2].starts_with("100,150,20,1,"));
    }
}
