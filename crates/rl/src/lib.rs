//! `tlp-rl`: an Athena-class online reinforcement-learning coordination
//! subsystem for off-chip prediction and adaptive prefetch filtering.
//!
//! The TLP paper (HPCA 2024) couples two supervised perceptrons — FLP for
//! off-chip prediction, SLP for prefetch filtering — through hand-tuned
//! thresholds (τ_high, τ_low, τ_pref). *Athena* (Bera et al., PAPERS.md)
//! replaces exactly those hand-tuned decision points with one online RL
//! agent that observes both seams and learns its policy from delayed
//! rewards. This crate implements that baseline against the same
//! `tlp-sim` hook traits TLP itself plugs into:
//!
//! * [`AthenaAgent`] — a tabular Q-learning core: state = hashed Table-I
//!   program features (reusing `tlp_core::features`) salted with quantised
//!   system-pressure signals; actions = {no-issue, issue-on-L1D-miss,
//!   issue-now} for demand loads and {keep, drop} for L1D prefetch
//!   candidates; rewards assigned when the outcome (serving level)
//!   resolves, mirroring how TLP trains on the fill level.
//! * [`RlOffChip`] / [`RlPrefetchFilter`] — the two hook faces sharing one
//!   agent (`Arc<Mutex<_>>` via [`shared_agent`]).
//! * [`storage::storage_report`] — Table-II-style storage accounting,
//!   bounded at ≤ 14 KB (2× TLP's budget) by [`storage::BUDGET_KB`].
//!
//! # Example
//!
//! ```
//! use tlp_rl::{shared_agent, RlConfig, RlOffChip, RlPrefetchFilter};
//!
//! let agent = shared_agent(RlConfig::default_config());
//! let offchip = RlOffChip::new(agent.clone());
//! let filter = RlPrefetchFilter::new(agent.clone());
//! // Plug both into one CoreSetup; they learn jointly.
//! let _ = (offchip, filter);
//! let report = tlp_rl::storage::storage_report(agent.lock().config());
//! assert!(report.within_budget());
//! ```

pub mod agent;
pub mod hooks;
pub mod qtable;
pub mod storage;

pub use agent::{AgentStats, AthenaAgent, PressureSignals, RlConfig};
pub use hooks::{shared_agent, RlOffChip, RlPrefetchFilter, SharedAgent};
pub use qtable::{QTable, Q_VALUE_BITS, REWARD_ONE};

/// The [`tlp_plugin::BuildCtx`] slot both Athena faces share their agent
/// under. Pre-seeding this slot (see [`tlp_plugin::BuildCtx::seed`]) with
/// an externally owned [`SharedAgent`] makes the factories wrap *that*
/// agent instead of creating a fresh one — the persistent-agent
/// learning-curve study (ext7) carries its agent across epochs this way.
pub const AGENT_SLOT: &str = "athena-rl:agent";

/// Registers this crate's components with a plugin registry (origin
/// `tlp-rl`):
///
/// * off-chip predictor **`athena-rl`** and L1D prefetch filter
///   **`athena-rl-filter`** — the two faces of one Athena-class
///   Q-learning agent. Within one `CoreSetup` build the two factories
///   share the agent through the [`AGENT_SLOT`] build-context slot, so
///   composing both into a scheme yields *one* agent observing both
///   seams (the point of the Athena design). Neither takes parameters.
///
/// # Errors
///
/// Propagates registration collisions from the registry.
pub fn register_builtin(
    reg: &mut tlp_plugin::ComponentRegistry,
) -> Result<(), tlp_plugin::PluginError> {
    use std::sync::Arc;

    const ORIGIN: &str = "tlp-rl";

    reg.register_offchip(
        "athena-rl",
        ORIGIN,
        Arc::new(|params, ctx| {
            params.allow_keys("athena-rl", &[])?;
            let agent: SharedAgent =
                ctx.shared(AGENT_SLOT, || shared_agent(RlConfig::default_config()));
            Ok(Box::new(RlOffChip::new(agent)))
        }),
    )?;
    reg.register_l1_filter(
        "athena-rl-filter",
        ORIGIN,
        Arc::new(|params, ctx| {
            params.allow_keys("athena-rl-filter", &[])?;
            let agent: SharedAgent =
                ctx.shared(AGENT_SLOT, || shared_agent(RlConfig::default_config()));
            Ok(Box::new(RlPrefetchFilter::new(agent)))
        }),
    )?;
    Ok(())
}
