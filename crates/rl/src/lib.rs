//! `tlp-rl`: an Athena-class online reinforcement-learning coordination
//! subsystem for off-chip prediction and adaptive prefetch filtering.
//!
//! The TLP paper (HPCA 2024) couples two supervised perceptrons — FLP for
//! off-chip prediction, SLP for prefetch filtering — through hand-tuned
//! thresholds (τ_high, τ_low, τ_pref). *Athena* (Bera et al., PAPERS.md)
//! replaces exactly those hand-tuned decision points with one online RL
//! agent that observes both seams and learns its policy from delayed
//! rewards. This crate implements that baseline against the same
//! `tlp-sim` hook traits TLP itself plugs into:
//!
//! * [`AthenaAgent`] — a tabular Q-learning core: state = hashed Table-I
//!   program features (reusing `tlp_core::features`) salted with quantised
//!   system-pressure signals; actions = {no-issue, issue-on-L1D-miss,
//!   issue-now} for demand loads and {keep, drop} for L1D prefetch
//!   candidates; rewards assigned when the outcome (serving level)
//!   resolves, mirroring how TLP trains on the fill level.
//! * [`RlOffChip`] / [`RlPrefetchFilter`] — the two hook faces sharing one
//!   agent (`Arc<Mutex<_>>` via [`shared_agent`]).
//! * [`storage::storage_report`] — Table-II-style storage accounting,
//!   bounded at ≤ 14 KB (2× TLP's budget) by [`storage::BUDGET_KB`].
//!
//! # Example
//!
//! ```
//! use tlp_rl::{shared_agent, RlConfig, RlOffChip, RlPrefetchFilter};
//!
//! let agent = shared_agent(RlConfig::default_config());
//! let offchip = RlOffChip::new(agent.clone());
//! let filter = RlPrefetchFilter::new(agent.clone());
//! // Plug both into one CoreSetup; they learn jointly.
//! let _ = (offchip, filter);
//! let report = tlp_rl::storage::storage_report(agent.lock().config());
//! assert!(report.within_budget());
//! ```

pub mod agent;
pub mod hooks;
pub mod qtable;
pub mod storage;

pub use agent::{AgentStats, AthenaAgent, PressureSignals, RlConfig};
pub use hooks::{shared_agent, RlOffChip, RlPrefetchFilter, SharedAgent};
pub use qtable::{QTable, Q_VALUE_BITS, REWARD_ONE};
