//! Simulator plug-ins: one shared agent behind both of `tlp-sim`'s
//! decision seams.
//!
//! The same [`AthenaAgent`] serves as the off-chip predictor consulted at
//! load dispatch *and* the L1D prefetch filter — that coordination is the
//! point of the Athena design (prefetchers and off-chip predictors fight
//! over the same DRAM bandwidth; one agent sees both sides). The simulator
//! owns one `Box` per seam, so the agent lives behind an
//! `Arc<Mutex<...>>`; contention is nil in practice because each core's
//! hooks run on one simulation thread.
//!
//! Both hooks ride the existing request metadata: the agent's packed
//! `(state, action)` word travels in the `confidence` slot of
//! [`OffChipTag`]/[`FilterTag`] — the same Table-II metadata path TLP's
//! perceptron indices use — and comes back at completion for the delayed
//! reward.

use std::sync::Arc;

use parking_lot::Mutex;

use tlp_perceptron::FeatureIndices;
use tlp_sim::hooks::{
    FilterTag, L1FilterCtx, L1PrefetchFilter, LoadCtx, OffChipPredictor, OffChipTag,
};
use tlp_sim::types::Level;

use crate::agent::{AthenaAgent, RlConfig};

/// The shared handle both hooks (and experiment code) hold.
pub type SharedAgent = Arc<Mutex<AthenaAgent>>;

/// Builds a fresh shared agent.
#[must_use]
pub fn shared_agent(cfg: RlConfig) -> SharedAgent {
    Arc::new(Mutex::new(AthenaAgent::new(cfg)))
}

/// The off-chip-predictor face of the agent (FLP's seam).
#[derive(Debug)]
pub struct RlOffChip {
    agent: SharedAgent,
}

impl RlOffChip {
    /// Wraps a shared agent.
    #[must_use]
    pub fn new(agent: SharedAgent) -> Self {
        Self { agent }
    }
}

impl OffChipPredictor for RlOffChip {
    fn predict_load(&mut self, ctx: &LoadCtx) -> OffChipTag {
        let (decision, meta) = self.agent.lock().decide_load(ctx.pc, ctx.vaddr);
        OffChipTag {
            decision,
            confidence: meta,
            indices: FeatureIndices::empty(),
            valid: true,
        }
    }

    fn train_load(&mut self, _ctx: &LoadCtx, tag: &OffChipTag, served_from: Level) {
        if !tag.valid {
            return;
        }
        self.agent.lock().reward_load(tag.confidence, served_from);
    }

    fn name(&self) -> &'static str {
        "athena-rl"
    }
}

/// The prefetch-filter face of the agent (SLP's seam).
#[derive(Debug)]
pub struct RlPrefetchFilter {
    agent: SharedAgent,
}

impl RlPrefetchFilter {
    /// Wraps a shared agent.
    #[must_use]
    pub fn new(agent: SharedAgent) -> Self {
        Self { agent }
    }
}

impl L1PrefetchFilter for RlPrefetchFilter {
    fn filter(&mut self, ctx: &L1FilterCtx) -> (bool, FilterTag) {
        let (keep, meta) = self.agent.lock().decide_prefetch(
            ctx.trigger_pc,
            ctx.pf_paddr,
            ctx.trigger_tag.predicted_offchip(),
        );
        (
            keep,
            FilterTag {
                confidence: meta,
                indices: FeatureIndices::empty(),
                valid: true,
            },
        )
    }

    fn train(&mut self, _ctx: &L1FilterCtx, tag: &FilterTag, served_from: Level) {
        if !tag.valid {
            return;
        }
        self.agent
            .lock()
            .reward_prefetch(tag.confidence, served_from);
    }

    fn name(&self) -> &'static str {
        "athena-rl-filter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load_ctx(pc: u64, vaddr: u64) -> LoadCtx {
        LoadCtx {
            core: 0,
            pc,
            vaddr,
            cycle: 0,
        }
    }

    #[test]
    fn both_hooks_share_one_agent() {
        let agent = shared_agent(RlConfig::default_config());
        let mut off = RlOffChip::new(Arc::clone(&agent));
        let mut filt = RlPrefetchFilter::new(Arc::clone(&agent));
        let tag = off.predict_load(&load_ctx(0x400, 0x1000));
        assert!(tag.valid);
        off.train_load(&load_ctx(0x400, 0x1000), &tag, Level::Dram);
        let fctx = L1FilterCtx {
            core: 0,
            trigger_pc: 0x400,
            trigger_vaddr: 0x1000,
            pf_vaddr: 0x1040,
            pf_paddr: 0x1040,
            trigger_tag: tag,
            cycle: 0,
        };
        let (_, ftag) = filt.filter(&fctx);
        assert!(ftag.valid);
        let s = agent.lock().stats();
        assert_eq!(s.load_decisions.iter().sum::<u64>(), 1);
        assert_eq!(s.pf_decisions.iter().sum::<u64>(), 1);
        assert_eq!(s.load_updates, 1);
    }

    #[test]
    fn invalid_tags_do_not_train() {
        let agent = shared_agent(RlConfig::default_config());
        let mut off = RlOffChip::new(Arc::clone(&agent));
        off.train_load(&load_ctx(0, 0), &OffChipTag::none(), Level::Dram);
        let mut filt = RlPrefetchFilter::new(Arc::clone(&agent));
        let fctx = L1FilterCtx {
            core: 0,
            trigger_pc: 0,
            trigger_vaddr: 0,
            pf_vaddr: 0,
            pf_paddr: 0,
            trigger_tag: OffChipTag::none(),
            cycle: 0,
        };
        filt.train(&fctx, &FilterTag::default(), Level::Dram);
        let s = agent.lock().stats();
        assert_eq!(s.load_updates, 0);
        assert_eq!(s.pf_updates, 0);
    }

    #[test]
    fn dropped_prefetch_rewards_instantly() {
        let agent = shared_agent(RlConfig {
            eps_start: 0,
            eps_floor: 0,
            ..RlConfig::default_config()
        });
        // Saturate the prefetch-DRAM pressure so dropping becomes
        // attractive, then drive one state into the drop action.
        {
            let mut a = agent.lock();
            for i in 0..600u64 {
                let (keep, meta) = a.decide_prefetch(0x900, 0x50_0000 + (i % 8) * 64, true);
                if keep {
                    a.reward_prefetch(meta, Level::Dram);
                }
            }
        }
        let mut filt = RlPrefetchFilter::new(Arc::clone(&agent));
        let fctx = L1FilterCtx {
            core: 0,
            trigger_pc: 0x900,
            trigger_vaddr: 0x50_0000,
            pf_vaddr: 0x50_0040,
            pf_paddr: 0x50_0040,
            trigger_tag: OffChipTag::from_decision(tlp_sim::hooks::OffChipDecision::IssueOnL1dMiss),
            cycle: 0,
        };
        let before = agent.lock().stats().pf_updates;
        let (keep, _) = filt.filter(&fctx);
        assert!(!keep, "saturated DRAM-bound state must drop");
        assert_eq!(
            agent.lock().stats().pf_updates,
            before + 1,
            "drop must self-train without a completion callback"
        );
    }
}
