//! The tabular Q-learning core: one row of saturating fixed-point action
//! values per hashed state.
//!
//! Athena's agent is hardware-honest in the same way TLP's perceptrons are:
//! a flat SRAM of small Q-values indexed by a hashed state, updated with a
//! shift-only learning rate (α = 1/2ⁿ) so no multiplier is needed. Rewards
//! and Q-values share one fixed-point scale ([`REWARD_ONE`] = 1.0); entries
//! saturate at ±([`Q_VALUE_BITS`]-bit range) like perceptron weights do.

/// Fixed-point scale: a reward/Q-value of `REWARD_ONE` means 1.0.
pub const REWARD_ONE: i32 = 64;

/// Bits per Q-value the hardware budget accounts for. Values are clamped to
/// the signed range of this width.
pub const Q_VALUE_BITS: usize = 12;

const Q_CLAMP: i32 = (1 << (Q_VALUE_BITS - 1)) - 1;

/// A tabular Q-function over `2^state_bits` hashed states.
#[derive(Debug, Clone)]
pub struct QTable {
    q: Vec<i32>,
    actions: usize,
    state_bits: u32,
    alpha_shift: u32,
}

impl QTable {
    /// Builds a zero-initialised table.
    ///
    /// # Panics
    ///
    /// Panics when `actions` is zero or `state_bits` is not in `1..=20`.
    #[must_use]
    pub fn new(state_bits: u32, actions: usize, alpha_shift: u32) -> Self {
        assert!(actions > 0, "at least one action required");
        assert!(
            (1..=20).contains(&state_bits),
            "state_bits must be in 1..=20"
        );
        Self {
            q: vec![0; (1usize << state_bits) * actions],
            actions,
            state_bits,
            alpha_shift,
        }
    }

    /// Number of states.
    #[must_use]
    pub fn states(&self) -> usize {
        1 << self.state_bits
    }

    /// Number of actions.
    #[must_use]
    pub fn actions(&self) -> usize {
        self.actions
    }

    /// State-index width in bits.
    #[must_use]
    pub fn state_bits(&self) -> u32 {
        self.state_bits
    }

    /// The Q-value of `(state, action)`.
    #[must_use]
    pub fn q(&self, state: usize, action: usize) -> i32 {
        self.q[self.slot(state, action)]
    }

    /// The greedy action for `state` and its Q-value. Ties break toward the
    /// lowest action index, so action 0 is the cold-start default — heads
    /// order their safest action first.
    #[must_use]
    pub fn best(&self, state: usize) -> (usize, i32) {
        let base = self.slot(state, 0);
        let row = &self.q[base..base + self.actions];
        let mut best = (0, row[0]);
        for (a, &v) in row.iter().enumerate().skip(1) {
            if v > best.1 {
                best = (a, v);
            }
        }
        best
    }

    /// One delayed-reward update: `Q(s,a) += (r − Q(s,a)) >> α_shift`,
    /// saturating to the accounted [`Q_VALUE_BITS`]-bit range. The
    /// shift-only rule never gets stuck: when the error is nonzero but
    /// smaller than `2^α_shift`, it still moves by ±1.
    pub fn update(&mut self, state: usize, action: usize, reward: i32) {
        let slot = self.slot(state, action);
        let err = reward - self.q[slot];
        let mut step = err >> self.alpha_shift;
        if step == 0 && err != 0 {
            step = err.signum();
        }
        self.q[slot] = (self.q[slot] + step).clamp(-Q_CLAMP, Q_CLAMP);
    }

    /// SRAM footprint in bits ([`Q_VALUE_BITS`] per entry).
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.q.len() * Q_VALUE_BITS
    }

    fn slot(&self, state: usize, action: usize) -> usize {
        debug_assert!(action < self.actions, "action out of range");
        (state & (self.states() - 1)) * self.actions + action
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_table_prefers_action_zero() {
        let t = QTable::new(4, 3, 2);
        for s in 0..t.states() {
            assert_eq!(t.best(s).0, 0);
        }
    }

    #[test]
    fn update_moves_toward_reward() {
        let mut t = QTable::new(4, 2, 2);
        for _ in 0..64 {
            t.update(3, 1, REWARD_ONE);
        }
        assert_eq!(t.best(3), (1, REWARD_ONE));
        // Other states untouched.
        assert_eq!(t.q(4, 1), 0);
    }

    #[test]
    fn small_errors_still_converge() {
        let mut t = QTable::new(2, 1, 4);
        // Error 1 < 2^4: the ±1 floor keeps learning alive.
        t.update(0, 0, 1);
        assert_eq!(t.q(0, 0), 1);
    }

    #[test]
    fn q_values_saturate() {
        let mut t = QTable::new(2, 1, 0);
        for _ in 0..10 {
            t.update(1, 0, i32::MAX / 2);
        }
        assert_eq!(t.q(1, 0), (1 << (Q_VALUE_BITS - 1)) - 1);
        for _ in 0..10 {
            t.update(1, 0, i32::MIN / 2);
        }
        assert_eq!(t.q(1, 0), -((1 << (Q_VALUE_BITS - 1)) - 1));
    }

    #[test]
    fn state_index_wraps_instead_of_panicking() {
        let t = QTable::new(3, 2, 2);
        assert_eq!(t.q(8 + 5, 1), t.q(5, 1));
    }

    #[test]
    fn storage_counts_every_entry() {
        let t = QTable::new(10, 3, 2);
        assert_eq!(t.storage_bits(), 1024 * 3 * Q_VALUE_BITS);
    }
}
