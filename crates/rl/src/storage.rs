//! Storage accounting for the RL subsystem, in the style of Table II
//! (`tlp_core::storage::storage_report`).
//!
//! | component | bits | at the default config |
//! |-----------|------|----------------------|
//! | load-head Q-table | `2^state_bits × 3 ×` [`Q_VALUE_BITS`] | 4.50 KB |
//! | prefetch-head Q-table | `2^state_bits × 2 ×` [`Q_VALUE_BITS`] | 3.00 KB |
//! | page buffers (one per head) | 2 × 64 × 80 | 1.25 KB |
//! | pressure EWMAs | 2 × 9 + bucket logic | ~0 KB |
//! | LQ metadata | 72 × (state + 2) | 0.11 KB |
//! | L1D MSHR metadata | 10 × (state + 2) | 0.01 KB |
//! | **total** | | **≈ 8.87 KB** |
//!
//! The documented budget is [`BUDGET_KB`] = 14 KB (≤ 2× TLP's ≈ 7 KB
//! Table-II footprint); [`StorageReport::within_budget`] enforces it and a
//! unit test pins the default configuration inside it.

use crate::agent::{RlConfig, LOAD_ACTIONS, PF_ACTIONS};
use crate::qtable::Q_VALUE_BITS;

/// The documented budget ceiling: twice TLP's ≈ 7 KB.
pub const BUDGET_KB: f64 = 14.0;

/// Load-queue entries carrying agent metadata (matches TLP's Table II).
pub const LOAD_QUEUE_ENTRIES: usize = 72;

/// L1D MSHR entries carrying agent metadata (matches TLP's Table II).
pub const L1D_MSHR_ENTRIES: usize = 10;

/// Bits of the two pressure EWMAs (9-bit rates in `0..=256`).
pub const PRESSURE_BITS: usize = 2 * 9;

/// The per-component storage budget of the RL subsystem, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageReport {
    /// Load-head Q-table.
    pub load_q_bits: usize,
    /// Prefetch-head Q-table.
    pub pf_q_bits: usize,
    /// The first-access page buffers — one per head, exactly like FLP and
    /// SLP each carry their own (the heads observe different address
    /// spaces: virtual demand addresses vs. physical prefetch targets).
    pub page_buffer_bits: usize,
    /// Pressure EWMAs.
    pub pressure_bits: usize,
    /// Load-queue metadata: packed (state, action) per entry.
    pub lq_metadata_bits: usize,
    /// L1D MSHR metadata.
    pub mshr_metadata_bits: usize,
}

impl StorageReport {
    /// Total bits.
    #[must_use]
    pub fn total_bits(&self) -> usize {
        self.load_q_bits
            + self.pf_q_bits
            + self.page_buffer_bits
            + self.pressure_bits
            + self.lq_metadata_bits
            + self.mshr_metadata_bits
    }

    /// Total in kilobytes.
    #[must_use]
    pub fn total_kb(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }

    /// Q-table subtotal in kilobytes (the dominant term).
    #[must_use]
    pub fn q_tables_kb(&self) -> f64 {
        (self.load_q_bits + self.pf_q_bits) as f64 / 8.0 / 1024.0
    }

    /// True when the total stays within the documented [`BUDGET_KB`].
    #[must_use]
    pub fn within_budget(&self) -> bool {
        self.total_kb() <= BUDGET_KB
    }
}

/// Computes the storage budget for a configuration, Table-II style.
#[must_use]
pub fn storage_report(cfg: &RlConfig) -> StorageReport {
    let states = 1usize << cfg.state_bits;
    // Metadata packs the hashed state plus a 2-bit action.
    let meta_bits = cfg.state_bits as usize + 2;
    StorageReport {
        load_q_bits: states * LOAD_ACTIONS * Q_VALUE_BITS,
        pf_q_bits: states * PF_ACTIONS * Q_VALUE_BITS,
        page_buffer_bits: 2 * tlp_core::features::PageBuffer::storage_bits(),
        pressure_bits: PRESSURE_BITS,
        lq_metadata_bits: LOAD_QUEUE_ENTRIES * meta_bits,
        mshr_metadata_bits: L1D_MSHR_ENTRIES * meta_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_stays_within_budget() {
        let r = storage_report(&RlConfig::default_config());
        assert!(
            r.within_budget(),
            "default config blows the {BUDGET_KB} KB budget: {:.2} KB",
            r.total_kb()
        );
        // And is in the documented ballpark, not accidentally tiny.
        assert!(
            (7.0..=10.0).contains(&r.total_kb()),
            "expected ≈8.87 KB, got {:.2}",
            r.total_kb()
        );
    }

    #[test]
    fn q_tables_dominate() {
        let r = storage_report(&RlConfig::default_config());
        assert!(r.q_tables_kb() > r.total_kb() / 2.0);
        assert_eq!(r.load_q_bits, 1024 * 3 * Q_VALUE_BITS);
        assert_eq!(r.pf_q_bits, 1024 * 2 * Q_VALUE_BITS);
    }

    #[test]
    fn report_matches_live_tables() {
        let cfg = RlConfig::default_config();
        let agent = crate::agent::AthenaAgent::new(cfg);
        let r = storage_report(&cfg);
        assert_eq!(r.load_q_bits, agent.load_q().storage_bits());
        assert_eq!(r.pf_q_bits, agent.pf_q().storage_bits());
    }

    #[test]
    fn doubling_states_doubles_q_storage() {
        let mut cfg = RlConfig::default_config();
        let base = storage_report(&cfg);
        cfg.state_bits += 1;
        let big = storage_report(&cfg);
        assert_eq!(big.load_q_bits, 2 * base.load_q_bits);
        assert_eq!(big.pf_q_bits, 2 * base.pf_q_bits);
    }
}
