//! The Athena-style agent: two Q-heads over a shared state pipeline.
//!
//! One agent coordinates *both* decision points the TLP paper hand-tunes
//! with thresholds:
//!
//! * the **load head** replaces FLP's (τ_high, τ_low) pair — per demand
//!   load it picks one of {no-issue, issue-on-L1D-miss, issue-now};
//! * the **prefetch head** replaces SLP's τ_pref — per L1D prefetch
//!   candidate it picks {keep, drop}.
//!
//! The state combines the paper's Table-I program features (reused from
//! [`tlp_core::features::FeatureState`], page buffer and all) with
//! quantised *system-pressure* signals: EWMAs of the same quantities the
//! simulator's `SimReport` aggregates (fraction of loads served from DRAM
//! — the DRAM-occupancy proxy — and the DRAM-served fraction of filled
//! prefetches, i.e. recent prefetch accuracy). The hooks cannot read live
//! `SimReport` counters, so the agent maintains shadow EWMAs from the same
//! training events those counters are built from.
//!
//! Rewards are delayed: the simulator calls back when the load or prefetch
//! outcome resolves (the serving level is the ground truth, exactly the
//! label TLP trains its perceptrons on), and the agent assigns the reward
//! to the (state, action) pair stashed in the request metadata. Dropped
//! prefetches never resolve, so the drop action earns an immediate
//! pressure-scaled reward at decision time — Athena's answer to the
//! missing-feedback problem of filtered prefetches.

use tlp_core::features::FeatureState;
use tlp_perceptron::fold;
use tlp_sim::hooks::OffChipDecision;
use tlp_sim::types::Level;

use crate::qtable::{QTable, REWARD_ONE};

/// Load-head actions, ordered safest-first so the cold table defaults to
/// no-issue (see [`QTable::best`] tie-breaking).
pub const LOAD_ACTIONS: usize = 3;
const A_NO_ISSUE: usize = 0;
const A_ISSUE_ON_MISS: usize = 1;
const A_ISSUE_NOW: usize = 2;

/// Prefetch-head actions: keep first (cold default), drop second.
pub const PF_ACTIONS: usize = 2;
const A_KEEP: usize = 0;
const A_DROP: usize = 1;

/// EWMA resolution: rates live in `0..=PRESSURE_ONE`.
const PRESSURE_ONE: u32 = 256;

/// Denominator of the exploration probability (ε = `eps_*`/256).
const EPS_DENOM: u32 = 256;

/// Agent hyper-parameters. Every rate is a power-of-two shift so the
/// hardware analogue needs no multipliers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RlConfig {
    /// Q-table state-index width per head (2^bits states).
    pub state_bits: u32,
    /// Learning-rate shift: α = 1/2^alpha_shift.
    pub alpha_shift: u32,
    /// Exploration numerator at reset (probability = eps/256).
    pub eps_start: u32,
    /// Exploration floor numerator.
    pub eps_floor: u32,
    /// Decisions per halving of the exploration numerator.
    pub eps_half_life: u64,
    /// EWMA shift for the pressure signals.
    pub pressure_shift: u32,
}

impl RlConfig {
    /// The default operating point: 1 K states per head, α = 1/8,
    /// ε decaying 12.5% → 0.8% with a 4 K-decision half-life.
    #[must_use]
    pub fn default_config() -> Self {
        Self {
            state_bits: 10,
            alpha_shift: 3,
            eps_start: 32,
            eps_floor: 2,
            eps_half_life: 4096,
            pressure_shift: 6,
        }
    }
}

impl Default for RlConfig {
    fn default() -> Self {
        Self::default_config()
    }
}

/// Shadow EWMAs of the `SimReport`-level counters the state quantises.
#[derive(Debug, Clone, Copy)]
pub struct PressureSignals {
    /// Fraction of resolved loads served from DRAM (`0..=256`) — the
    /// DRAM-occupancy proxy.
    pub dram_load_rate: u32,
    /// Fraction of filled prefetches served from DRAM (`0..=256`) — the
    /// inverse of recent prefetch accuracy (paper Figure 5: DRAM-served
    /// prefetches are overwhelmingly useless).
    pub pf_dram_rate: u32,
    shift: u32,
}

impl PressureSignals {
    fn new(shift: u32) -> Self {
        Self {
            dram_load_rate: 0,
            pf_dram_rate: 0,
            shift,
        }
    }

    fn ewma(rate: &mut u32, positive: bool, shift: u32) {
        let sample = if positive { PRESSURE_ONE } else { 0 };
        let cur = *rate as i64;
        let err = sample as i64 - cur;
        let mut step = err >> shift;
        if step == 0 && err != 0 {
            step = err.signum();
        }
        *rate = (cur + step) as u32;
    }

    fn observe_load(&mut self, served: Level) {
        Self::ewma(&mut self.dram_load_rate, served.is_off_chip(), self.shift);
    }

    fn observe_prefetch(&mut self, served: Level) {
        Self::ewma(&mut self.pf_dram_rate, served.is_off_chip(), self.shift);
    }

    /// The 4-bit state salt: two 2-bit buckets, one per signal.
    fn buckets(&self) -> u64 {
        let b = |r: u32| u64::from((r * 4 / (PRESSURE_ONE + 1)).min(3));
        b(self.dram_load_rate) << 2 | b(self.pf_dram_rate)
    }
}

/// Running behaviour counters (reports, examples, benches).
#[derive(Debug, Clone, Copy, Default)]
pub struct AgentStats {
    /// Load decisions per action (no-issue, issue-on-miss, issue-now).
    pub load_decisions: [u64; LOAD_ACTIONS],
    /// Prefetch decisions per action (keep, drop).
    pub pf_decisions: [u64; PF_ACTIONS],
    /// Delayed rewards applied to the load head.
    pub load_updates: u64,
    /// Rewards applied to the prefetch head (delayed keeps + instant drops).
    pub pf_updates: u64,
    /// Decisions taken by exploration rather than greedily.
    pub explorations: u64,
    /// Cumulative load-head reward (fixed point, [`REWARD_ONE`] = 1.0).
    pub load_reward: i64,
    /// Cumulative prefetch-head reward.
    pub pf_reward: i64,
}

/// The shared online RL agent.
#[derive(Debug)]
pub struct AthenaAgent {
    cfg: RlConfig,
    load_q: QTable,
    pf_q: QTable,
    // One feature pipeline per head, like FLP/SLP each own theirs: the
    // load head sees virtual demand addresses, the prefetch head physical
    // prefetch targets — sharing a page buffer across the two address
    // spaces would corrupt the first-access feature.
    load_features: FeatureState,
    pf_features: FeatureState,
    pressure: PressureSignals,
    rng: u64,
    decisions: u64,
    stats: AgentStats,
}

impl AthenaAgent {
    /// Builds a fresh agent.
    #[must_use]
    pub fn new(cfg: RlConfig) -> Self {
        Self {
            cfg,
            load_q: QTable::new(cfg.state_bits, LOAD_ACTIONS, cfg.alpha_shift),
            pf_q: QTable::new(cfg.state_bits, PF_ACTIONS, cfg.alpha_shift),
            load_features: FeatureState::new(),
            pf_features: FeatureState::new(),
            pressure: PressureSignals::new(cfg.pressure_shift),
            rng: 0x5851_f42d_4c95_7f2d,
            decisions: 0,
            stats: AgentStats::default(),
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &RlConfig {
        &self.cfg
    }

    /// Behaviour counters.
    #[must_use]
    pub fn stats(&self) -> AgentStats {
        self.stats
    }

    /// Current pressure signals.
    #[must_use]
    pub fn pressure(&self) -> PressureSignals {
        self.pressure
    }

    /// Current exploration numerator (probability = n/256).
    #[must_use]
    pub fn epsilon(&self) -> u32 {
        let halvings = (self.decisions / self.cfg.eps_half_life.max(1)).min(31) as u32;
        (self.cfg.eps_start >> halvings).max(self.cfg.eps_floor)
    }

    /// Decides for a demand load at `(pc, vaddr)`. Returns the decision and
    /// the metadata word to stash in the load-queue entry (handed back to
    /// [`Self::reward_load`] when the load resolves).
    pub fn decide_load(&mut self, pc: u64, vaddr: u64) -> (OffChipDecision, i32) {
        let state = self.load_state(pc, vaddr);
        self.load_features.observe_pc(pc);
        let action = self.select(state, true);
        self.stats.load_decisions[action] += 1;
        let decision = match action {
            A_ISSUE_NOW => OffChipDecision::IssueNow,
            A_ISSUE_ON_MISS => OffChipDecision::IssueOnL1dMiss,
            _ => OffChipDecision::NoIssue,
        };
        (decision, encode(state, action))
    }

    /// Applies the delayed load reward: called when the load's data
    /// returns, with the level that served it.
    pub fn reward_load(&mut self, meta: i32, served: Level) {
        let (state, action) = decode(meta);
        let r = self.load_reward(action, served);
        self.load_q.update(state, action, r);
        self.stats.load_updates += 1;
        self.stats.load_reward += i64::from(r);
        self.pressure.observe_load(served);
    }

    /// Decides for an L1D prefetch candidate. Returns `(keep, metadata)`;
    /// when the candidate is dropped the (immediate) reward has already
    /// been applied and the metadata is never handed back.
    pub fn decide_prefetch(
        &mut self,
        trigger_pc: u64,
        pf_paddr: u64,
        trigger_offchip: bool,
    ) -> (bool, i32) {
        let state = self.pf_state(trigger_pc, pf_paddr, trigger_offchip);
        self.pf_features.observe_pc(trigger_pc);
        let action = self.select(state, false);
        self.stats.pf_decisions[action] += 1;
        if action == A_DROP {
            // No completion callback will ever fire: reward immediately.
            // Dropping pays off in proportion to how DRAM-bound recent
            // prefetches were; with accurate prefetching it costs coverage.
            let r = self.drop_reward();
            self.pf_q.update(state, A_DROP, r);
            self.stats.pf_updates += 1;
            self.stats.pf_reward += i64::from(r);
        }
        (action == A_KEEP, encode(state, action))
    }

    /// Applies the delayed reward for a *kept* prefetch when its fill
    /// completes.
    pub fn reward_prefetch(&mut self, meta: i32, served: Level) {
        let (state, action) = decode(meta);
        let r = self.keep_reward(served);
        self.pf_q.update(state, action, r);
        self.stats.pf_updates += 1;
        self.stats.pf_reward += i64::from(r);
        self.pressure.observe_prefetch(served);
    }

    /// Direct Q-table access for reports.
    #[must_use]
    pub fn load_q(&self) -> &QTable {
        &self.load_q
    }

    /// Direct Q-table access for reports.
    #[must_use]
    pub fn pf_q(&self) -> &QTable {
        &self.pf_q
    }

    fn load_state(&mut self, pc: u64, vaddr: u64) -> usize {
        let first = self.load_features.first_access(vaddr);
        let h = self.load_features.base_hashes(pc, vaddr, first);
        let mixed = h.iter().fold(0u64, |acc, &x| acc ^ x.rotate_left(9));
        self.fold_state(mixed)
    }

    fn pf_state(&mut self, trigger_pc: u64, pf_paddr: u64, trigger_offchip: bool) -> usize {
        let first = self.pf_features.first_access(pf_paddr);
        let h = self.pf_features.base_hashes(trigger_pc, pf_paddr, first);
        let leveling = FeatureState::leveling_hash(trigger_offchip, pf_paddr);
        let mixed = h
            .iter()
            .chain(std::iter::once(&leveling))
            .fold(0u64, |acc, &x| acc ^ x.rotate_left(9));
        self.fold_state(mixed)
    }

    fn fold_state(&self, mixed: u64) -> usize {
        let salted = mixed ^ (self.pressure.buckets() << 59);
        fold(salted, self.cfg.state_bits) as usize
    }

    /// ε-greedy selection over the head's action space.
    fn select(&mut self, state: usize, load_head: bool) -> usize {
        self.decisions += 1;
        let actions = if load_head { LOAD_ACTIONS } else { PF_ACTIONS };
        if self.next_u32() % EPS_DENOM < self.epsilon() {
            self.stats.explorations += 1;
            return (self.next_u32() as usize) % actions;
        }
        if load_head {
            self.load_q.best(state).0
        } else {
            self.pf_q.best(state).0
        }
    }

    /// Load-head reward. Correct off-chip calls pay in proportion to the
    /// latency they hide; wasted speculative DRAM requests cost more when
    /// DRAM is already busy (the pressure scaling Athena adds over
    /// fixed-threshold designs).
    fn load_reward(&self, action: usize, served: Level) -> i32 {
        let waste_penalty = (self.pressure.dram_load_rate as i32 * REWARD_ONE / 2) / 256;
        match (action, served) {
            (A_ISSUE_NOW, Level::Dram) => REWARD_ONE,
            (A_ISSUE_NOW, Level::L1d) => -REWARD_ONE - waste_penalty,
            (A_ISSUE_NOW, _) => -(3 * REWARD_ONE / 4) - waste_penalty,
            // Delayed issue: on an L1D hit the speculative request was
            // never sent — the delay saved the waste Hermes pays.
            (A_ISSUE_ON_MISS, Level::Dram) => 3 * REWARD_ONE / 4,
            (A_ISSUE_ON_MISS, Level::L1d) => REWARD_ONE / 4,
            (A_ISSUE_ON_MISS, _) => -(REWARD_ONE / 2) - waste_penalty,
            // No issue: missing a true off-chip load forfeits the latency
            // win; staying quiet on on-chip loads is correct.
            (A_NO_ISSUE, Level::Dram) => -REWARD_ONE,
            _ => REWARD_ONE / 2,
        }
    }

    /// Kept-prefetch reward: a DRAM-served prefetch is the paper's
    /// Figure-5 signature of a useless one.
    fn keep_reward(&self, served: Level) -> i32 {
        if served.is_off_chip() {
            let waste_penalty = (self.pressure.dram_load_rate as i32 * REWARD_ONE / 2) / 256;
            -REWARD_ONE - waste_penalty
        } else {
            REWARD_ONE / 2
        }
    }

    /// Immediate drop reward: scaled by how DRAM-bound recent prefetches
    /// were. At `pf_dram_rate` = 0 dropping costs a quarter (lost
    /// coverage); beyond ≈ 1/3 it turns positive.
    fn drop_reward(&self) -> i32 {
        -(REWARD_ONE / 4) + (self.pressure.pf_dram_rate as i32 * 3 * REWARD_ONE / 4) / 256
    }

    /// xorshift64*: deterministic, seeded at construction.
    fn next_u32(&mut self) -> u32 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 32) as u32
    }
}

/// Packs `(state, action)` into the i32 `confidence` slot of the request
/// metadata the simulator already carries (Table-II style: the paper
/// stashes hashed features + confidence in LQ/MSHR entries; we stash the
/// hashed state + chosen action, the same few bits).
fn encode(state: usize, action: usize) -> i32 {
    ((state as i32) << 2) | action as i32
}

fn decode(meta: i32) -> (usize, usize) {
    ((meta >> 2) as usize, (meta & 0b11) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_roundtrips() {
        for state in [0usize, 1, 511, 1023] {
            for action in 0..LOAD_ACTIONS {
                assert_eq!(decode(encode(state, action)), (state, action));
            }
        }
    }

    #[test]
    fn cold_agent_defaults_to_no_issue_and_keep() {
        let mut a = AthenaAgent::new(RlConfig {
            eps_start: 0,
            eps_floor: 0,
            ..RlConfig::default_config()
        });
        let (d, _) = a.decide_load(0x400, 0x1000);
        assert_eq!(d, OffChipDecision::NoIssue);
        let (keep, _) = a.decide_prefetch(0x400, 0x2000, false);
        assert!(keep);
    }

    #[test]
    fn agent_learns_to_issue_for_offchip_loads() {
        let mut a = AthenaAgent::new(RlConfig::default_config());
        // One PC whose loads always miss everywhere.
        for i in 0..2000u64 {
            let (_, meta) = a.decide_load(0x400, 0x100_0000 + i * 64);
            a.reward_load(meta, Level::Dram);
        }
        let stats = a.stats();
        let issued = stats.load_decisions[A_ISSUE_NOW] + stats.load_decisions[A_ISSUE_ON_MISS];
        assert!(
            issued > stats.load_decisions[A_NO_ISSUE],
            "agent must shift toward issuing: {stats:?}"
        );
        assert!(stats.load_reward > 0, "positive cumulative reward expected");
    }

    #[test]
    fn agent_learns_to_stay_quiet_for_onchip_loads() {
        let mut a = AthenaAgent::new(RlConfig::default_config());
        for i in 0..2000u64 {
            let (_, meta) = a.decide_load(0x800, 0x200_0000 + i * 64);
            a.reward_load(meta, Level::L1d);
        }
        // The tail of training must be overwhelmingly quiet.
        let before = a.stats().load_decisions;
        for i in 0..200u64 {
            let (_, meta) = a.decide_load(0x800, 0x300_0000 + i * 64);
            a.reward_load(meta, Level::L1d);
        }
        let after = a.stats().load_decisions;
        let quiet = after[A_NO_ISSUE] - before[A_NO_ISSUE];
        assert!(
            quiet >= 150,
            "trained agent must mostly pick no-issue: {quiet}/200"
        );
    }

    #[test]
    fn agent_learns_to_drop_dram_bound_prefetches() {
        let mut a = AthenaAgent::new(RlConfig::default_config());
        for i in 0..3000u64 {
            let (keep, meta) = a.decide_prefetch(0x400, 0x300_0000 + (i % 64) * 64, true);
            if keep {
                a.reward_prefetch(meta, Level::Dram);
            }
        }
        let before = a.stats().pf_decisions;
        for i in 0..200u64 {
            let (keep, meta) = a.decide_prefetch(0x400, 0x300_0000 + (i % 64) * 64, true);
            if keep {
                a.reward_prefetch(meta, Level::Dram);
            }
        }
        let after = a.stats().pf_decisions;
        let dropped = after[A_DROP] - before[A_DROP];
        assert!(
            dropped >= 120,
            "trained agent must mostly drop DRAM-bound prefetches: {dropped}/200"
        );
    }

    #[test]
    fn epsilon_decays_to_the_floor() {
        let mut a = AthenaAgent::new(RlConfig::default_config());
        let start = a.epsilon();
        for i in 0..200_000u64 {
            let _ = a.decide_load(0x400, i * 64);
        }
        assert!(a.epsilon() < start);
        assert_eq!(a.epsilon(), a.config().eps_floor);
    }

    #[test]
    fn pressure_tracks_outcomes() {
        let mut a = AthenaAgent::new(RlConfig::default_config());
        for i in 0..500u64 {
            let (_, meta) = a.decide_load(0x400, i * 64);
            a.reward_load(meta, Level::Dram);
        }
        assert!(
            a.pressure().dram_load_rate > 200,
            "all-DRAM stream must saturate the occupancy proxy: {}",
            a.pressure().dram_load_rate
        );
    }

    #[test]
    fn pressure_buckets_change_the_state() {
        let mut a = AthenaAgent::new(RlConfig {
            eps_start: 0,
            eps_floor: 0,
            ..RlConfig::default_config()
        });
        let (_, meta_cold) = a.decide_load(0x123, 0x4567_0000);
        for i in 0..500u64 {
            let (_, m) = a.decide_load(0x900, i * 64);
            a.reward_load(m, Level::Dram);
        }
        let (_, meta_hot) = a.decide_load(0x123, 0x4567_0000);
        // Same (pc, addr); the pressure salt and page-buffer history moved
        // the state. (Not guaranteed for every pair, but deterministic.)
        assert_ne!(decode(meta_cold).0, decode(meta_hot).0);
    }
}
