//! Direct unit coverage for the neural layer: weight saturation under
//! repeated training, hash determinism, and table-indexing bounds.

use tlp_perceptron::{
    combine, fold, mix64, FeatureIndices, HashedPerceptron, SaturatingCounter, TableSpec,
    WeightTable, MAX_FEATURES,
};

#[test]
fn weights_saturate_on_repeated_positive_training() {
    // Every legal width must pin at +2^(b-1)-1 and never overshoot, no
    // matter how long training continues.
    for bits in 2..=8 {
        let mut p = HashedPerceptron::new(&[TableSpec::new(64, bits)]);
        let idx = p.indices(&[0x1234_5678]);
        let (_, hi) = p.sum_bounds();
        for step in 0..4 * (1 << bits) {
            p.train(&idx, true);
            assert!(p.sum(&idx) <= hi, "width {bits} overshot at step {step}");
        }
        assert_eq!(p.sum(&idx), hi, "width {bits} must saturate at {hi}");
        // One opposing update must move it off the rail (not sticky).
        p.train(&idx, false);
        assert_eq!(p.sum(&idx), hi - 1);
    }
}

#[test]
fn weights_saturate_on_repeated_negative_training() {
    for bits in 2..=8 {
        let mut p = HashedPerceptron::new(&[TableSpec::new(64, bits)]);
        let idx = p.indices(&[0x9abc_def0]);
        let (lo, _) = p.sum_bounds();
        for _ in 0..4 * (1 << bits) {
            p.train(&idx, false);
            assert!(p.sum(&idx) >= lo);
        }
        assert_eq!(p.sum(&idx), lo);
    }
}

#[test]
fn thresholded_training_stops_at_theta_band() {
    // With a correct prediction, thresholded training only reinforces while
    // |sum| < theta: the sum must settle in [theta, theta+per-step delta).
    let mut p = HashedPerceptron::new(&[TableSpec::new(64, 6), TableSpec::new(64, 6)]);
    let idx = p.indices(&[3, 5]);
    let theta = 9;
    for _ in 0..100 {
        let sum = p.sum(&idx);
        p.train_thresholded(&idx, true, sum, theta);
    }
    let settled = p.sum(&idx);
    // Two tables move the sum by 2 per update.
    assert!(
        settled >= theta && settled < theta + 2,
        "sum {settled} should settle just past theta {theta}"
    );
}

#[test]
fn saturating_counter_is_exact_at_the_rails() {
    let mut c = SaturatingCounter::new(2); // range [-2, 1]
    assert_eq!(c.bounds(), (-2, 1));
    c.increment();
    c.increment();
    c.increment();
    assert_eq!(c.value(), 1);
    for _ in 0..10 {
        c.decrement();
    }
    assert_eq!(c.value(), -2);
    c.reset();
    assert_eq!(c.value(), 0);
}

#[test]
fn hashes_are_deterministic_across_instances() {
    // The same feature hashes must resolve to the same indices in every
    // identically-shaped perceptron — predictions stored in load-queue
    // metadata rely on this.
    let specs = [TableSpec::new(256, 5), TableSpec::new(128, 5)];
    let a = HashedPerceptron::new(&specs);
    let b = HashedPerceptron::new(&specs);
    for seed in 0..64u64 {
        let h = [mix64(seed), combine(seed, !seed)];
        assert_eq!(a.indices(&h), b.indices(&h));
    }
    // And the raw primitives themselves are pure functions.
    for x in [0u64, 1, 0xdead_beef, u64::MAX] {
        assert_eq!(mix64(x), mix64(x));
        assert_eq!(combine(x, x ^ 1), combine(x, x ^ 1));
        assert_eq!(fold(x, 9), fold(x, 9));
    }
}

#[test]
fn mix64_avalanches_single_bit_flips() {
    // Flipping any single input bit must flip a healthy fraction of output
    // bits, otherwise nearby PCs would collide systematically.
    for bit in 0..64 {
        let a = mix64(0x0123_4567_89ab_cdef);
        let b = mix64(0x0123_4567_89ab_cdef ^ (1u64 << bit));
        assert!(
            (a ^ b).count_ones() >= 16,
            "weak avalanche on input bit {bit}"
        );
    }
}

#[test]
fn table_indices_stay_in_bounds_for_adversarial_hashes() {
    for entries in [2usize, 64, 256, 4096] {
        let t = WeightTable::new(TableSpec::new(entries, 5));
        let adversarial = [
            0u64,
            1,
            entries as u64,
            entries as u64 - 1,
            entries as u64 + 1,
            u64::MAX,
            u64::MAX - 1,
            0x8000_0000_0000_0000,
            0xaaaa_aaaa_aaaa_aaaa,
            0x5555_5555_5555_5555,
        ];
        for &h in &adversarial {
            let i = t.index_of(h);
            assert!(i < entries, "hash {h:#x} indexed {i} >= {entries}");
        }
    }
}

#[test]
fn perceptron_indices_stay_in_bounds_per_table() {
    // Mixed geometries: each index must respect its own table's bound.
    let sizes = [64usize, 2048, 128, 4096];
    let specs: Vec<TableSpec> = sizes.iter().map(|&s| TableSpec::new(s, 5)).collect();
    let p = HashedPerceptron::new(&specs);
    for seed in 0..256u64 {
        let hashes = [
            mix64(seed),
            seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            !seed,
            seed.rotate_left(17),
        ];
        let idx = p.indices(&hashes);
        assert_eq!(idx.len(), sizes.len());
        for (i, (got, &bound)) in idx.iter().zip(&sizes).enumerate() {
            assert!(got < bound, "feature {i}: index {got} >= {bound}");
        }
    }
}

#[test]
fn feature_indices_capacity_matches_max_features() {
    let specs: Vec<TableSpec> = (0..MAX_FEATURES).map(|_| TableSpec::new(64, 5)).collect();
    let p = HashedPerceptron::new(&specs);
    let hashes: Vec<u64> = (0..MAX_FEATURES as u64).collect();
    let idx = p.indices(&hashes);
    assert_eq!(idx.len(), MAX_FEATURES);
    assert!(!idx.is_empty());
    assert_eq!(FeatureIndices::empty().len(), 0);
}

#[test]
fn index_distribution_covers_the_table() {
    // Distinct realistic PCs must spread over most of a small table, not
    // cluster into a handful of hot entries.
    let t = WeightTable::new(TableSpec::new(64, 5));
    let mut hit = [false; 64];
    for pc in 0..1024u64 {
        hit[t.index_of(0x400_000 + pc * 4)] = true;
    }
    let covered = hit.iter().filter(|&&h| h).count();
    assert!(covered > 56, "only {covered}/64 entries used: poor spread");
}
