//! Property-based tests for the perceptron substrate.

use proptest::prelude::*;
use tlp_perceptron::{fold, mix64, HashedPerceptron, SaturatingCounter, TableSpec};

proptest! {
    /// Folding always stays within the requested width.
    #[test]
    fn fold_in_range(x in any::<u64>(), bits in 1u32..32) {
        prop_assert!(fold(x, bits) < (1u64 << bits));
    }

    /// The mixer is a bijection-ish spreader: equal inputs, equal outputs.
    #[test]
    fn mix_deterministic(x in any::<u64>()) {
        prop_assert_eq!(mix64(x), mix64(x));
    }

    /// Counters never leave their saturation bounds under any update sequence.
    #[test]
    fn counter_stays_bounded(bits in 2u32..=8, ops in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut c = SaturatingCounter::new(bits);
        let (min, max) = c.bounds();
        for up in ops {
            c.update(up);
            prop_assert!(c.value() >= min && c.value() <= max);
        }
    }

    /// The perceptron sum never exceeds the theoretical bounds regardless of
    /// the training sequence, and training toward an outcome never moves the
    /// sum away from it.
    #[test]
    fn perceptron_sum_bounded(
        seed in any::<u64>(),
        ops in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<bool>()), 1..300),
    ) {
        let mut p = HashedPerceptron::new(&[TableSpec::new(64, 5), TableSpec::new(32, 5), TableSpec::new(128, 5)]);
        let (lo, hi) = p.sum_bounds();
        for (a, b, outcome) in ops {
            let idx = p.indices(&[a ^ seed, b, a.wrapping_add(b)]);
            let before = p.sum(&idx);
            p.train(&idx, outcome);
            let after = p.sum(&idx);
            prop_assert!(after >= lo && after <= hi, "sum {after} outside [{lo},{hi}]");
            if outcome {
                prop_assert!(after >= before);
            } else {
                prop_assert!(after <= before);
            }
        }
    }

    /// Index resolution is a pure function of the hashes.
    #[test]
    fn indices_deterministic(a in any::<u64>(), b in any::<u64>()) {
        let p = HashedPerceptron::new(&[TableSpec::new(256, 5), TableSpec::new(256, 5)]);
        prop_assert_eq!(p.indices(&[a, b]), p.indices(&[a, b]));
    }

    /// Thresholded training converges: after enough positive examples the
    /// predictor answers positive with confidence at least theta.
    #[test]
    fn thresholded_training_converges(a in any::<u64>(), b in any::<u64>(), theta in 1i32..20) {
        let mut p = HashedPerceptron::new(&[TableSpec::new(64, 5), TableSpec::new(64, 5)]);
        let idx = p.indices(&[a, b]);
        for _ in 0..64 {
            let sum = p.sum(&idx);
            p.train_thresholded(&idx, true, sum, theta);
        }
        prop_assert!(p.sum(&idx) >= theta.min(p.sum_bounds().1));
    }
}
