//! Hash helpers for feature index computation.
//!
//! Hardware perceptron predictors fold wide feature values (PCs, addresses,
//! PC histories) down to a table index with a handful of XOR gates. We model
//! that with an avalanching 64-bit mixer followed by XOR-folding, which keeps
//! the software model deterministic while spreading indices the way a real
//! folded-XOR indexing function would.

/// Finalization step of SplitMix64; a cheap, high-quality 64-bit mixer.
///
/// ```
/// # use tlp_perceptron::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(42), mix64(42));
/// ```
#[inline]
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Combine two feature components into one value (order-sensitive).
///
/// ```
/// # use tlp_perceptron::combine;
/// assert_ne!(combine(1, 2), combine(2, 1));
/// ```
#[inline]
#[must_use]
pub fn combine(a: u64, b: u64) -> u64 {
    mix64(a ^ b.rotate_left(32))
}

/// XOR-fold `x` down to `bits` bits (the classic hardware indexing trick).
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 63.
///
/// ```
/// # use tlp_perceptron::fold;
/// let i = fold(0xdead_beef_cafe_f00d, 10);
/// assert!(i < 1024);
/// ```
#[inline]
#[must_use]
pub fn fold(mut x: u64, bits: u32) -> u64 {
    assert!(bits > 0 && bits < 64, "fold width must be in 1..=63");
    let mask = (1u64 << bits) - 1;
    let mut out = 0u64;
    while x != 0 {
        out ^= x & mask;
        x >>= bits;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(0xabcd), mix64(0xabcd));
        // Consecutive inputs land far apart.
        let a = mix64(100);
        let b = mix64(101);
        assert!((a ^ b).count_ones() > 16, "poor avalanche: {a:x} vs {b:x}");
    }

    #[test]
    fn fold_respects_width() {
        for bits in 1..20 {
            for x in [0u64, 1, 0xffff_ffff, u64::MAX, 0x1234_5678_9abc_def0] {
                assert!(fold(x, bits) < (1 << bits));
            }
        }
    }

    #[test]
    fn fold_zero_is_zero() {
        assert_eq!(fold(0, 12), 0);
    }

    #[test]
    #[should_panic(expected = "fold width")]
    fn fold_rejects_zero_bits() {
        let _ = fold(1, 0);
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(0x11, 0x22), combine(0x22, 0x11));
    }
}
