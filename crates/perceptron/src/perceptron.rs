//! The multi-table hashed perceptron.

use crate::table::{TableSpec, WeightTable};

/// Maximum number of feature tables a single predictor may use.
///
/// Eight covers every predictor in the paper: FLP/Hermes use 5 features,
/// SLP uses 6, PPF uses up to 8.
pub const MAX_FEATURES: usize = 8;

/// Per-prediction table indices, stored in load-queue/MSHR metadata so that
/// training at completion touches exactly the weights read at prediction.
///
/// This mirrors the paper's Table II metadata (hashed PC, last-4 PCs, first
/// access, confidence) — we store the resolved table indices, which is the
/// same information after indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureIndices {
    idx: [u32; MAX_FEATURES],
    len: u8,
}

impl FeatureIndices {
    /// An empty index set (no features).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            idx: [0; MAX_FEATURES],
            len: 0,
        }
    }

    /// Number of valid indices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no indices are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the valid indices.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.idx[..self.len as usize].iter().map(|&i| i as usize)
    }

    fn push(&mut self, i: usize) {
        assert!((self.len as usize) < MAX_FEATURES, "too many features");
        self.idx[self.len as usize] = u32::try_from(i).expect("index fits u32");
        self.len += 1;
    }
}

impl Default for FeatureIndices {
    fn default() -> Self {
        Self::empty()
    }
}

/// A hashed perceptron: one weight table per feature, summed to a confidence.
///
/// The prediction sum is compared against thresholds by the caller —
/// different users of this structure have different threshold semantics
/// (single activation threshold for Hermes/PPF, the τ_high/τ_low pair for
/// FLP, τ_pref for SLP, zero for the branch predictor).
#[derive(Debug, Clone)]
pub struct HashedPerceptron {
    tables: Vec<WeightTable>,
}

impl HashedPerceptron {
    /// Creates a perceptron with one weight table per spec.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty or longer than [`MAX_FEATURES`].
    #[must_use]
    pub fn new(specs: &[TableSpec]) -> Self {
        assert!(
            !specs.is_empty() && specs.len() <= MAX_FEATURES,
            "feature count must be in 1..={MAX_FEATURES}"
        );
        Self {
            tables: specs.iter().copied().map(WeightTable::new).collect(),
        }
    }

    /// Number of feature tables.
    #[must_use]
    pub fn num_features(&self) -> usize {
        self.tables.len()
    }

    /// Resolves raw feature hashes (one per table) into table indices.
    ///
    /// # Panics
    ///
    /// Panics if `hashes.len()` differs from the number of tables.
    #[must_use]
    pub fn indices(&self, hashes: &[u64]) -> FeatureIndices {
        assert_eq!(
            hashes.len(),
            self.tables.len(),
            "feature hash count must match table count"
        );
        let mut out = FeatureIndices::empty();
        for (t, &h) in self.tables.iter().zip(hashes) {
            out.push(t.index_of(h));
        }
        out
    }

    /// Sums the selected weights into a confidence value.
    ///
    /// # Panics
    ///
    /// Panics if `indices` was produced by a perceptron with a different
    /// number of features.
    #[must_use]
    pub fn sum(&self, indices: &FeatureIndices) -> i32 {
        assert_eq!(
            indices.len(),
            self.tables.len(),
            "index count must match table count"
        );
        self.tables
            .iter()
            .zip(indices.iter())
            .map(|(t, i)| t.weight_at(i))
            .sum()
    }

    /// Unconditionally trains every selected weight toward `positive`.
    pub fn train(&mut self, indices: &FeatureIndices, positive: bool) {
        assert_eq!(
            indices.len(),
            self.tables.len(),
            "index count must match table count"
        );
        for (t, i) in self.tables.iter_mut().zip(indices.iter()) {
            t.train_at(i, positive);
        }
    }

    /// Perceptron training rule: update only when the prediction at
    /// `sum_at_predict` disagreed with the outcome, or the magnitude of the
    /// sum was below the training threshold `theta`.
    ///
    /// Returns `true` if an update was applied.
    pub fn train_thresholded(
        &mut self,
        indices: &FeatureIndices,
        positive: bool,
        sum_at_predict: i32,
        theta: i32,
    ) -> bool {
        let predicted_positive = sum_at_predict >= 0;
        if predicted_positive != positive || sum_at_predict.abs() < theta {
            self.train(indices, positive);
            true
        } else {
            false
        }
    }

    /// Resets all weights to zero.
    pub fn reset(&mut self) {
        for t in &mut self.tables {
            t.reset();
        }
    }

    /// Total weight storage in bits across all tables.
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.tables.iter().map(WeightTable::storage_bits).sum()
    }

    /// Theoretical bounds of the confidence sum given the table widths.
    #[must_use]
    pub fn sum_bounds(&self) -> (i32, i32) {
        let mut lo = 0;
        let mut hi = 0;
        for t in &self.tables {
            let max = (1i32 << (t.spec().weight_bits() - 1)) - 1;
            hi += max;
            lo += -max - 1;
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HashedPerceptron {
        HashedPerceptron::new(&[TableSpec::new(64, 5), TableSpec::new(128, 5)])
    }

    #[test]
    fn untrained_sum_is_zero() {
        let p = small();
        let idx = p.indices(&[1, 2]);
        assert_eq!(p.sum(&idx), 0);
    }

    #[test]
    fn training_moves_sum() {
        let mut p = small();
        let idx = p.indices(&[0xaa, 0xbb]);
        p.train(&idx, true);
        assert_eq!(p.sum(&idx), 2);
        p.train(&idx, false);
        p.train(&idx, false);
        assert_eq!(p.sum(&idx), -2);
    }

    #[test]
    fn sum_saturates_at_bounds() {
        let mut p = small();
        let idx = p.indices(&[7, 9]);
        for _ in 0..1000 {
            p.train(&idx, true);
        }
        let (_, hi) = p.sum_bounds();
        assert_eq!(p.sum(&idx), hi);
        assert_eq!(hi, 30); // two 5-bit tables: 15 + 15
    }

    #[test]
    fn thresholded_training_skips_confident_correct() {
        let mut p = small();
        let idx = p.indices(&[3, 4]);
        for _ in 0..10 {
            p.train(&idx, true);
        }
        let sum = p.sum(&idx);
        // Correct and confident: no update.
        assert!(!p.train_thresholded(&idx, true, sum, 5));
        assert_eq!(p.sum(&idx), sum);
        // Mispredicted: update applied.
        assert!(p.train_thresholded(&idx, false, sum, 5));
        assert_eq!(p.sum(&idx), sum - 2);
    }

    #[test]
    fn thresholded_training_updates_weak_correct() {
        let mut p = small();
        let idx = p.indices(&[5, 6]);
        p.train(&idx, true); // sum = 2, below theta
        assert!(p.train_thresholded(&idx, true, 2, 10));
        assert_eq!(p.sum(&idx), 4);
    }

    #[test]
    fn distinct_features_use_distinct_tables() {
        let mut p = small();
        let a = p.indices(&[100, 200]);
        let b = p.indices(&[300, 400]);
        p.train(&a, true);
        // b may alias in one table but extremely unlikely in both;
        // with the chosen constants these do not alias.
        assert!(p.sum(&b) <= 1, "unexpected aliasing of both features");
    }

    #[test]
    fn storage_accounting() {
        let p = small();
        assert_eq!(p.storage_bits(), 64 * 5 + 128 * 5);
    }

    #[test]
    #[should_panic(expected = "feature hash count")]
    fn wrong_arity_panics() {
        let p = small();
        let _ = p.indices(&[1]);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut p = small();
        let idx = p.indices(&[1, 2]);
        p.train(&idx, true);
        p.reset();
        assert_eq!(p.sum(&idx), 0);
    }
}
