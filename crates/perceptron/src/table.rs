//! Saturating weight counters and per-feature weight tables.

/// A signed saturating counter of configurable bit width (2..=8 bits),
/// the storage element of every perceptron weight table.
///
/// A `b`-bit counter saturates at `[-2^(b-1), 2^(b-1) - 1]`, matching the
/// two's-complement range a hardware implementation would provide.
///
/// ```
/// # use tlp_perceptron::SaturatingCounter;
/// let mut c = SaturatingCounter::new(3); // range [-4, 3]
/// for _ in 0..10 { c.increment(); }
/// assert_eq!(c.value(), 3);
/// for _ in 0..20 { c.decrement(); }
/// assert_eq!(c.value(), -4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaturatingCounter {
    value: i16,
    min: i16,
    max: i16,
}

impl SaturatingCounter {
    /// Creates a zero-initialized counter of `bits` width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=8`.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!((2..=8).contains(&bits), "counter width must be in 2..=8");
        let max = (1i16 << (bits - 1)) - 1;
        Self {
            value: 0,
            min: -max - 1,
            max,
        }
    }

    /// Current counter value.
    #[inline]
    #[must_use]
    pub fn value(&self) -> i32 {
        i32::from(self.value)
    }

    /// Inclusive saturation bounds `(min, max)`.
    #[must_use]
    pub fn bounds(&self) -> (i32, i32) {
        (i32::from(self.min), i32::from(self.max))
    }

    /// Saturating increment.
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    #[inline]
    pub fn decrement(&mut self) {
        if self.value > self.min {
            self.value -= 1;
        }
    }

    /// Moves the counter toward the outcome: increment on `true`, decrement
    /// on `false`.
    #[inline]
    pub fn update(&mut self, positive: bool) {
        if positive {
            self.increment();
        } else {
            self.decrement();
        }
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

/// Geometry of one weight table: entry count (power of two) and weight width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableSpec {
    entries: usize,
    weight_bits: u32,
}

impl TableSpec {
    /// Creates a table spec.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `weight_bits` is outside
    /// `2..=8`.
    #[must_use]
    pub fn new(entries: usize, weight_bits: u32) -> Self {
        assert!(
            entries.is_power_of_two() && entries >= 2,
            "table entries must be a power of two >= 2, got {entries}"
        );
        assert!(
            (2..=8).contains(&weight_bits),
            "weight width must be in 2..=8"
        );
        Self {
            entries,
            weight_bits,
        }
    }

    /// Number of entries in the table.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Width of each weight in bits.
    #[must_use]
    pub fn weight_bits(&self) -> u32 {
        self.weight_bits
    }

    /// Total storage of this table in bits.
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.entries * self.weight_bits as usize
    }
}

/// One perceptron weight table: a power-of-two array of saturating weights
/// indexed by a folded feature hash.
#[derive(Debug, Clone)]
pub struct WeightTable {
    spec: TableSpec,
    weights: Vec<SaturatingCounter>,
    index_bits: u32,
}

impl WeightTable {
    /// Creates a zeroed weight table.
    #[must_use]
    pub fn new(spec: TableSpec) -> Self {
        let index_bits = spec.entries().trailing_zeros();
        Self {
            spec,
            weights: vec![SaturatingCounter::new(spec.weight_bits()); spec.entries()],
            index_bits,
        }
    }

    /// The table geometry.
    #[must_use]
    pub fn spec(&self) -> &TableSpec {
        &self.spec
    }

    /// Folds a raw feature hash into a table index.
    #[inline]
    #[must_use]
    pub fn index_of(&self, feature_hash: u64) -> usize {
        crate::hash::fold(crate::hash::mix64(feature_hash), self.index_bits) as usize
    }

    /// Reads the weight at a previously computed index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    #[must_use]
    pub fn weight_at(&self, index: usize) -> i32 {
        self.weights[index].value()
    }

    /// Trains the weight at `index` toward `positive`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn train_at(&mut self, index: usize, positive: bool) {
        self.weights[index].update(positive);
    }

    /// Resets all weights to zero.
    pub fn reset(&mut self) {
        for w in &mut self.weights {
            w.reset();
        }
    }

    /// Total storage of this table in bits.
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.spec.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_both_ways() {
        let mut c = SaturatingCounter::new(5);
        let (min, max) = c.bounds();
        assert_eq!((min, max), (-16, 15));
        for _ in 0..100 {
            c.increment();
        }
        assert_eq!(c.value(), 15);
        for _ in 0..100 {
            c.decrement();
        }
        assert_eq!(c.value(), -16);
    }

    #[test]
    fn counter_update_follows_outcome() {
        let mut c = SaturatingCounter::new(4);
        c.update(true);
        c.update(true);
        c.update(false);
        assert_eq!(c.value(), 1);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn counter_rejects_bad_width() {
        let _ = SaturatingCounter::new(1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn spec_rejects_non_power_of_two() {
        let _ = TableSpec::new(100, 5);
    }

    #[test]
    fn table_index_within_bounds() {
        let t = WeightTable::new(TableSpec::new(256, 5));
        for x in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert!(t.index_of(x) < 256);
        }
    }

    #[test]
    fn table_trains_at_index() {
        let mut t = WeightTable::new(TableSpec::new(64, 5));
        let i = t.index_of(0x42);
        t.train_at(i, true);
        t.train_at(i, true);
        assert_eq!(t.weight_at(i), 2);
        t.reset();
        assert_eq!(t.weight_at(i), 0);
    }

    #[test]
    fn storage_bits_matches_geometry() {
        let t = WeightTable::new(TableSpec::new(1024, 5));
        assert_eq!(t.storage_bits(), 5120);
    }
}
