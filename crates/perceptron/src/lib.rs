//! Hashed-perceptron prediction substrate.
//!
//! This crate provides the microarchitectural perceptron building blocks
//! shared by every neural predictor in the workspace: the branch predictor,
//! the Hermes off-chip predictor, the PPF prefetch filter, and the paper's
//! FLP/SLP predictors.
//!
//! A *hashed perceptron* [Jiménez & Lin, HPCA'01; Tarjan & Skadron] keeps one
//! table of small saturating weights per input *feature*. To predict, each
//! feature value is hashed into its table, the selected weights are summed,
//! and the sum is compared against one or more thresholds. To train, each
//! selected weight is incremented when the ground-truth outcome is positive
//! and decremented otherwise, typically only when the prediction was wrong or
//! the magnitude of the sum was below a training threshold `theta`.
//!
//! # Example
//!
//! ```
//! use tlp_perceptron::{HashedPerceptron, TableSpec};
//!
//! // Two features, 64-entry tables of 5-bit weights.
//! let mut p = HashedPerceptron::new(&[TableSpec::new(64, 5), TableSpec::new(64, 5)]);
//! let idx = p.indices(&[0xdead_beef, 0x1234_5678]);
//! let sum = p.sum(&idx);
//! assert_eq!(sum, 0); // untrained
//! p.train(&idx, true);
//! assert!(p.sum(&idx) > 0);
//! ```

mod hash;
mod perceptron;
mod table;

pub use hash::{combine, fold, mix64};
pub use perceptron::{FeatureIndices, HashedPerceptron, MAX_FEATURES};
pub use table::{SaturatingCounter, TableSpec, WeightTable};
