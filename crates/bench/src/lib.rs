//! `tlp-bench`: Criterion benchmarks regenerating each table and figure of
//! the TLP paper at bench scale. See `benches/figures.rs` (one benchmark
//! per figure/table) and `benches/substrate.rs` (micro-benchmarks of the
//! simulator substrate itself).
