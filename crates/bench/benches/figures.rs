//! One Criterion benchmark per paper figure/table: each iteration
//! regenerates the experiment at test scale (smaller workload subsets and
//! instruction budgets than the CLI's `--quick`/`--full`, same code paths).
//!
//! The benchmark *values* (wall time) measure the harness itself; the
//! experiment outputs are printed once per figure by `tlp-repro`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use tlp_harness::experiments::{
    fig01, fig02, fig03, fig04, fig05, fig06, fig10, fig11, fig12, fig13, fig14, fig15, fig16,
    fig17, tables,
};
use tlp_harness::{Harness, L1Pf, RunConfig};

fn bench_rc() -> RunConfig {
    let mut rc = RunConfig::test();
    rc.instructions = 12_000;
    rc.warmup = 2_500;
    rc.workloads_per_suite = Some(2);
    rc.mixes_per_suite = 1;
    rc
}

fn figure_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    // One experiment regeneration per iteration is already seconds of
    // work; keep Criterion's own windows minimal.
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));

    g.bench_function("fig01_mpki", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| fig01::run(&h));
    });
    g.bench_function("fig02_hermes_dram_sc", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| fig02::run(&h));
    });
    g.bench_function("fig03_hermes_dram_mc", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| fig03::run(&h));
    });
    g.bench_function("fig04_pred_outcome", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| fig04::run(&h));
    });
    g.bench_function("fig05_inaccurate_prefetches", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| fig05::run(&h, L1Pf::Ipcp));
    });
    g.bench_function("fig06_accurate_prefetches", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| fig06::run(&h, L1Pf::Ipcp));
    });
    g.bench_function("fig10_speedup_sc", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| fig10::run(&h, L1Pf::Ipcp));
    });
    g.bench_function("fig11_dram_sc", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| fig11::run(&h, L1Pf::Ipcp));
    });
    g.bench_function("fig12_accuracy", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| fig12::run(&h, L1Pf::Ipcp));
    });
    g.bench_function("fig13_speedup_mc", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| fig13::run(&h, L1Pf::Ipcp));
    });
    g.bench_function("fig14_dram_mc", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| fig14::run(&h, L1Pf::Ipcp));
    });
    g.bench_function("fig15_ablation", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| fig15::run(&h));
    });
    g.bench_function("fig16_bandwidth", |b| {
        let mut rc = bench_rc();
        rc.instructions = 6_000;
        rc.warmup = 1_000;
        rc.workloads_per_suite = Some(1);
        let h = Harness::new(rc);
        b.iter(|| fig16::run(&h));
    });
    g.bench_function("fig17_storage_budget", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| fig17::run(&h, L1Pf::Ipcp));
    });
    g.bench_function("table2_storage", |b| b.iter(tables::table2));
    g.bench_function("table3_config", |b| b.iter(tables::table3));
    g.finish();
}

criterion_group!(benches, figure_benches);
criterion_main!(benches);
