//! Criterion benchmarks for the RL subsystem's hot path: per-load
//! state-hash + ε-greedy action selection, the per-candidate prefetch
//! decision, and the delayed-reward Q-update. These run once per demand
//! load / prefetch candidate in an AthenaRl simulation, so their cost
//! bounds the scheme's simulation overhead.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use tlp_rl::{AthenaAgent, RlConfig};
use tlp_sim::types::Level;

fn rl_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("rl");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));

    g.bench_function("decide_load_state_hash_and_select", |b| {
        let mut agent = AthenaAgent::new(RlConfig::default_config());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let pc = 0x400 + (i % 64) * 4;
            let vaddr = 0x10_0000 + i * 64;
            agent.decide_load(black_box(pc), black_box(vaddr))
        });
    });

    g.bench_function("decide_prefetch_state_hash_and_select", |b| {
        let mut agent = AthenaAgent::new(RlConfig::default_config());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let pc = 0x800 + (i % 32) * 4;
            let paddr = 0x20_0000 + i * 64;
            agent.decide_prefetch(black_box(pc), black_box(paddr), i.is_multiple_of(3))
        });
    });

    g.bench_function("decide_and_reward_load_roundtrip", |b| {
        let mut agent = AthenaAgent::new(RlConfig::default_config());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let (_, meta) = agent.decide_load(0x400 + (i % 64) * 4, 0x30_0000 + i * 64);
            let served = if i.is_multiple_of(4) {
                Level::Dram
            } else {
                Level::L2
            };
            agent.reward_load(black_box(meta), served);
        });
    });

    g.finish();
}

criterion_group!(benches, rl_benches);
criterion_main!(benches);
