//! Criterion benchmarks for the extension experiments (E1–E6): the
//! off-chip predictor head-to-head (incl. LP), the LLC replacement
//! ablation, the threshold/feature/storage sensitivity sweeps, and the
//! victim-cache comparison. Bench scale mirrors `benches/figures.rs`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use tlp_harness::experiments::{
    ext01_offchip, ext02_replacement, ext03_thresholds, ext04_features, ext05_storage,
    ext06_victim, ext07_rl,
};
use tlp_harness::{Harness, RunConfig};

fn bench_rc() -> RunConfig {
    let mut rc = RunConfig::test();
    rc.instructions = 12_000;
    rc.warmup = 2_500;
    rc.workloads_per_suite = Some(2);
    rc.mixes_per_suite = 1;
    rc
}

fn extension_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));

    g.bench_function("ext01_offchip_head_to_head", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| ext01_offchip::run(&h));
    });
    g.bench_function("ext02_replacement_ablation", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| ext02_replacement::run(&h));
    });
    g.bench_function("ext03_threshold_sweeps", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| {
            (
                ext03_thresholds::run_tau_high(&h),
                ext03_thresholds::run_tau_low(&h),
                ext03_thresholds::run_tau_pref(&h),
            )
        });
    });
    g.bench_function("ext04_feature_ablation", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| ext04_features::run(&h));
    });
    g.bench_function("ext05_storage_sweep", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| ext05_storage::run(&h));
    });
    g.bench_function("ext06_victim_cache", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| ext06_victim::run(&h));
    });
    g.bench_function("ext07_rl_coordination", |b| {
        let h = Harness::new(bench_rc());
        b.iter(|| (ext07_rl::run(&h), ext07_rl::run_learning_curve(&h)));
    });
    g.finish();
}

criterion_group!(benches, extension_benches);
criterion_main!(benches);
