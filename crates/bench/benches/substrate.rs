//! Micro-benchmarks of the substrate: raw simulation throughput, trace
//! generation speed, predictor prediction/training rates — the ablation
//! benches DESIGN.md calls out for the design choices (hashed perceptron
//! vs table sizes, graph build, streaming vs captured traces).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use tlp_core::offchip_base::{OffChipPerceptron, OffChipPerceptronConfig};
use tlp_sim::engine::{CoreSetup, System};
use tlp_sim::SystemConfig;
use tlp_trace::catalog::{self, Scale};
use tlp_trace::gap::{Graph, GraphKind, GraphScale};
use tlp_trace::source::capture;
use tlp_trace::VecTrace;

fn substrate_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));

    // Simulation throughput: instructions per second of wall time.
    let workload = catalog::workload("bfs.kron", Scale::Tiny).expect("known");
    let records = capture(workload.as_ref(), 30_000);
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("simulate_20k_instructions", |b| {
        b.iter_batched(
            || VecTrace::looping("bfs", records.clone()),
            |trace| {
                let mut sys = System::new(
                    SystemConfig::cascade_lake(1),
                    vec![CoreSetup::new(Box::new(trace))],
                );
                sys.run(5_000, 20_000)
            },
            BatchSize::SmallInput,
        );
    });

    // Trace generation throughput.
    g.throughput(Throughput::Elements(50_000));
    g.bench_function("generate_50k_records_gap", |b| {
        b.iter(|| capture(workload.as_ref(), 50_000));
    });

    // Graph construction.
    g.throughput(Throughput::Elements(1));
    g.bench_function("build_kron_tiny", |b| {
        b.iter(|| Graph::build(GraphKind::Kron, GraphScale::Tiny, 7));
    });

    // Perceptron predict+train rate (the TLP inner loop).
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("offchip_perceptron_predict_train_10k", |b| {
        b.iter_batched(
            || OffChipPerceptron::new(OffChipPerceptronConfig::paper()),
            |mut p| {
                for i in 0..10_000u64 {
                    let (sum, idx) = p.predict(0x400 + (i % 16) * 4, i * 64);
                    p.train(&idx, sum, i % 3 == 0);
                }
                p
            },
            BatchSize::SmallInput,
        );
    });

    // LP residency predict+train rate (extension baseline inner loop).
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("lp_predict_train_10k", |b| {
        use tlp_baselines::{Lp, LpConfig};
        use tlp_sim::hooks::{LoadCtx, OffChipPredictor};
        use tlp_sim::types::Level;
        b.iter_batched(
            || Lp::new(LpConfig::hpca22()),
            |mut lp| {
                for i in 0..10_000u64 {
                    let ctx = LoadCtx {
                        core: 0,
                        pc: 0x400,
                        vaddr: (i % 4096) * 64,
                        cycle: i,
                    };
                    let tag = lp.predict_load(&ctx);
                    let served = if i % 3 == 0 { Level::Dram } else { Level::L2 };
                    lp.train_load(&ctx, &tag, served);
                }
                lp
            },
            BatchSize::SmallInput,
        );
    });

    // Replacement-policy victim-selection rate (cache inner loop), one
    // measurement per policy.
    for kind in tlp_sim::replacement::ReplKind::ALL {
        g.throughput(Throughput::Elements(10_000));
        g.bench_function(format!("replacement_{}_10k", kind.name()), |b| {
            b.iter_batched(
                || kind.build(64, 8),
                |mut p| {
                    for i in 0..10_000usize {
                        let set = i % 64;
                        p.on_fill(set, i % 8);
                        let _ = p.victim(set, 8);
                    }
                    p
                },
                BatchSize::SmallInput,
            );
        });
    }

    // Trace file encode/decode throughput.
    g.throughput(Throughput::Elements(30_000));
    g.bench_function("trace_file_encode_decode_30k", |b| {
        let recs = capture(workload.as_ref(), 30_000);
        b.iter(|| {
            let bytes = tlp_trace::file::encode_trace("bfs.kron", true, &recs);
            tlp_trace::file::decode_trace(bytes).expect("roundtrip")
        });
    });
    g.finish();
}

criterion_group!(benches, substrate_benches);
criterion_main!(benches);
