//! Cycle engine vs. event engine on memory-bound workloads: the same
//! system simulated under both [`EngineMode`]s, so the wall-time ratio is
//! exactly the idle-cycle-skipping win (the reports are bit-identical —
//! `tests/determinism.rs` pins that; this bench only measures).
//!
//! `scripts/bench-engine.sh` runs the JSON-emitting race
//! (`examples/engine_race.rs`); this target keeps the comparison in the
//! Criterion suite so regressions in either engine show up next to the
//! other benches.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use tlp_harness::{L1Pf, Scheme};
use tlp_sim::engine::System;
use tlp_sim::{EngineMode, SystemConfig};
use tlp_trace::catalog::{self, Scale};
use tlp_trace::{TraceRecord, VecTrace};

const WARMUP: u64 = 5_000;
const INSTRUCTIONS: u64 = 30_000;

/// One captured trace per workload, re-wrapped per iteration (capture is
/// far slower than the simulation at this budget).
fn capture(name: &str) -> Vec<TraceRecord> {
    let w = catalog::workload(name, Scale::Quick).expect("workload in catalog");
    tlp_trace::source::capture(w.as_ref(), (WARMUP + INSTRUCTIONS) as usize + 4096)
}

fn run(records: &[TraceRecord], name: &str, mode: EngineMode) -> u64 {
    let trace = VecTrace::new(name, records.to_vec());
    let setup = Scheme::Baseline.build_setup(Box::new(trace), L1Pf::Ipcp);
    let mut sys = System::new(SystemConfig::cascade_lake(1), vec![setup]).with_engine_mode(mode);
    sys.run(WARMUP, INSTRUCTIONS).total_cycles
}

fn engine_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));

    // A memory-bound SPEC workload (pointer chasing, high off-chip MPKI)
    // and the most memory-bound GAP workload at this scale: the shapes
    // where the event engine's idle-cycle skipping matters.
    for name in ["spec.mcf_06", "bfs.urand"] {
        let records = capture(name);
        for mode in EngineMode::ALL {
            g.bench_function(format!("{name}/{mode}"), |b| {
                b.iter(|| run(&records, name, mode));
            });
        }
    }
    g.finish();
}

criterion_group!(engine, engine_benches);
criterion_main!(engine);
