//! Steady-state tick cost of the zero-alloc busy phase: a warmed system
//! (scratch buffers, waiter freelists, DRAM queues, page table all at
//! capacity) ticked in fixed batches. `tests/zero_alloc.rs` pins that
//! this loop performs zero allocations; this bench watches what that
//! loop costs, so an accidental per-cycle allocation or a hot-loop
//! regression shows up as a throughput drop next to the other benches.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use tlp_sim::engine::{CoreSetup, System};
use tlp_sim::SystemConfig;
use tlp_trace::source::TraceSource;
use tlp_trace::{Reg, TraceRecord};

/// Cycles ticked per bench iteration.
const BATCH: u64 = 10_000;

/// An endless cyclic instruction stream over a bounded working set: 128
/// lines, a store every seventh record, small caches missing
/// constantly. Generating on the fly (rather than pre-capturing)
/// keeps the source infinite, so the warmed system never quiesces no
/// matter how many batches Criterion asks for.
struct CyclicTrace {
    i: u64,
}

impl TraceSource for CyclicTrace {
    fn next_record(&mut self) -> Option<TraceRecord> {
        let i = self.i;
        self.i += 1;
        let addr = 0x10_0000 + (i % 128) * 64;
        Some(if i % 7 == 3 {
            TraceRecord::store(0x404, addr, 8, Some(Reg(1)), None)
        } else {
            TraceRecord::load(0x400, addr, 8, Reg(1), [None, None])
        })
    }

    fn name(&self) -> &str {
        "cyclic"
    }
}

fn alloc_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.throughput(Throughput::Elements(BATCH));

    // One long-lived warmed system, ticked forward batch by batch: the
    // measured region is exactly the allocation-free steady state.
    let cfg = SystemConfig::test_tiny(1);
    let mut sys = System::new(cfg, vec![CoreSetup::new(Box::new(CyclicTrace { i: 0 }))]);
    for _ in 0..40_000 {
        sys.tick();
    }
    g.bench_function("steady_state_ticks", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                sys.tick();
            }
            sys.cycle()
        });
    });
    g.finish();
}

criterion_group!(alloc, alloc_benches);
criterion_main!(alloc);
