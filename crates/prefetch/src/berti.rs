//! Berti: a local-delta L1D prefetcher selected by *timeliness*
//! (Navarro-Torres et al., MICRO 2022) — the paper's second L1D prefetcher.
//!
//! Berti's insight: for each load IP, learn the set of address deltas that
//! would have produced a *timely* prefetch (one that completes before the
//! demand arrives), by replaying the IP's recent access history when a miss
//! resolves and its latency becomes known. Deltas with high coverage are
//! prefetched into L1; medium-coverage deltas into L2 only.

use std::collections::VecDeque;

use tlp_sim::hooks::{DemandAccess, L1Prefetcher, PrefetchCandidate};
use tlp_sim::types::{Cycle, LINE_SIZE};

const IP_TABLE_SIZE: usize = 64;
const HISTORY_LEN: usize = 16;
const MAX_DELTAS: usize = 16;
const PENDING_LEN: usize = 64;
/// Coverage (percent) above which a delta prefetches into L1.
const L1_COVERAGE: u32 = 65;
/// Coverage (percent) above which a delta prefetches into L2.
const L2_COVERAGE: u32 = 35;
/// Occurrences needed before a delta is trusted.
const MIN_OCCURRENCES: u32 = 4;

#[derive(Debug, Clone, Copy)]
struct DeltaInfo {
    delta: i32,
    occurrences: u32,
    timely: u32,
}

impl DeltaInfo {
    fn coverage(&self) -> u32 {
        (self.timely * 100)
            .checked_div(self.occurrences)
            .unwrap_or(0)
    }
}

#[derive(Debug, Clone, Default)]
struct IpEntry {
    valid: bool,
    tag: u64,
    /// Recent (line, cycle) accesses of this IP.
    history: VecDeque<(u64, Cycle)>,
    deltas: Vec<DeltaInfo>,
}

#[derive(Debug, Clone, Copy)]
struct PendingMiss {
    line: u64,
    ip_idx: usize,
    issue_cycle: Cycle,
}

/// The Berti prefetcher.
#[derive(Debug)]
pub struct Berti {
    table: Vec<IpEntry>,
    pending: VecDeque<PendingMiss>,
    max_degree: usize,
}

impl Berti {
    /// Creates Berti with default geometry.
    #[must_use]
    pub fn new() -> Self {
        Self::with_scale(1)
    }

    /// Creates Berti with its IP table enlarged by a power-of-two `scale`
    /// (the Figure-17 "+7 KB storage" design).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a power of two.
    #[must_use]
    pub fn with_scale(scale: usize) -> Self {
        assert!(scale.is_power_of_two(), "scale must be a power of two");
        Self {
            table: vec![IpEntry::default(); IP_TABLE_SIZE * scale],
            pending: VecDeque::with_capacity(PENDING_LEN),
            max_degree: 4,
        }
    }

    fn ip_index(&self, pc: u64) -> usize {
        ((pc >> 2) ^ (pc >> 9)) as usize & (self.table.len() - 1)
    }

    fn credit_deltas(&mut self, pend: PendingMiss, latency: Cycle) {
        let entry = &mut self.table[pend.ip_idx];
        if !entry.valid {
            return;
        }
        // A prefetch issued at a history access would have completed at
        // (history cycle + latency); it is timely iff that is no later than
        // the demand itself.
        let cutoff = pend.issue_cycle.saturating_sub(latency);
        for &(hline, hcycle) in &entry.history {
            if hline == pend.line {
                continue;
            }
            let delta = pend.line as i64 - hline as i64;
            if delta == 0 || delta.unsigned_abs() > 4096 {
                continue;
            }
            let delta = delta as i32;
            let timely = hcycle <= cutoff;
            if let Some(d) = entry.deltas.iter_mut().find(|d| d.delta == delta) {
                d.occurrences += 1;
                if timely {
                    d.timely += 1;
                }
            } else if entry.deltas.len() < MAX_DELTAS {
                entry.deltas.push(DeltaInfo {
                    delta,
                    occurrences: 1,
                    timely: u32::from(timely),
                });
            } else {
                // Replace the weakest delta.
                if let Some(w) = entry
                    .deltas
                    .iter_mut()
                    .min_by_key(|d| (d.coverage(), d.occurrences))
                {
                    *w = DeltaInfo {
                        delta,
                        occurrences: 1,
                        timely: u32::from(timely),
                    };
                }
            }
        }
    }
}

impl Default for Berti {
    fn default() -> Self {
        Self::new()
    }
}

impl L1Prefetcher for Berti {
    fn on_access(&mut self, access: &DemandAccess, out: &mut Vec<PrefetchCandidate>) {
        let line = access.vaddr / LINE_SIZE;
        let idx = self.ip_index(access.pc);
        let e = &mut self.table[idx];
        if !e.valid || e.tag != access.pc {
            *e = IpEntry {
                valid: true,
                tag: access.pc,
                history: VecDeque::with_capacity(HISTORY_LEN),
                deltas: Vec::new(),
            };
        }
        let e = &mut self.table[idx];
        // Issue prefetches from trusted deltas (best coverage first).
        let mut ranked: Vec<DeltaInfo> = e
            .deltas
            .iter()
            .copied()
            .filter(|d| d.occurrences >= MIN_OCCURRENCES && d.coverage() >= L2_COVERAGE)
            .collect();
        ranked.sort_by_key(|d| std::cmp::Reverse(d.coverage()));
        for d in ranked.iter().take(self.max_degree) {
            let target = line as i64 + i64::from(d.delta);
            if target > 0 {
                out.push(PrefetchCandidate {
                    vaddr: target as u64 * LINE_SIZE,
                    fill_l1: d.coverage() >= L1_COVERAGE,
                });
            }
        }
        // Record the access and, on a miss, a pending entry for latency
        // measurement.
        if e.history.len() >= HISTORY_LEN {
            e.history.pop_front();
        }
        e.history.push_back((line, access.cycle));
        if !access.hit {
            if self.pending.len() >= PENDING_LEN {
                self.pending.pop_front();
            }
            self.pending.push_back(PendingMiss {
                line,
                ip_idx: idx,
                issue_cycle: access.cycle,
            });
        }
    }

    fn on_fill(&mut self, vaddr: u64, cycle: Cycle) {
        let line = vaddr / LINE_SIZE;
        if let Some(pos) = self.pending.iter().position(|p| p.line == line) {
            let pend = self.pending.remove(pos).expect("position valid");
            let latency = cycle.saturating_sub(pend.issue_cycle);
            self.credit_deltas(pend, latency);
        }
    }

    fn name(&self) -> &'static str {
        "berti"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(pc: u64, vaddr: u64, cycle: Cycle, hit: bool) -> DemandAccess {
        DemandAccess {
            core: 0,
            pc,
            vaddr,
            hit,
            is_store: false,
            cycle,
        }
    }

    /// Drives a strided miss stream with `latency`-cycle fills.
    fn drive_stream(
        p: &mut Berti,
        stride: u64,
        n: u64,
        gap: Cycle,
        latency: Cycle,
    ) -> Vec<PrefetchCandidate> {
        let mut out = Vec::new();
        let mut last = Vec::new();
        for i in 0..n {
            let t = i * gap;
            let va = 0x100_0000 + i * stride * LINE_SIZE;
            last.clear();
            p.on_access(&access(0x400, va, t, false), &mut last);
            p.on_fill(va, t + latency);
            out.extend(last.iter().copied());
        }
        last
    }

    #[test]
    fn learns_timely_delta_on_strided_misses() {
        let mut p = Berti::new();
        // Accesses every 20 cycles, fills take 100 cycles: a delta of ≥5
        // strides is timely; the (cumulative) large deltas dominate.
        let last = drive_stream(&mut p, 1, 40, 20, 100);
        assert!(
            !last.is_empty(),
            "Berti must eventually prefetch on a steady stream"
        );
        // Targets must be ahead of the access.
        let va = 0x100_0000 + 39 * LINE_SIZE;
        assert!(last.iter().all(|c| c.vaddr > va));
    }

    #[test]
    fn high_coverage_deltas_fill_l1() {
        let mut p = Berti::new();
        let last = drive_stream(&mut p, 2, 60, 50, 80);
        assert!(!last.is_empty());
        assert!(
            last.iter().any(|c| c.fill_l1),
            "steady timely deltas must reach L1 coverage"
        );
    }

    #[test]
    fn slow_fills_suppress_short_deltas() {
        // With fills slower than the reuse distance of small deltas, only
        // long deltas qualify as timely.
        let mut p = Berti::new();
        let _ = drive_stream(&mut p, 1, 40, 10, 1000);
        let e = &p.table[p.ip_index(0x400)];
        let timely_small = e
            .deltas
            .iter()
            .find(|d| d.delta == 1)
            .map_or(0, DeltaInfo::coverage);
        assert!(
            timely_small < L1_COVERAGE,
            "delta 1 cannot be timely under 1000-cycle fills: {timely_small}"
        );
    }

    #[test]
    fn random_accesses_learn_nothing() {
        let mut p = Berti::new();
        let mut out = Vec::new();
        let mut x = 777u64;
        for i in 0..100 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let va = (x % (1 << 30)) & !(LINE_SIZE - 1);
            p.on_access(&access(0x400, va, i * 30, false), &mut out);
            p.on_fill(va, i * 30 + 90);
        }
        assert!(
            out.len() < 20,
            "random stream must stay mostly quiet: {}",
            out.len()
        );
    }

    #[test]
    fn fills_without_pending_are_ignored() {
        let mut p = Berti::new();
        p.on_fill(0x0dea_d000, 100); // must not panic
    }
}
