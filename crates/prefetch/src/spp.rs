//! SPP: Signature Path Prefetcher (Kim et al., MICRO 2016) — the paper's
//! L2 prefetcher (Table III), and the engine underneath PPF.
//!
//! SPP compresses the recent delta history within a page into a 12-bit
//! *signature*, looks the signature up in a pattern table to predict the
//! next delta, and follows the predicted path ahead of the program with a
//! multiplicative *path confidence*. High-confidence prefetches fill the
//! L2; lower-confidence ones fill only the LLC.

use tlp_sim::hooks::{L2Access, L2PrefetchCandidate, L2Prefetcher};
use tlp_sim::types::{line_offset_in_page, page_of, LINES_PER_PAGE, LINE_SIZE};

const SIG_TABLE_SIZE: usize = 256;
const PATTERN_TABLE_SIZE: usize = 512;
const DELTAS_PER_SIG: usize = 4;
const SIG_BITS: u32 = 12;

/// Tuning knobs (PPF runs SPP in a much more aggressive configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SppConfig {
    /// Path confidence (percent) below which lookahead stops.
    pub lookahead_threshold: u32,
    /// Path confidence (percent) at or above which fills go to L2
    /// (below: LLC only).
    pub fill_threshold: u32,
    /// Maximum lookahead depth.
    pub max_depth: u8,
}

impl SppConfig {
    /// The stock MICRO'16 configuration.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            lookahead_threshold: 25,
            fill_threshold: 90,
            max_depth: 8,
        }
    }

    /// The aggressive configuration PPF is built on: prefetch far down
    /// low-confidence paths and let the filter prune.
    #[must_use]
    pub fn aggressive() -> Self {
        Self {
            lookahead_threshold: 10,
            fill_threshold: 75,
            max_depth: 12,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct SigEntry {
    valid: bool,
    page: u64,
    last_offset: u8,
    signature: u16,
}

#[derive(Debug, Clone, Copy, Default)]
struct PatternDelta {
    delta: i8,
    c_delta: u16,
}

#[derive(Debug, Clone, Copy, Default)]
struct PatternEntry {
    c_sig: u16,
    deltas: [PatternDelta; DELTAS_PER_SIG],
}

/// The SPP prefetcher.
#[derive(Debug)]
pub struct Spp {
    cfg: SppConfig,
    sig_table: Vec<SigEntry>,
    pattern: Vec<PatternEntry>,
}

impl Spp {
    /// Creates SPP with the given configuration.
    #[must_use]
    pub fn new(cfg: SppConfig) -> Self {
        Self {
            cfg,
            sig_table: vec![SigEntry::default(); SIG_TABLE_SIZE],
            pattern: vec![PatternEntry::default(); PATTERN_TABLE_SIZE],
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> SppConfig {
        self.cfg
    }

    fn sig_update(sig: u16, delta: i8) -> u16 {
        ((sig << 3) ^ (delta as u16 & 0x3f)) & ((1 << SIG_BITS) - 1)
    }

    fn pattern_index(sig: u16) -> usize {
        (sig as usize) & (PATTERN_TABLE_SIZE - 1)
    }

    fn train(&mut self, sig: u16, delta: i8) {
        let e = &mut self.pattern[Self::pattern_index(sig)];
        e.c_sig = e.c_sig.saturating_add(1);
        if let Some(d) = e.deltas.iter_mut().find(|d| d.delta == delta) {
            d.c_delta = d.c_delta.saturating_add(1);
        } else if let Some(d) = e.deltas.iter_mut().min_by_key(|d| d.c_delta) {
            *d = PatternDelta { delta, c_delta: 1 };
        }
        // Periodic halving keeps counters adaptive.
        if e.c_sig >= 1024 {
            e.c_sig /= 2;
            for d in &mut e.deltas {
                d.c_delta /= 2;
            }
        }
    }

    fn best_delta(&self, sig: u16) -> Option<(i8, u32)> {
        let e = &self.pattern[Self::pattern_index(sig)];
        if e.c_sig == 0 {
            return None;
        }
        e.deltas
            .iter()
            .filter(|d| d.c_delta > 0 && d.delta != 0)
            .max_by_key(|d| d.c_delta)
            .map(|d| (d.delta, u32::from(d.c_delta) * 100 / u32::from(e.c_sig)))
    }
}

impl L2Prefetcher for Spp {
    fn on_access(&mut self, access: &L2Access, out: &mut Vec<L2PrefetchCandidate>) {
        let page = page_of(access.paddr);
        let offset = line_offset_in_page(access.paddr) as u8;
        let idx = (page as usize) & (SIG_TABLE_SIZE - 1);
        let e = &mut self.sig_table[idx];
        let (old_sig, have_history) = if e.valid && e.page == page {
            (e.signature, true)
        } else {
            *e = SigEntry {
                valid: true,
                page,
                last_offset: offset,
                signature: 0,
            };
            (0, false)
        };
        if have_history {
            let delta = offset as i16 - e.last_offset as i16;
            if delta != 0 {
                let delta = delta as i8;
                self.train(old_sig, delta);
                let e = &mut self.sig_table[idx];
                e.signature = Self::sig_update(old_sig, delta);
                e.last_offset = offset;
            }
        }
        // Lookahead along the signature path.
        let mut sig = self.sig_table[idx].signature;
        let mut conf = 100u32;
        let mut offset = i16::from(offset);
        for depth in 1..=self.cfg.max_depth {
            let Some((delta, dconf)) = self.best_delta(sig) else {
                break;
            };
            conf = conf * dconf / 100;
            if conf < self.cfg.lookahead_threshold {
                break;
            }
            offset += i16::from(delta);
            if offset < 0 || offset >= LINES_PER_PAGE as i16 {
                break; // SPP stays within the physical page
            }
            out.push(L2PrefetchCandidate {
                paddr: page * LINES_PER_PAGE * LINE_SIZE + offset as u64 * LINE_SIZE,
                fill_llc_only: conf < self.cfg.fill_threshold,
                signature: u32::from(sig),
                confidence: conf,
                depth,
            });
            sig = Self::sig_update(sig, delta);
        }
    }

    fn name(&self) -> &'static str {
        "spp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(paddr: u64) -> L2Access {
        L2Access {
            core: 0,
            pc: 0x400,
            paddr,
            hit: false,
            cycle: 0,
        }
    }

    fn page_addr(page: u64, line: u64) -> u64 {
        page * 4096 + line * 64
    }

    #[test]
    fn learns_unit_stride_within_page() {
        let mut p = Spp::new(SppConfig::standard());
        let mut out = Vec::new();
        // Train on several pages with a unit-stride pattern.
        for page in 0..6u64 {
            for line in 0..30u64 {
                out.clear();
                p.on_access(&access(page_addr(100 + page, line)), &mut out);
            }
        }
        assert!(!out.is_empty(), "trained SPP must prefetch on unit stride");
        // All candidates stay within the page and run ahead.
        for c in &out {
            assert_eq!(c.paddr / 4096, 105);
            assert!(c.paddr % 4096 / 64 > 29 - 8);
            assert!(c.confidence <= 100);
        }
    }

    #[test]
    fn lookahead_depth_grows_with_confidence() {
        let mut p = Spp::new(SppConfig::standard());
        let mut out = Vec::new();
        for page in 0..20u64 {
            for line in 0..40u64 {
                out.clear();
                p.on_access(&access(page_addr(200 + page, line)), &mut out);
            }
        }
        let max_depth = out.iter().map(|c| c.depth).max().unwrap_or(0);
        assert!(
            max_depth >= 2,
            "well-trained path must look ahead: {max_depth}"
        );
    }

    #[test]
    fn aggressive_config_prefetches_more() {
        let run = |cfg: SppConfig| {
            let mut p = Spp::new(cfg);
            let mut total = 0usize;
            let mut out = Vec::new();
            for page in 0..10u64 {
                for line in (0..40u64).step_by(2) {
                    out.clear();
                    p.on_access(&access(page_addr(300 + page, line)), &mut out);
                    total += out.len();
                }
            }
            total
        };
        let standard = run(SppConfig::standard());
        let aggressive = run(SppConfig::aggressive());
        assert!(
            aggressive > standard,
            "aggressive SPP must issue more: {aggressive} vs {standard}"
        );
    }

    #[test]
    fn low_confidence_fills_llc_only() {
        let mut p = Spp::new(SppConfig::aggressive());
        let mut all = Vec::new();
        let mut out = Vec::new();
        // A noisy pattern: the same signature sees different deltas on
        // different pages, so per-delta confidence stays below 100%.
        for page in 0..8u64 {
            let mut line = 0u64;
            for i in 0..30u64 {
                out.clear();
                p.on_access(&access(page_addr(400 + page, line)), &mut out);
                all.extend(out.iter().copied());
                line += 1 + ((i * 7 + page) % 2);
                if line >= 60 {
                    break;
                }
            }
        }
        assert!(!all.is_empty(), "aggressive SPP must produce candidates");
        assert!(
            all.iter().any(|c| c.fill_llc_only),
            "noisy paths must demote fills to LLC"
        );
    }

    #[test]
    fn prefetches_never_cross_the_page() {
        let mut p = Spp::new(SppConfig::aggressive());
        let mut out = Vec::new();
        for page in 0..6u64 {
            for line in 0..63u64 {
                p.on_access(&access(page_addr(500 + page, line)), &mut out);
            }
        }
        for c in &out {
            assert!(
                (500..512).contains(&(c.paddr / 4096)),
                "candidate left its page: {:x}",
                c.paddr
            );
        }
    }

    #[test]
    fn cold_page_is_silent() {
        let mut p = Spp::new(SppConfig::standard());
        let mut out = Vec::new();
        p.on_access(&access(page_addr(999, 5)), &mut out);
        assert!(out.is_empty());
    }
}
