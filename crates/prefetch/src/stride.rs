//! Classic per-PC stride prefetcher (reference design for tests/ablations).

use tlp_sim::hooks::{DemandAccess, L1Prefetcher, PrefetchCandidate};
use tlp_sim::types::LINE_SIZE;

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    valid: bool,
    tag: u64,
    last_line: u64,
    stride: i64,
    confidence: u8,
}

/// Per-PC stride detection with 2-bit confidence, issuing `degree`
/// prefetches once a stride repeats.
#[derive(Debug)]
pub struct StridePrefetcher {
    table: Vec<StrideEntry>,
    degree: u64,
}

impl StridePrefetcher {
    /// Confidence needed before prefetching.
    const THRESHOLD: u8 = 2;

    /// Creates a stride prefetcher (`entries` must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `degree` is zero.
    #[must_use]
    pub fn new(entries: usize, degree: u64) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        assert!(degree > 0, "degree must be positive");
        Self {
            table: vec![StrideEntry::default(); entries],
            degree,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc as usize >> 2) & (self.table.len() - 1)
    }
}

impl Default for StridePrefetcher {
    fn default() -> Self {
        Self::new(256, 2)
    }
}

impl L1Prefetcher for StridePrefetcher {
    fn on_access(&mut self, access: &DemandAccess, out: &mut Vec<PrefetchCandidate>) {
        let line = access.vaddr / LINE_SIZE;
        let idx = self.index(access.pc);
        let e = &mut self.table[idx];
        if !e.valid || e.tag != access.pc {
            *e = StrideEntry {
                valid: true,
                tag: access.pc,
                last_line: line,
                stride: 0,
                confidence: 0,
            };
            return;
        }
        let delta = line as i64 - e.last_line as i64;
        e.last_line = line;
        if delta == 0 {
            return;
        }
        if delta == e.stride {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.stride = delta;
            e.confidence = 0;
            return;
        }
        if e.confidence >= Self::THRESHOLD {
            for d in 1..=self.degree {
                let target = line as i64 + e.stride * d as i64;
                if target > 0 {
                    out.push(PrefetchCandidate {
                        vaddr: target as u64 * LINE_SIZE,
                        fill_l1: true,
                    });
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "stride"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(pc: u64, vaddr: u64) -> DemandAccess {
        DemandAccess {
            core: 0,
            pc,
            vaddr,
            hit: false,
            is_store: false,
            cycle: 0,
        }
    }

    #[test]
    fn learns_a_constant_stride() {
        let mut p = StridePrefetcher::default();
        let mut out = Vec::new();
        // Stride of 3 lines.
        for i in 0..5u64 {
            out.clear();
            p.on_access(&access(0x400, 0x10_000 + i * 3 * LINE_SIZE), &mut out);
        }
        assert_eq!(out.len(), 2);
        let base = 0x10_000 + 4 * 3 * LINE_SIZE;
        assert_eq!(out[0].vaddr, base + 3 * LINE_SIZE);
        assert_eq!(out[1].vaddr, base + 6 * LINE_SIZE);
    }

    #[test]
    fn random_pattern_stays_quiet() {
        let mut p = StridePrefetcher::default();
        let mut out = Vec::new();
        let mut x = 12345u64;
        for _ in 0..50 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            p.on_access(&access(0x400, (x % 100_000) * 64), &mut out);
        }
        assert!(
            out.len() < 8,
            "random addresses should rarely trigger: {}",
            out.len()
        );
    }

    #[test]
    fn different_pcs_track_independently() {
        let mut p = StridePrefetcher::default();
        let mut out = Vec::new();
        // PCs chosen not to collide in the 256-entry table.
        for i in 0..5u64 {
            p.on_access(&access(0x400, 0x10_000 + i * LINE_SIZE), &mut out);
            p.on_access(&access(0x804, 0x90_000 + i * 2 * LINE_SIZE), &mut out);
        }
        // Both PCs reach confidence and prefetch with their own strides.
        assert!(out.iter().any(|c| c.vaddr > 0x90_000));
        assert!(out.iter().any(|c| c.vaddr < 0x90_000));
    }

    #[test]
    fn negative_stride_supported() {
        let mut p = StridePrefetcher::new(64, 1);
        let mut out = Vec::new();
        for i in (0..8u64).rev() {
            out.clear();
            p.on_access(&access(0x400, 0x50_000 + i * LINE_SIZE), &mut out);
        }
        assert_eq!(out.len(), 1);
        assert!(out[0].vaddr < 0x50_000);
    }
}
