//! Next-line prefetcher: the simplest useful baseline.

use tlp_sim::hooks::{DemandAccess, L1Prefetcher, PrefetchCandidate};
use tlp_sim::types::LINE_SIZE;

/// Prefetches the next `degree` sequential lines on every demand access.
#[derive(Debug, Clone, Copy)]
pub struct NextLine {
    degree: u64,
}

impl NextLine {
    /// Creates a next-line prefetcher with the given degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    #[must_use]
    pub fn new(degree: u64) -> Self {
        assert!(degree > 0, "degree must be positive");
        Self { degree }
    }
}

impl Default for NextLine {
    fn default() -> Self {
        Self::new(1)
    }
}

impl L1Prefetcher for NextLine {
    fn on_access(&mut self, access: &DemandAccess, out: &mut Vec<PrefetchCandidate>) {
        for d in 1..=self.degree {
            out.push(PrefetchCandidate {
                vaddr: (access.vaddr & !(LINE_SIZE - 1)) + d * LINE_SIZE,
                fill_l1: true,
            });
        }
    }

    fn name(&self) -> &'static str {
        "next-line"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(vaddr: u64) -> DemandAccess {
        DemandAccess {
            core: 0,
            pc: 0x400,
            vaddr,
            hit: false,
            is_store: false,
            cycle: 0,
        }
    }

    #[test]
    fn prefetches_next_lines() {
        let mut p = NextLine::new(2);
        let mut out = Vec::new();
        p.on_access(&access(0x1008), &mut out);
        assert_eq!(
            out,
            vec![
                PrefetchCandidate {
                    vaddr: 0x1040,
                    fill_l1: true
                },
                PrefetchCandidate {
                    vaddr: 0x1080,
                    fill_l1: true
                },
            ]
        );
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn zero_degree_rejected() {
        let _ = NextLine::new(0);
    }
}
