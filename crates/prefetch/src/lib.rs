//! Hardware prefetchers for the TLP reproduction.
//!
//! The paper evaluates two state-of-the-art L1D prefetchers — IPCP
//! (ISCA'20) and Berti (MICRO'22) — on top of an L2 running SPP (MICRO'16).
//! This crate implements all three, plus next-line and stride reference
//! prefetchers used by tests and ablation benches. All of them plug into
//! the simulator through [`tlp_sim::hooks::L1Prefetcher`] /
//! [`tlp_sim::hooks::L2Prefetcher`].

pub mod berti;
pub mod ipcp;
pub mod nextline;
pub mod spp;
pub mod stride;

pub use berti::Berti;
pub use ipcp::Ipcp;
pub use nextline::NextLine;
pub use spp::{Spp, SppConfig};
pub use stride::StridePrefetcher;

/// Registers this crate's components with a plugin registry (origin
/// `tlp-prefetch`):
///
/// * L1D prefetchers **`ipcp`**, **`berti`** (parameter `scale` = table
///   scale factor, default 1), their Figure-17 pre-scaled spellings
///   **`ipcp+7KB`** / **`berti+7KB`** (no parameters), **`next-line`**
///   (parameter `degree`, default 1) and **`stride`**.
/// * L2 prefetcher **`spp`** (parameter `profile` =
///   `standard`|`aggressive`, default `standard`).
///
/// # Errors
///
/// Propagates registration collisions from the registry.
pub fn register_builtin(
    reg: &mut tlp_plugin::ComponentRegistry,
) -> Result<(), tlp_plugin::PluginError> {
    use std::sync::Arc;

    use tlp_plugin::PluginError;

    const ORIGIN: &str = "tlp-prefetch";

    reg.register_l1_prefetcher(
        "ipcp",
        ORIGIN,
        Arc::new(|params, _ctx| {
            params.allow_keys("ipcp", &["scale"])?;
            Ok(match params.get_parsed::<usize>("ipcp", "scale")? {
                None | Some(1) => Box::new(Ipcp::new()),
                Some(s) => Box::new(Ipcp::with_scale(s)),
            })
        }),
    )?;
    reg.register_l1_prefetcher(
        "berti",
        ORIGIN,
        Arc::new(|params, _ctx| {
            params.allow_keys("berti", &["scale"])?;
            Ok(match params.get_parsed::<usize>("berti", "scale")? {
                None | Some(1) => Box::new(Berti::new()),
                Some(s) => Box::new(Berti::with_scale(s)),
            })
        }),
    )?;
    reg.register_l1_prefetcher(
        "ipcp+7KB",
        ORIGIN,
        Arc::new(|params, _ctx| {
            params.allow_keys("ipcp+7KB", &[])?;
            Ok(Box::new(Ipcp::with_scale(4)))
        }),
    )?;
    reg.register_l1_prefetcher(
        "berti+7KB",
        ORIGIN,
        Arc::new(|params, _ctx| {
            params.allow_keys("berti+7KB", &[])?;
            Ok(Box::new(Berti::with_scale(4)))
        }),
    )?;
    reg.register_l1_prefetcher(
        "next-line",
        ORIGIN,
        Arc::new(|params, _ctx| {
            params.allow_keys("next-line", &["degree"])?;
            let degree = params
                .get_parsed::<u64>("next-line", "degree")?
                .unwrap_or(1);
            Ok(Box::new(NextLine::new(degree)))
        }),
    )?;
    reg.register_l1_prefetcher(
        "stride",
        ORIGIN,
        Arc::new(|params, _ctx| {
            params.allow_keys("stride", &[])?;
            Ok(Box::new(StridePrefetcher::default()))
        }),
    )?;
    reg.register_l2_prefetcher(
        "spp",
        ORIGIN,
        Arc::new(|params, _ctx| {
            params.allow_keys("spp", &["profile"])?;
            let cfg = match params.get("profile") {
                None | Some("standard") => SppConfig::standard(),
                Some("aggressive") => SppConfig::aggressive(),
                Some(other) => {
                    return Err(PluginError::InvalidParam {
                        component: "spp".to_owned(),
                        param: "profile".to_owned(),
                        message: format!(
                            "unknown profile '{other}' (expected standard or aggressive)"
                        ),
                    })
                }
            };
            Ok(Box::new(Spp::new(cfg)))
        }),
    )?;
    Ok(())
}
