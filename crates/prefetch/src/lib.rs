//! Hardware prefetchers for the TLP reproduction.
//!
//! The paper evaluates two state-of-the-art L1D prefetchers — IPCP
//! (ISCA'20) and Berti (MICRO'22) — on top of an L2 running SPP (MICRO'16).
//! This crate implements all three, plus next-line and stride reference
//! prefetchers used by tests and ablation benches. All of them plug into
//! the simulator through [`tlp_sim::hooks::L1Prefetcher`] /
//! [`tlp_sim::hooks::L2Prefetcher`].

pub mod berti;
pub mod ipcp;
pub mod nextline;
pub mod spp;
pub mod stride;

pub use berti::Berti;
pub use ipcp::Ipcp;
pub use nextline::NextLine;
pub use spp::{Spp, SppConfig};
pub use stride::StridePrefetcher;
