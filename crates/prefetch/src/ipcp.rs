//! IPCP: Instruction Pointer Classification-based Prefetcher
//! (Pakalapati & Panda, ISCA 2020) — the paper's primary L1D prefetcher.
//!
//! IPCP classifies each load IP into one of four classes and prefetches
//! accordingly:
//!
//! * **CS** (constant stride): the IP repeats a stable line stride —
//!   prefetch `degree` lines down the stride.
//! * **CPLX** (complex stride): the stride varies but is predictable from a
//!   signature of recent strides — predict the next strides through the
//!   Complex Stride Prediction Table (CSPT) and chain prefetches with
//!   decreasing confidence.
//! * **GS** (global stream): the program streams through memory densely
//!   (detected per region, across IPs) — prefetch aggressively ahead.
//! * **NL** (next line): cold/unclassified IPs fall back to next-line.
//!
//! Class priority follows the paper: GS > CS > CPLX > NL.

use tlp_sim::hooks::{DemandAccess, L1Prefetcher, PrefetchCandidate};
use tlp_sim::types::{line_offset_in_page, page_of, LINE_SIZE};

const IP_TABLE_SIZE: usize = 128;
const CSPT_SIZE: usize = 512;
const REGION_TABLE_SIZE: usize = 16;
/// Lines per tracked region (a 4 KB page).
const REGION_LINES: u64 = 64;

#[derive(Debug, Clone, Copy, Default)]
struct IpEntry {
    valid: bool,
    tag: u16,
    last_line: u64,
    stride: i32,
    cs_conf: u8,
    signature: u16,
}

#[derive(Debug, Clone, Copy, Default)]
struct CsptEntry {
    stride: i32,
    conf: u8,
}

#[derive(Debug, Clone, Copy, Default)]
struct RegionEntry {
    valid: bool,
    page: u64,
    touched: u64,
    /// Population count of `touched` (cached).
    dense: bool,
    ascending: bool,
    last_offset: u8,
}

/// The IPCP prefetcher.
#[derive(Debug)]
pub struct Ipcp {
    ip_table: Vec<IpEntry>,
    cspt: Vec<CsptEntry>,
    regions: Vec<RegionEntry>,
    region_clock: usize,
    cs_degree: u64,
    gs_degree: u64,
}

impl Ipcp {
    /// Creates IPCP with the paper's default degrees (CS 3, GS 4).
    #[must_use]
    pub fn new() -> Self {
        Self::with_scale(1)
    }

    /// Creates IPCP with its tables enlarged by a power-of-two `scale`
    /// (the Figure-17 "+7 KB storage" design).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a power of two.
    #[must_use]
    pub fn with_scale(scale: usize) -> Self {
        assert!(scale.is_power_of_two(), "scale must be a power of two");
        Self {
            ip_table: vec![IpEntry::default(); IP_TABLE_SIZE * scale],
            cspt: vec![CsptEntry::default(); CSPT_SIZE * scale],
            regions: vec![RegionEntry::default(); REGION_TABLE_SIZE],
            region_clock: 0,
            cs_degree: 4,
            gs_degree: 6,
        }
    }

    fn ip_index(&self, pc: u64) -> (usize, u16) {
        let idx = ((pc >> 2) as usize) & (self.ip_table.len() - 1);
        let tag = ((pc >> 9) & 0xffff) as u16;
        (idx, tag)
    }

    fn sig_push(sig: u16, stride: i32) -> u16 {
        // 12-bit signature: shift in the (signed, truncated) stride.
        ((sig << 3) ^ (stride as u16 & 0x3f)) & 0xfff
    }

    fn track_region(&mut self, vaddr: u64) -> (bool, bool) {
        let page = page_of(vaddr);
        let offset = line_offset_in_page(vaddr) as u8;
        if let Some(r) = self.regions.iter_mut().find(|r| r.valid && r.page == page) {
            r.touched |= 1 << offset;
            let count = r.touched.count_ones();
            r.dense = count >= REGION_LINES as u32 / 2;
            r.ascending = offset >= r.last_offset;
            r.last_offset = offset;
            return (r.dense, r.ascending);
        }
        let slot = self.region_clock % REGION_TABLE_SIZE;
        self.region_clock += 1;
        self.regions[slot] = RegionEntry {
            valid: true,
            page,
            touched: 1 << offset,
            dense: false,
            ascending: true,
            last_offset: offset,
        };
        (false, true)
    }
}

impl Default for Ipcp {
    fn default() -> Self {
        Self::new()
    }
}

impl L1Prefetcher for Ipcp {
    fn on_access(&mut self, access: &DemandAccess, out: &mut Vec<PrefetchCandidate>) {
        let line = access.vaddr / LINE_SIZE;
        let (dense, ascending) = self.track_region(access.vaddr);
        let (idx, tag) = self.ip_index(access.pc);
        let e = &mut self.ip_table[idx];
        if !e.valid || e.tag != tag {
            *e = IpEntry {
                valid: true,
                tag,
                last_line: line,
                stride: 0,
                cs_conf: 0,
                signature: 0,
            };
            // Unclassified IP: next-line fallback (NL class, degree 2).
            out.push(PrefetchCandidate {
                vaddr: (line + 1) * LINE_SIZE,
                fill_l1: true,
            });
            out.push(PrefetchCandidate {
                vaddr: (line + 2) * LINE_SIZE,
                fill_l1: false,
            });
            return;
        }
        let stride = (line as i64 - e.last_line as i64) as i32;
        e.last_line = line;
        if stride == 0 {
            return;
        }
        // Train CS confidence.
        if stride == e.stride {
            e.cs_conf = (e.cs_conf + 1).min(3);
        } else {
            e.cs_conf = e.cs_conf.saturating_sub(1);
            if e.cs_conf == 0 {
                e.stride = stride;
            }
        }
        // Train CPLX: the previous signature predicted this stride?
        let sig = e.signature;
        let cspt_idx = (sig as usize) & (self.cspt.len() - 1);
        let c = &mut self.cspt[cspt_idx];
        if c.stride == stride {
            c.conf = (c.conf + 1).min(3);
        } else {
            c.conf = c.conf.saturating_sub(1);
            if c.conf == 0 {
                c.stride = stride;
            }
        }
        e.signature = Self::sig_push(sig, stride);
        let signature = e.signature;
        let cs_ready = e.cs_conf >= 2;
        let cs_stride = e.stride;

        // Class priority: GS > CS > CPLX > NL.
        if dense {
            let dir: i64 = if ascending { 1 } else { -1 };
            for d in 1..=self.gs_degree {
                let target = line as i64 + dir * d as i64;
                if target > 0 {
                    out.push(PrefetchCandidate {
                        vaddr: target as u64 * LINE_SIZE,
                        // Far global-stream prefetches fill L2 only.
                        fill_l1: d <= 2,
                    });
                }
            }
        } else if cs_ready {
            for d in 1..=self.cs_degree {
                let target = line as i64 + i64::from(cs_stride) * d as i64;
                if target > 0 {
                    out.push(PrefetchCandidate {
                        vaddr: target as u64 * LINE_SIZE,
                        fill_l1: d <= 2,
                    });
                }
            }
        } else {
            // CPLX chain: follow predicted strides while confident.
            let mut sig = signature;
            let mut pos = line as i64;
            let mut issued = 0;
            for _ in 0..3 {
                let c = self.cspt[(sig as usize) & (self.cspt.len() - 1)];
                if c.conf < 1 || c.stride == 0 {
                    break;
                }
                pos += i64::from(c.stride);
                if pos <= 0 {
                    break;
                }
                out.push(PrefetchCandidate {
                    vaddr: pos as u64 * LINE_SIZE,
                    fill_l1: issued == 0,
                });
                issued += 1;
                sig = Self::sig_push(sig, c.stride);
            }
            if issued == 0 {
                // NL fallback (degree 2).
                out.push(PrefetchCandidate {
                    vaddr: (line + 1) * LINE_SIZE,
                    fill_l1: true,
                });
                out.push(PrefetchCandidate {
                    vaddr: (line + 2) * LINE_SIZE,
                    fill_l1: false,
                });
            }
        }
    }

    fn name(&self) -> &'static str {
        "ipcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(pc: u64, vaddr: u64) -> DemandAccess {
        DemandAccess {
            core: 0,
            pc,
            vaddr,
            hit: false,
            is_store: false,
            cycle: 0,
        }
    }

    #[test]
    fn cs_class_learns_constant_stride() {
        let mut p = Ipcp::new();
        let mut out = Vec::new();
        for i in 0..6u64 {
            out.clear();
            p.on_access(&access(0x400, 0x100_0000 + i * 2 * LINE_SIZE), &mut out);
        }
        // Stride 2: candidates at +2, +4, +6, +8 lines.
        let base = 0x100_0000 / LINE_SIZE + 10;
        let targets: Vec<u64> = out.iter().map(|c| c.vaddr / LINE_SIZE).collect();
        assert_eq!(
            targets,
            vec![base + 2, base + 4, base + 6, base + 8],
            "CS degree-4"
        );
    }

    #[test]
    fn nl_fallback_for_cold_ip() {
        let mut p = Ipcp::new();
        let mut out = Vec::new();
        p.on_access(&access(0x999, 0x200_0000), &mut out);
        assert_eq!(out.len(), 2, "NL fallback has degree 2");
        assert_eq!(out[0].vaddr, 0x200_0000 + LINE_SIZE);
        assert_eq!(out[1].vaddr, 0x200_0000 + 2 * LINE_SIZE);
    }

    #[test]
    fn cplx_learns_repeating_stride_pattern() {
        let mut p = Ipcp::new();
        let mut out = Vec::new();
        // Pattern of strides 1,3,1,3,... is not constant-stride but is
        // signature-predictable.
        let mut line = 0x400_0000u64 / LINE_SIZE;
        let strides = [1u64, 3, 1, 3, 1, 3, 1, 3, 1, 3, 1, 3, 1, 3, 1, 3];
        let mut produced = false;
        for (i, s) in strides.iter().enumerate() {
            out.clear();
            p.on_access(&access(0x500, line * LINE_SIZE), &mut out);
            line += s;
            if i > 10 && !out.is_empty() {
                produced = true;
            }
        }
        assert!(produced, "CPLX chain never fired on a periodic pattern");
    }

    #[test]
    fn gs_class_streams_on_dense_region() {
        let mut p = Ipcp::new();
        let mut out = Vec::new();
        // Touch 60 of 64 lines in one page with many PCs (dense region),
        // then the next access should stream with degree 4.
        for i in 0..60u64 {
            out.clear();
            p.on_access(
                &access(0x400 + (i % 7) * 8, 0x800_0000 + i * LINE_SIZE),
                &mut out,
            );
        }
        assert!(
            out.len() >= 6,
            "dense region must trigger GS degree-6: {}",
            out.len()
        );
    }

    #[test]
    fn far_prefetches_fill_l2_only() {
        let mut p = Ipcp::new();
        let mut out = Vec::new();
        for i in 0..6u64 {
            out.clear();
            p.on_access(&access(0x400, 0x100_0000 + i * LINE_SIZE), &mut out);
        }
        assert!(out.iter().any(|c| c.fill_l1));
        assert!(out.iter().any(|c| !c.fill_l1), "far degree fills L2 only");
    }
}
