//! End-to-end service tests: an in-process daemon on an ephemeral port,
//! real TCP clients, and the PR's acceptance criterion — two concurrent
//! clients requesting the same cold grid cause each unique cell to be
//! simulated exactly once, and both receive byte-identical tables.

use std::sync::Barrier;

use tlp_harness::{scheme_result, RunConfig, Session};
use tlp_serve::{Client, ServeError, Server, SweepRequest};

fn test_server() -> (tlp_serve::ServerHandle, std::net::SocketAddr) {
    let mut rc = RunConfig::test();
    rc.threads = 2;
    let server = Server::bind("127.0.0.1:0", Session::new(rc)).expect("bind an ephemeral port");
    let addr = server.local_addr().expect("bound address");
    (server.spawn().expect("spawn service"), addr)
}

fn baseline_sweep() -> SweepRequest {
    SweepRequest {
        scheme: "Baseline".to_owned(),
        l1pf: "ipcp".to_owned(),
        workloads: vec![], // the server's active set
    }
}

#[test]
fn two_concurrent_clients_share_one_grid_of_simulation() {
    let (handle, addr) = test_server();

    let barrier = Barrier::new(2);
    let (a, b) = std::thread::scope(|s| {
        let sweep = |_: ()| {
            let barrier = &barrier;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                client.sweep(&baseline_sweep()).expect("sweep succeeds")
            })
        };
        let a = sweep(());
        let b = sweep(());
        (a.join().expect("client a"), b.join().expect("client b"))
    });

    // The acceptance criterion: a 4-cell grid requested cold by two
    // clients at once costs exactly 4 simulations service-wide.
    assert_eq!(a.cells.len(), b.cells.len());
    let unique = a.cells.len() as u64;
    assert!(unique > 1, "the test grid must have multiple cells");
    for reply in [&a, &b] {
        assert_eq!(reply.summary.cells, unique);
        assert_eq!(
            reply.summary.stats.simulated, unique,
            "each unique cell simulated exactly once: {:?}",
            reply.summary.stats
        );
    }

    // Byte-identical result tables on both clients: render through the
    // same `scheme_result` path the in-process CLI uses.
    let render =
        |reply: &tlp_serve::SweepReply| scheme_result("Baseline", "ipcp", &reply.rows()).render();
    assert_eq!(
        render(&a),
        render(&b),
        "both clients render identical tables"
    );

    handle.shutdown();
}

#[test]
fn named_workload_requests_dedup_and_keep_request_order() {
    let (handle, addr) = test_server();
    let mut client = Client::connect(addr).expect("connect");

    // Learn the catalog from a full sweep, then ask for a named subset
    // in reverse order, with a duplicate.
    let all = client.sweep(&baseline_sweep()).expect("full sweep");
    let names: Vec<String> = all.cells.iter().map(|c| c.workload.clone()).collect();
    assert!(names.len() >= 2);

    let mut subset: Vec<String> = names.iter().rev().take(2).cloned().collect();
    subset.push(subset[0].clone()); // duplicate: must be deduped server-side
    let reply = client
        .sweep(&SweepRequest {
            workloads: subset.clone(),
            ..baseline_sweep()
        })
        .expect("subset sweep");
    let got: Vec<String> = reply.cells.iter().map(|c| c.workload.clone()).collect();
    assert_eq!(
        got,
        subset[..2],
        "request order preserved, duplicate dropped"
    );
    // Everything was already cached by the full sweep: no new simulation.
    assert_eq!(reply.summary.stats.simulated, names.len() as u64);

    handle.shutdown();
}

#[test]
fn rejected_requests_keep_the_connection_usable() {
    let (handle, addr) = test_server();
    let mut client = Client::connect(addr).expect("connect");

    let err = client
        .sweep(&SweepRequest {
            scheme: "Basline".to_owned(),
            ..baseline_sweep()
        })
        .expect_err("unknown scheme is rejected");
    match err {
        ServeError::Server(msg) => {
            assert!(msg.contains("Basline"), "names the offender: {msg}");
            assert!(msg.contains("Baseline"), "suggests the fix: {msg}");
        }
        other => panic!("expected a server rejection, got {other:?}"),
    }

    let err = client
        .sweep(&SweepRequest {
            workloads: vec!["no-such-workload".to_owned()],
            ..baseline_sweep()
        })
        .expect_err("unknown workload is rejected");
    assert!(matches!(err, ServeError::Server(_)), "got {err:?}");

    // The same connection still serves valid requests afterwards.
    let reply = client.sweep(&baseline_sweep()).expect("sweep after errors");
    assert!(!reply.cells.is_empty());

    handle.shutdown();
}

#[test]
fn stats_frame_reports_live_service_metrics() {
    let (handle, addr) = test_server();
    let mut client = Client::connect(addr).expect("connect");

    // A fresh daemon already answers STATS (zero counters).
    let cold = client.stats().expect("stats before any sweep");
    assert!(
        cold.contains("serve_requests_total 0"),
        "cold snapshot has zeroed counters:\n{cold}"
    );

    let reply = client.sweep(&baseline_sweep()).expect("sweep");
    let warm = client.stats().expect("stats after a sweep");

    // Serve-layer counters reflect the one request we made.
    assert!(
        warm.contains("serve_requests_total 1"),
        "one sweep request counted:\n{warm}"
    );
    assert!(
        warm.contains(&format!("serve_cells_streamed_total {}", reply.cells.len())),
        "every streamed cell counted:\n{warm}"
    );
    assert!(
        warm.contains("serve_errors_total 0"),
        "no errors counted:\n{warm}"
    );
    assert!(
        warm.contains("serve_requests_in_flight 0"),
        "the request is no longer in flight:\n{warm}"
    );
    // The latency histogram rendered quantile summaries.
    for q in ["0.5", "0.9", "0.99"] {
        assert!(
            warm.contains(&format!("serve_request_latency_ns{{quantile=\"{q}\"}}")),
            "latency quantile {q} present:\n{warm}"
        );
    }
    assert!(
        warm.contains("serve_request_latency_ns_count 1"),
        "one latency sample:\n{warm}"
    );
    // The shared run cache's registry is merged into the same snapshot.
    assert!(
        warm.contains(&format!(
            "run_cache_simulated_total {}",
            reply.summary.stats.simulated
        )),
        "run-cache counters ride along:\n{warm}"
    );

    handle.shutdown();
}

#[test]
fn a_second_connection_hits_the_warm_cache() {
    let (handle, addr) = test_server();

    let first = {
        let mut client = Client::connect(addr).expect("connect");
        client.sweep(&baseline_sweep()).expect("cold sweep")
    };
    let second = {
        let mut client = Client::connect(addr).expect("connect");
        client.sweep(&baseline_sweep()).expect("warm sweep")
    };

    assert_eq!(
        first.summary.stats.simulated, second.summary.stats.simulated,
        "the second client's grid is answered entirely from cache"
    );
    assert_eq!(
        first.cells, second.cells,
        "warm replies carry the exact same cells"
    );

    handle.shutdown();
}
