//! `tlp-repro`: regenerate the TLP paper's tables and figures.
//!
//! Usage:
//! ```text
//! tlp-repro [--test|--quick|--full] [--engine cycle|event] [--jobs N]
//!           [--cache-dir DIR] [fig1 fig2 ... | all]
//!           [--scheme NAME [--l1pf NAME]]
//!           [--list-schemes] [--list-prefetchers] [--list-components]
//!           [--profile FILE.json]
//!           [--serve HOST:PORT | --connect HOST:PORT [--stats]]
//! ```
//!
//! Simulations run through the harness's content-addressed run engine:
//! the grid of unique (workload × scheme × prefetcher × bandwidth) cells
//! is deduplicated across experiments, sharded over `--jobs` workers, and
//! — with `--cache-dir` — persisted so a repeated invocation performs no
//! simulation at all (see the `# run-engine:` summary line).
//!
//! Every figure of the paper's evaluation is available:
//! `fig1 fig2 fig3 fig4 fig5 fig6 fig10 fig11 fig12 fig13 fig14 fig15
//!  fig16 fig17 table2 table3 table45`, plus the extension studies
//! `ext1` (off-chip predictor head-to-head incl. LP), `ext2` (LLC
//! replacement ablation), `ext3` (threshold sweeps), `ext4`
//! (drop-one-feature), `ext5` (storage-budget sweep), `ext6` (victim
//! cache vs TLP), `ext7` (online-RL coordination head-to-head +
//! learning curve).
//!
//! `--serve HOST:PORT` turns the process into a simulation daemon (the
//! same service as the `tlp_serve` binary, sharing this invocation's
//! scale/engine/cache flags); `--connect HOST:PORT` runs `--scheme`
//! sweeps against a remote daemon instead of simulating locally — the
//! rendered tables are byte-identical either way.

use tlp_harness::experiments::{
    ext01_offchip, ext02_replacement, ext03_thresholds, ext04_features, ext05_storage,
    ext06_victim, ext07_rl, fig01, fig02, fig03, fig04, fig05, fig06, fig10, fig11, fig12, fig13,
    fig14, fig15, fig16, fig17, tables,
};
use tlp_harness::report::ExperimentResult;
use tlp_harness::{Harness, L1Pf, RunConfig, Session, TimelineRun};
use tlp_plugin::Seam;
use tlp_serve::{Client, ServeError, Server, SweepRequest, TimelineQuery};

const ALL_EXPERIMENTS: [&str; 23] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig15", "fig16", "fig17", "table2", "table3", "ext1", "ext2", "ext3", "ext4", "ext5", "ext6",
    "ext7",
];

/// Experiment names accepted on the command line beyond [`ALL_EXPERIMENTS`].
const EXTRA_NAMES: [&str; 2] = ["table45", "all"];

/// The closest known experiment names, best first (the "did you mean"
/// list; same machinery the registry uses for `--scheme`/`--l1pf`).
fn suggestions(unknown: &str) -> Vec<String> {
    tlp_plugin::suggest(
        unknown,
        ALL_EXPERIMENTS.iter().chain(EXTRA_NAMES.iter()).copied(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rc = RunConfig::quick();
    let mut requested: Vec<String> = Vec::new();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut formats: Vec<&'static str> = Vec::new();
    let mut jobs: Option<usize> = None;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut no_cache = false;
    let mut engine: Option<tlp_sim::EngineMode> = None;
    let mut schemes: Vec<String> = Vec::new();
    let mut l1pf_name: String = "ipcp".to_owned();
    let mut l1pf_given = false;
    let mut serve_addr: Option<String> = None;
    let mut connect_addr: Option<String> = None;
    let mut profile_path: Option<std::path::PathBuf> = None;
    let mut timeline_path: Option<std::path::PathBuf> = None;
    let mut check_timeline: Option<std::path::PathBuf> = None;
    let mut want_stats = false;
    let mut trace_dir: Option<std::path::PathBuf> = None;
    let mut import_traces: Vec<String> = Vec::new();
    let mut trace_info_args: Vec<String> = Vec::new();
    let mut workload_names: Vec<String> = Vec::new();
    let mut simpoints_k: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scheme" => match it.next() {
                Some(name) => schemes.push(name.clone()),
                None => {
                    eprintln!("--scheme requires a scheme name (--list-schemes shows all)");
                    std::process::exit(2);
                }
            },
            "--serve" => match it.next() {
                Some(v) => serve_addr = Some(v.clone()),
                None => {
                    eprintln!("--serve requires HOST:PORT (port 0 picks an ephemeral port)");
                    std::process::exit(2);
                }
            },
            "--connect" => match it.next() {
                Some(v) => connect_addr = Some(v.clone()),
                None => {
                    eprintln!("--connect requires HOST:PORT of a running daemon");
                    std::process::exit(2);
                }
            },
            "--profile" => match it.next() {
                Some(path) => profile_path = Some(path.into()),
                None => {
                    eprintln!("--profile requires an output file (e.g. --profile p.json)");
                    std::process::exit(2);
                }
            },
            "--timeline" => match it.next() {
                Some(path) => timeline_path = Some(path.into()),
                None => {
                    eprintln!("--timeline requires an output file (e.g. --timeline t.json)");
                    std::process::exit(2);
                }
            },
            "--check-timeline" => match it.next() {
                Some(path) => check_timeline = Some(path.into()),
                None => {
                    eprintln!("--check-timeline requires a trace file written by --timeline");
                    std::process::exit(2);
                }
            },
            "--stats" => want_stats = true,
            "--l1pf" => match it.next() {
                Some(name) => {
                    l1pf_name = name.clone();
                    l1pf_given = true;
                }
                None => {
                    eprintln!("--l1pf requires a prefetcher name (--list-prefetchers shows all)");
                    std::process::exit(2);
                }
            },
            "--list-schemes" => {
                let reg = tlp_harness::builtin_registry();
                println!("{:<24} {:<8} {:<14} composition", "name", "kind", "origin");
                for s in reg.schemes() {
                    println!(
                        "{:<24} {:<8} {:<14} {}",
                        s.name, "scheme", s.origin, s.composition
                    );
                }
                return;
            }
            "--list-prefetchers" => {
                let reg = tlp_harness::builtin_registry();
                println!("{:<24} {:<20} origin", "name", "kind");
                for seam in [Seam::L1Prefetcher, Seam::L2Prefetcher] {
                    for c in reg.components_of(seam) {
                        println!("{:<24} {:<20} {}", c.name, c.seam.label(), c.origin);
                    }
                }
                return;
            }
            "--list-components" => {
                let reg = tlp_harness::builtin_registry();
                println!("{:<24} {:<20} origin", "name", "kind");
                for c in reg.components() {
                    println!("{:<24} {:<20} {}", c.name, c.seam.label(), c.origin);
                }
                return;
            }
            "--engine" => match it.next().map(|v| v.parse::<tlp_sim::EngineMode>()) {
                Some(Ok(mode)) => engine = Some(mode),
                Some(Err(e)) => {
                    eprintln!("--engine: {e}");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("--engine requires a mode: cycle or event");
                    std::process::exit(2);
                }
            },
            "--test" => rc = RunConfig::test(),
            "--quick" => rc = RunConfig::quick(),
            "--full" => rc = RunConfig::full(),
            "--json" => formats.push("json"),
            "--csv" => formats.push("csv"),
            "--chart" => formats.push("chart"),
            "--all" => requested.push("all".into()),
            "--no-cache" => no_cache = true,
            "--jobs" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs = Some(n),
                _ => {
                    eprintln!("--jobs requires a worker count >= 1");
                    std::process::exit(2);
                }
            },
            "--cache-dir" => match it.next() {
                Some(dir) => cache_dir = Some(dir.into()),
                None => {
                    eprintln!("--cache-dir requires a directory argument");
                    std::process::exit(2);
                }
            },
            "--trace-dir" => match it.next() {
                Some(dir) => trace_dir = Some(dir.into()),
                None => {
                    eprintln!("--trace-dir requires a directory argument");
                    std::process::exit(2);
                }
            },
            "--import-trace" => match it.next() {
                Some(spec) => import_traces.push(spec.clone()),
                None => {
                    eprintln!("--import-trace requires FILE[:NAME] (a ChampSim trace file)");
                    std::process::exit(2);
                }
            },
            "--trace-info" => match it.next() {
                Some(arg) => trace_info_args.push(arg.clone()),
                None => {
                    eprintln!("--trace-info requires a trace file path or trace:NAME");
                    std::process::exit(2);
                }
            },
            "--workload" => match it.next() {
                Some(name) => workload_names.push(name.clone()),
                None => {
                    eprintln!("--workload requires a workload name (catalog or trace:NAME)");
                    std::process::exit(2);
                }
            },
            "--simpoints" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(k) if k >= 1 => simpoints_k = Some(k),
                _ => {
                    eprintln!("--simpoints requires a region count >= 1");
                    std::process::exit(2);
                }
            },
            "--out" => match it.next() {
                Some(dir) => out_dir = Some(dir.into()),
                None => {
                    eprintln!("--out requires a directory argument");
                    std::process::exit(2);
                }
            },
            "--list" => {
                for e in ALL_EXPERIMENTS.iter().chain(EXTRA_NAMES.iter()) {
                    println!("{e}");
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "tlp-repro [--test|--quick|--full] [--list] [--all] [--engine cycle|event] [--jobs N] [--cache-dir DIR] [--no-cache] [--json] [--csv] [--chart] [--out DIR] [--scheme NAME]... [--l1pf NAME] [experiments...]\n\
                     experiments: {} table45 all\n\
                     --list prints the experiment ids, one per line\n\
                     --all runs every experiment (same as the `all` operand)\n\
                     --engine selects the time-advance strategy (default: cycle, or $TLP_ENGINE); \
                     both modes produce bit-identical tables, event mode skips idle cycles\n\
                     --jobs N sets the run-engine worker count (default: all cores, or $TLP_THREADS)\n\
                     --cache-dir DIR persists simulation results on disk; a re-run is simulation-free\n\
                     --no-cache disables the on-disk tier (the in-process cache always dedups the grid)\n\
                     --json/--csv write <id>.json/<id>.csv per result into --out DIR (default: results/)\n\
                     --chart also prints each result's first column as an ASCII bar chart\n\
                     --scheme NAME sweeps one registered scheme over the active workloads (repeatable)\n\
                     --l1pf NAME picks the L1D prefetcher for --scheme sweeps (default: ipcp)\n\
                     --workload NAME restricts --scheme runs to named workloads (repeatable; \
                     accepts trace:NAME imports)\n\
                     --trace-dir DIR persists captured workload traces (TLPT v2); a warm dir \
                     streams them back with zero captures (see the `# trace-store:` line)\n\
                     --import-trace FILE[:NAME] imports a ChampSim trace into the store as \
                     trace:NAME (default NAME: the file stem; requires --trace-dir)\n\
                     --trace-info PATH|trace:NAME prints a stored trace's format summary and exits\n\
                     --simpoints K runs --scheme cells as SimPoint estimates: replay the top-K \
                     regions, reconstitute the full-run report by cluster weight\n\
                     --list-schemes / --list-prefetchers / --list-components print the composition registry\n\
                     (--list-components covers all five seams: off-chip predictors, prefetchers, filters)\n\
                     --profile FILE.json writes the observability artifact after a local run\n\
                     (run-engine counters, metric registry snapshot, per-cell wall-clock timings)\n\
                     --timeline FILE writes simulated-time telemetry (Chrome trace-event JSON for \
                     Perfetto at FILE, windowed CSV at FILE.csv) for the active workloads under \
                     the first --scheme (default: TLP)\n\
                     --check-timeline FILE validates a trace written by --timeline and exits\n\
                     --serve HOST:PORT runs as a simulation daemon (concurrent clients share the cache)\n\
                     --connect HOST:PORT runs --scheme sweeps (and --timeline) on a remote daemon\n\
                     --stats (with --connect) dumps the daemon's live metrics as Prometheus-style text",
                    ALL_EXPERIMENTS.join(" ")
                );
                return;
            }
            other => requested.push(other.to_string()),
        }
    }
    if let Some(n) = jobs {
        rc.threads = n;
    }
    if let Some(mode) = engine {
        rc.engine = mode;
    }
    // A standalone validation verb: exits 0 when FILE parses as a Chrome
    // trace under the serial codec (CI's smoke check), 1 otherwise.
    if let Some(path) = &check_timeline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        match tlp_harness::timeline::check_chrome_trace(&text) {
            Ok(n) => {
                println!(
                    "# timeline: {} is a valid Chrome trace ({n} events)",
                    path.display()
                );
                return;
            }
            Err(e) => {
                eprintln!("invalid timeline {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if serve_addr.is_some() && connect_addr.is_some() {
        eprintln!("--serve and --connect are mutually exclusive");
        std::process::exit(2);
    }
    if serve_addr.is_some()
        && (!requested.is_empty() || !schemes.is_empty() || timeline_path.is_some())
    {
        eprintln!("--serve runs as a daemon; drop experiment, --scheme and --timeline operands");
        std::process::exit(2);
    }
    if connect_addr.is_some() {
        if schemes.is_empty() && !want_stats && timeline_path.is_none() {
            eprintln!(
                "--connect requires --scheme NAME, --stats, or --timeline FILE \
                 (work runs on the daemon)"
            );
            std::process::exit(2);
        }
        if !requested.is_empty() {
            eprintln!("--connect runs --scheme sweeps only; experiment ids run locally");
            std::process::exit(2);
        }
    }
    if profile_path.is_some() && (serve_addr.is_some() || connect_addr.is_some()) {
        eprintln!("--profile applies to local runs; in --connect mode use --stats instead");
        std::process::exit(2);
    }
    if want_stats && connect_addr.is_none() {
        eprintln!("--stats queries a live daemon; add --connect HOST:PORT");
        std::process::exit(2);
    }
    let unknown: Vec<&String> = requested
        .iter()
        .filter(|r| !ALL_EXPERIMENTS.contains(&r.as_str()) && !EXTRA_NAMES.contains(&r.as_str()))
        .collect();
    if !unknown.is_empty() {
        for u in unknown {
            let hint = suggestions(u);
            if hint.is_empty() {
                eprintln!("unknown experiment: {u} (--list shows all ids)");
            } else {
                eprintln!(
                    "unknown experiment: {u} (did you mean: {}?)",
                    hint.join(", ")
                );
            }
        }
        std::process::exit(2);
    }
    if connect_addr.is_some()
        && (trace_dir.is_some()
            || !import_traces.is_empty()
            || !trace_info_args.is_empty()
            || simpoints_k.is_some())
    {
        eprintln!(
            "--trace-dir/--import-trace/--trace-info/--simpoints run locally; drop --connect"
        );
        std::process::exit(2);
    }
    if !import_traces.is_empty() && trace_dir.is_none() {
        eprintln!("--import-trace writes into the trace store; add --trace-dir DIR");
        std::process::exit(2);
    }
    if simpoints_k.is_some() && schemes.is_empty() {
        eprintln!("--simpoints applies to --scheme runs; add --scheme NAME");
        std::process::exit(2);
    }
    if !workload_names.is_empty() && schemes.is_empty() {
        eprintln!("--workload restricts --scheme runs; add --scheme NAME");
        std::process::exit(2);
    }
    if requested.iter().any(|r| r == "all")
        || (requested.is_empty()
            && schemes.is_empty()
            && serve_addr.is_none()
            && connect_addr.is_none()
            && timeline_path.is_none()
            && import_traces.is_empty()
            && trace_info_args.is_empty())
    {
        requested = ALL_EXPERIMENTS.iter().map(|s| (*s).to_string()).collect();
        requested.push("table45".into());
    }
    let out_dir = out_dir.unwrap_or_else(|| "results".into());
    if formats.iter().any(|f| *f != "chart") {
        if let Err(e) = std::fs::create_dir_all(&out_dir) {
            eprintln!("cannot create {}: {e}", out_dir.display());
            std::process::exit(1);
        }
    }
    let mut session = Session::new(rc);
    if let (Some(dir), false) = (&cache_dir, no_cache) {
        session = match session.with_cache_dir(dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot open cache dir {}: {e}", dir.display());
                std::process::exit(1);
            }
        };
    }
    if let Some(dir) = &trace_dir {
        session = match session.with_trace_dir(dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot open trace dir {}: {e}", dir.display());
                std::process::exit(1);
            }
        };
    }
    // ChampSim imports land in the trace store before anything simulates,
    // so `--import-trace f.champsim --scheme tlp --workload trace:f` works
    // in one invocation.
    for spec in &import_traces {
        let (file, name) = match spec.rsplit_once(':') {
            Some((f, n)) if !n.is_empty() && !n.contains('/') && !f.is_empty() => {
                (f.to_owned(), n.to_owned())
            }
            _ => {
                let stem = std::path::Path::new(spec)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default();
                (spec.clone(), stem)
            }
        };
        if name.is_empty() {
            eprintln!("--import-trace {spec}: cannot derive a name; use FILE:NAME");
            std::process::exit(2);
        }
        let store = session
            .harness()
            .trace_store()
            .expect("--trace-dir validated above")
            .clone();
        let recs = match tlp_tracestore::read_champsim(std::path::Path::new(&file)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("--import-trace {file}: {e}");
                std::process::exit(1);
            }
        };
        match store.import(&name, &recs) {
            Ok(path) => {
                let ratio = tlp_tracestore::trace_info(&path)
                    .map(|i| i.compression_ratio())
                    .unwrap_or(0.0);
                println!(
                    "# imported {file} -> trace:{name} ({} records, {ratio:.1}x vs v1)",
                    recs.len()
                );
            }
            Err(e) => {
                eprintln!("--import-trace {file}: cannot store: {e}");
                std::process::exit(1);
            }
        }
    }
    // `--trace-info` is a query verb like the --list-* flags: print and
    // exit (after imports, so an import can be inspected in one call).
    if !trace_info_args.is_empty() {
        for arg in &trace_info_args {
            let path = if let Some(short) = arg.strip_prefix("trace:") {
                match session.harness().trace_store() {
                    Some(store) => store.import_path(short),
                    None => {
                        eprintln!("--trace-info {arg}: names need --trace-dir DIR");
                        std::process::exit(2);
                    }
                }
            } else {
                std::path::PathBuf::from(arg)
            };
            match tlp_tracestore::trace_info(&path) {
                Ok(i) => {
                    println!(
                        "{arg}: TLPT v{} '{}' {} records, {} blocks, {} bytes \
                         ({:.1}x vs v1), {} simpoints (interval {}){}",
                        i.version,
                        i.name,
                        i.records,
                        i.blocks,
                        i.file_bytes,
                        i.compression_ratio(),
                        i.simpoints.len(),
                        i.bbv_interval,
                        if i.looping { ", looping" } else { "" },
                    );
                }
                Err(e) => {
                    eprintln!("--trace-info {arg}: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }
    // Validate scheme/prefetcher names before simulating anything: an
    // unknown name exits 2 with a did-you-mean list, exactly like an
    // unknown experiment id. In --connect mode the daemon's registry is
    // authoritative (it may hold schemes this binary doesn't), so
    // validation happens server-side and comes back as an ERROR frame.
    let mut bad_names = false;
    if connect_addr.is_none() {
        for name in &schemes {
            if let Err(e) = session.resolve_scheme_name(name) {
                eprintln!("{e} (--list-schemes shows all)");
                bad_names = true;
            }
        }
        if l1pf_given || !schemes.is_empty() {
            if let Err(e) = session.resolve_l1pf_name(&l1pf_name) {
                eprintln!("{e} (--list-prefetchers shows all)");
                bad_names = true;
            }
        }
    }
    if (l1pf_given && schemes.is_empty()) && serve_addr.is_none() {
        eprintln!("--l1pf only applies to --scheme sweeps; add --scheme NAME");
        bad_names = true;
    }
    if bad_names {
        std::process::exit(2);
    }
    // Daemon mode: hand the whole session (registry + cache + pool) to
    // the service and serve forever. Same behavior as the `tlp_serve`
    // binary, sharing this invocation's scale/engine/cache flags.
    if let Some(addr) = &serve_addr {
        let server = match Server::bind(addr.as_str(), session) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot bind {addr}: {e}");
                std::process::exit(1);
            }
        };
        match server.local_addr() {
            Ok(bound) => println!(
                "# tlp-serve: listening on {bound} ({:?} scale, {} engine)",
                rc.scale, rc.engine
            ),
            Err(e) => {
                eprintln!("cannot read bound address: {e}");
                std::process::exit(1);
            }
        }
        if let Err(e) = server.run() {
            eprintln!("tlp-serve: {e}");
            std::process::exit(1);
        }
        return;
    }
    let emit_results = |tag: &str, results: Vec<ExperimentResult>, t0: std::time::Instant| {
        for r in results {
            println!("{}", r.render());
            for fmt in &formats {
                match *fmt {
                    "chart" => {
                        if let Some((col, _)) = r.rows.first().and_then(|row| row.values.first()) {
                            let chart = r.render_chart(&col.clone(), 50);
                            if !chart.is_empty() {
                                println!("{chart}");
                            }
                        }
                    }
                    other => {
                        let (content, ext) = match other {
                            "json" => (r.to_json(), "json"),
                            _ => (r.to_csv(), "csv"),
                        };
                        let path = out_dir.join(format!("{}.{ext}", r.id));
                        if let Err(e) = std::fs::write(&path, content) {
                            eprintln!("cannot write {}: {e}", path.display());
                        }
                    }
                }
            }
        }
        eprintln!("# {tag} took {:.1}s", t0.elapsed().as_secs_f64());
    };
    // Remote mode: every sweep runs on the daemon; this process only
    // renders. `scheme_result` is the same renderer the local path uses,
    // so the tables are byte-identical to an in-process run.
    if let Some(addr) = &connect_addr {
        let mut client = match Client::connect(addr.as_str()) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cannot connect to {addr}: {e}");
                std::process::exit(1);
            }
        };
        let mut last_summary = None;
        for name in &schemes {
            let t0 = std::time::Instant::now();
            let req = SweepRequest {
                scheme: name.clone(),
                l1pf: l1pf_name.clone(),
                workloads: workload_names.clone(),
            };
            let reply = match client.sweep(&req) {
                Ok(r) => r,
                Err(ServeError::Server(msg)) => {
                    eprintln!("--scheme {name}: {msg}");
                    std::process::exit(2);
                }
                Err(e) => {
                    eprintln!("--scheme {name}: {e}");
                    std::process::exit(1);
                }
            };
            let table = tlp_harness::scheme_result(name, &l1pf_name, &reply.rows());
            emit_results(&format!("scheme {name}"), vec![table], t0);
            last_summary = Some(reply.summary);
        }
        // The daemon's counters (service-wide: they include every
        // client's requests), in the exact format of the local line.
        if let Some(s) = last_summary {
            println!(
                "# run-engine: engine={} {}",
                s.engine,
                s.stats.summary_line()
            );
        }
        // Remote telemetry: the daemon captures (or serves from its
        // blob cache) and this process renders — the same renderer as
        // the local path, so the files are byte-identical either way.
        if let Some(path) = &timeline_path {
            let query = TimelineQuery {
                scheme: schemes.first().cloned().unwrap_or_else(|| "TLP".to_owned()),
                l1pf: l1pf_name.clone(),
                workloads: vec![],
                window_cycles: 0,
                journey_every: 0,
            };
            let reply = match client.timeline(&query) {
                Ok(r) => r,
                Err(ServeError::Server(msg)) => {
                    eprintln!("--timeline: {msg}");
                    std::process::exit(2);
                }
                Err(e) => {
                    eprintln!("--timeline: {e}");
                    std::process::exit(1);
                }
            };
            let runs: Vec<TimelineRun> = reply
                .runs
                .iter()
                .map(|(workload, timeline)| TimelineRun {
                    workload: workload.clone(),
                    scheme: reply.scheme.clone(),
                    l1pf: reply.l1pf.clone(),
                    timeline: std::sync::Arc::new(timeline.clone()),
                })
                .collect();
            if let Err(e) = tlp_harness::timeline::write_timeline_files(path, &runs) {
                eprintln!("cannot write timeline {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!(
                "# timeline written to {} (+ {}.csv)",
                path.display(),
                path.display()
            );
        }
        // A live metrics snapshot (Prometheus-style text) from the
        // daemon: request counters, latency quantiles, run-cache and —
        // when the daemon was built with `obs` — engine metrics.
        if want_stats {
            match client.stats() {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("--stats: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }
    let h = session.harness();
    eprintln!(
        "# scale {:?}, warmup {}, instructions {}, {} single-core workloads, {} threads, {} engine",
        rc.scale,
        rc.warmup,
        rc.instructions,
        h.active_workloads().len(),
        rc.threads,
        rc.engine,
    );
    for exp in &requested {
        let t0 = std::time::Instant::now();
        let results = run_experiment(h, exp, rc);
        emit_results(exp, results, t0);
    }
    for name in &schemes {
        let t0 = std::time::Instant::now();
        let spec = session
            .registry()
            .scheme(name)
            .expect("validated above")
            .clone();
        // --simpoints K: each cell becomes a SimPoint estimate (replay
        // the top-K regions, blend by cluster weight). --workload
        // restricts either mode to named workloads, including trace:
        // imports.
        let table = if let Some(k) = simpoints_k {
            let targets: Vec<String> = if workload_names.is_empty() {
                h.active_workloads()
                    .iter()
                    .map(|w| w.name().to_owned())
                    .collect()
            } else {
                workload_names.clone()
            };
            let mut rows = Vec::new();
            for wname in &targets {
                match session.run_simpoints(wname, &spec, &l1pf_name, k) {
                    Ok(run) => {
                        eprintln!(
                            "# simpoints: {wname} replayed {} regions of {} instructions",
                            run.regions.len(),
                            run.interval
                        );
                        rows.push((wname.clone(), run.estimate));
                    }
                    Err(e) => {
                        eprintln!("--scheme {name} --simpoints {k}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            tlp_harness::scheme_result(name, &l1pf_name, &rows)
        } else if !workload_names.is_empty() {
            let mut rows = Vec::new();
            for wname in &workload_names {
                match session.run_single(wname, &spec, &l1pf_name) {
                    Ok(r) => rows.push((wname.clone(), r)),
                    Err(e) => {
                        eprintln!("--scheme {name} --workload {wname}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            tlp_harness::scheme_result(name, &l1pf_name, &rows)
        } else {
            match session.scheme_table(&spec, &l1pf_name) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("--scheme {name}: {e}");
                    std::process::exit(1);
                }
            }
        };
        emit_results(&format!("scheme {name}"), vec![table], t0);
    }
    // The run-engine summary (CI's cache-behavior job asserts on it: a
    // warm-cache run must report simulated=0 and hit_rate=100.0%). The
    // engine mode leads so cycle-vs-event table diffs can exclude this
    // line with a single `grep -v run-engine`.
    println!(
        "# run-engine: engine={} {}",
        rc.engine,
        session.engine_stats().summary_line()
    );
    // The trace-store summary (CI's trace-store job asserts on it: a
    // warm --trace-dir run must report captures=0).
    if trace_dir.is_some() {
        let ts = session.harness().trace_stats();
        println!(
            "# trace-store: captures={} mem_hits={} disk_hits={} evictions={} corrupt={} resident={}",
            ts.captures, ts.mem_hits, ts.disk_hits, ts.evictions, ts.corrupt, ts.resident
        );
    }
    // Local telemetry capture: instrumented re-simulations through the
    // timeline blob cache (never through the run engine, so the summary
    // line above and the profile counters below are unaffected).
    let mut timeline_runs: Option<Vec<TimelineRun>> = None;
    if let Some(path) = &timeline_path {
        let scheme_name = schemes.first().cloned().unwrap_or_else(|| "TLP".to_owned());
        let spec = match session.registry().scheme(&scheme_name) {
            Ok(s) => s.clone(),
            Err(e) => {
                eprintln!("--timeline: {e} (--list-schemes shows all)");
                std::process::exit(2);
            }
        };
        let runs = match session.timeline_runs(
            &[],
            &spec,
            &l1pf_name,
            tlp_harness::TimelineConfig::default(),
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("--timeline: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = tlp_harness::timeline::write_timeline_files(path, &runs) {
            eprintln!("cannot write timeline {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!(
            "# timeline written to {} (+ {}.csv)",
            path.display(),
            path.display()
        );
        timeline_runs = Some(runs);
    }
    // The profile artifact snapshots the same registry the summary line
    // was just rendered from (no simulation runs in between, so the
    // counters in both are equal). When telemetry was captured, its
    // summary is embedded (artifact schema 2).
    if let Some(path) = &profile_path {
        let summary = timeline_runs
            .as_deref()
            .map(tlp_harness::timeline::summary_value);
        let artifact = tlp_harness::profile::profile_value_with(
            session.harness(),
            &rc.engine.to_string(),
            summary,
        );
        if let Err(e) = std::fs::write(path, artifact.render()) {
            eprintln!("cannot write profile {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("# profile written to {}", path.display());
    }
}

fn run_experiment(h: &Harness, id: &str, rc: RunConfig) -> Vec<ExperimentResult> {
    match id {
        "fig1" => vec![fig01::run(h)],
        "fig2" => vec![fig02::run(h)],
        "fig3" => vec![fig03::run(h)],
        "fig4" => vec![fig04::run(h)],
        "fig5" => vec![fig05::run(h, L1Pf::Ipcp), fig05::run(h, L1Pf::Berti)],
        "fig6" => vec![fig06::run(h, L1Pf::Ipcp), fig06::run(h, L1Pf::Berti)],
        "fig10" => vec![fig10::run(h, L1Pf::Ipcp), fig10::run(h, L1Pf::Berti)],
        "fig11" => vec![fig11::run(h, L1Pf::Ipcp), fig11::run(h, L1Pf::Berti)],
        "fig12" => vec![fig12::run(h, L1Pf::Ipcp), fig12::run(h, L1Pf::Berti)],
        "fig13" => vec![fig13::run(h, L1Pf::Ipcp), fig13::run(h, L1Pf::Berti)],
        "fig14" => vec![fig14::run(h, L1Pf::Ipcp), fig14::run(h, L1Pf::Berti)],
        "fig15" => vec![fig15::run(h)],
        "fig16" => vec![fig16::run(h)],
        "fig17" => vec![fig17::run(h, L1Pf::Ipcp), fig17::run(h, L1Pf::Berti)],
        "table2" => vec![tables::table2()],
        "table3" => vec![tables::table3()],
        "table45" => vec![tables::table45(rc.scale)],
        "ext1" => vec![ext01_offchip::run(h)],
        "ext2" => vec![ext02_replacement::run(h)],
        "ext3" => vec![
            ext03_thresholds::run_tau_high(h),
            ext03_thresholds::run_tau_low(h),
            ext03_thresholds::run_tau_pref(h),
        ],
        "ext4" => vec![ext04_features::run(h)],
        "ext5" => vec![ext05_storage::run(h)],
        "ext6" => vec![ext06_victim::run(h)],
        "ext7" => vec![ext07_rl::run(h), ext07_rl::run_learning_curve(h)],
        other => unreachable!("experiment names validated up front: {other}"),
    }
}
