//! `tlp-serve`: the standalone simulation daemon.
//!
//! Usage:
//! ```text
//! tlp-serve [--addr HOST:PORT] [--test|--quick|--full]
//!           [--engine cycle|event] [--jobs N]
//!           [--cache-dir DIR [--cache-cap-mb MB]]
//! ```
//!
//! Binds one shared [`tlp_harness::Session`] behind the `tlp-serve`
//! protocol and serves forever. Clients connect with
//! `tlp_repro --connect HOST:PORT --scheme NAME` (or
//! [`tlp_serve::Client`] programmatically); concurrent clients share the
//! cache and its single-flight map, so identical cells are simulated
//! once service-wide.

use tlp_harness::cache::DiskCache;
use tlp_harness::{RunConfig, Session};
use tlp_serve::Server;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7457".to_owned();
    let mut rc = RunConfig::quick();
    let mut jobs: Option<usize> = None;
    let mut engine: Option<tlp_sim::EngineMode> = None;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut cache_cap_mb: Option<u64> = None;
    let mut trace_dir: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => {
                    eprintln!("--addr requires HOST:PORT");
                    std::process::exit(2);
                }
            },
            "--test" => rc = RunConfig::test(),
            "--quick" => rc = RunConfig::quick(),
            "--full" => rc = RunConfig::full(),
            "--engine" => match it.next().map(|v| v.parse::<tlp_sim::EngineMode>()) {
                Some(Ok(mode)) => engine = Some(mode),
                Some(Err(e)) => {
                    eprintln!("--engine: {e}");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("--engine requires a mode: cycle or event");
                    std::process::exit(2);
                }
            },
            "--jobs" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs = Some(n),
                _ => {
                    eprintln!("--jobs requires a worker count >= 1");
                    std::process::exit(2);
                }
            },
            "--cache-dir" => match it.next() {
                Some(dir) => cache_dir = Some(dir.into()),
                None => {
                    eprintln!("--cache-dir requires a directory argument");
                    std::process::exit(2);
                }
            },
            "--cache-cap-mb" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(mb) if mb >= 1 => cache_cap_mb = Some(mb),
                _ => {
                    eprintln!("--cache-cap-mb requires a size in MiB >= 1");
                    std::process::exit(2);
                }
            },
            "--trace-dir" => match it.next() {
                Some(dir) => trace_dir = Some(dir.into()),
                None => {
                    eprintln!("--trace-dir requires a directory argument");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "tlp-serve [--addr HOST:PORT] [--test|--quick|--full] [--engine cycle|event] [--jobs N] [--cache-dir DIR [--cache-cap-mb MB]] [--trace-dir DIR]\n\
                     --addr HOST:PORT binds the service (default: 127.0.0.1:7457; port 0 = ephemeral)\n\
                     --engine selects the time-advance strategy (default: cycle)\n\
                     --jobs N sets the per-request worker count (default: all cores)\n\
                     --cache-dir DIR adds the shared on-disk tier (safe for concurrent daemons)\n\
                     --cache-cap-mb MB caps the disk tier; oldest entries are evicted LRU\n\
                     --trace-dir DIR persists captured workload traces (TLPT v2), shared by every \
                     client session; imported trace:NAME workloads resolve against it"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (--help shows usage)");
                std::process::exit(2);
            }
        }
    }
    if let Some(n) = jobs {
        rc.threads = n;
    }
    if let Some(mode) = engine {
        rc.engine = mode;
    }
    if cache_cap_mb.is_some() && cache_dir.is_none() {
        eprintln!("--cache-cap-mb only applies with --cache-dir DIR");
        std::process::exit(2);
    }
    let mut session = Session::new(rc);
    if let Some(dir) = &cache_dir {
        let disk = match DiskCache::open(dir) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("cannot open cache dir {}: {e}", dir.display());
                std::process::exit(1);
            }
        };
        let disk = match cache_cap_mb {
            Some(mb) => disk.with_cap_bytes(mb * 1024 * 1024),
            None => disk,
        };
        session = session.with_disk_cache(disk);
    }
    if let Some(dir) = &trace_dir {
        session = match session.with_trace_dir(dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot open trace dir {}: {e}", dir.display());
                std::process::exit(1);
            }
        };
    }
    let server = match Server::bind(&addr, session) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(bound) => println!(
            "# tlp-serve: listening on {bound} ({:?} scale, {} engine)",
            rc.scale, rc.engine
        ),
        Err(e) => {
            eprintln!("cannot read bound address: {e}");
            std::process::exit(1);
        }
    }
    if let Err(e) = server.run() {
        eprintln!("tlp-serve: {e}");
        std::process::exit(1);
    }
}
