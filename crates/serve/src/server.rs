//! The daemon: a TCP accept loop over one shared [`Session`].
//!
//! Every connection gets its own handler thread, but all handlers share
//! the *same* session — the same two-tier result cache, the same
//! single-flight map, the same worker pool configuration. That sharing
//! is the whole point: when two clients submit overlapping (or
//! identical) grids, the cache's in-flight coalescing guarantees each
//! unique cell is simulated exactly once service-wide; the late client's
//! cells resolve as `coalesced` (waited on the other client's leader) or
//! `mem_hits` (the leader already published).

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use tlp_harness::{Session, SessionError};
use tlp_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use tlp_trace::emit::Workload;

use crate::protocol::{
    read_frame, write_frame, CellFrame, ErrorFrame, FrameKind, StatsFrame, SummaryFrame,
    SweepRequest, TimelineQuery, TimelineReply,
};

/// The daemon's own instrumentation, on a dedicated registry so a STATS
/// reply can merge it with the run cache's and the engine's metrics:
/// connection/request/error counters, the streamed-cell count, an
/// in-flight-requests gauge, and a wall-clock request latency histogram.
#[derive(Clone)]
struct ServeMetrics {
    registry: Arc<MetricsRegistry>,
    connections: Counter,
    requests: Counter,
    cells_streamed: Counter,
    errors: Counter,
    in_flight: Gauge,
    latency: Histogram,
}

impl ServeMetrics {
    fn new() -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        Self {
            connections: registry.counter("serve_connections_total"),
            requests: registry.counter("serve_requests_total"),
            cells_streamed: registry.counter("serve_cells_streamed_total"),
            errors: registry.counter("serve_errors_total"),
            in_flight: registry.gauge("serve_requests_in_flight"),
            latency: registry.histogram("serve_request_latency_ns"),
            registry,
        }
    }
}

/// `+12.345s`: monotonic seconds since the daemon started — every log
/// line carries one, so interleaved connection handlers stay legible.
fn stamp(started: Instant) -> String {
    let e = started.elapsed();
    format!("+{}.{:03}s", e.as_secs(), e.subsec_millis())
}

/// A bound, not-yet-serving simulation service.
pub struct Server {
    listener: TcpListener,
    session: Arc<Session>,
    metrics: ServeMetrics,
    started: Instant,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the service to `addr` (use port 0 for an ephemeral port;
    /// [`Server::local_addr`] reports the one the OS picked).
    ///
    /// # Errors
    ///
    /// Propagates the bind error (port in use, permission, ...).
    pub fn bind(addr: impl ToSocketAddrs, session: Session) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            session: Arc::new(session),
            metrics: ServeMetrics::new(),
            started: Instant::now(),
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates the socket-name lookup error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever on the calling thread (the `tlp_serve` /
    /// `tlp_repro --serve` daemon path).
    ///
    /// # Errors
    ///
    /// Propagates socket-name lookup errors; per-connection errors are
    /// logged to stderr and do not stop the service.
    pub fn run(self) -> std::io::Result<()> {
        self.serve(&AtomicBool::new(false))
    }

    /// Serves from a background thread; the returned handle stops the
    /// service on demand (the in-process test path).
    ///
    /// # Errors
    ///
    /// Propagates the socket-name lookup error.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let _ = self.serve(&thread_stop);
        });
        Ok(ServerHandle {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    fn serve(self, stop: &AtomicBool) -> std::io::Result<()> {
        let started = self.started;
        let mut next_conn: u64 = 0;
        for conn in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    let id = next_conn;
                    next_conn += 1;
                    self.metrics.connections.inc();
                    let session = Arc::clone(&self.session);
                    let metrics = self.metrics.clone();
                    std::thread::spawn(move || {
                        if let Err(e) = handle_connection(&stream, &session, &metrics) {
                            let peer = stream
                                .peer_addr()
                                .map_or_else(|_| "?".to_owned(), |a| a.to_string());
                            eprintln!(
                                "tlp-serve[conn {id} {}]: connection {peer}: {e}",
                                stamp(started)
                            );
                        }
                    });
                }
                Err(e) => eprintln!("tlp-serve[accept {}]: {e}", stamp(started)),
            }
        }
        Ok(())
    }
}

/// Handle to a [`Server::spawn`]ed service.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the service is listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    /// Connections already being handled run to completion on their own
    /// threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Reads requests off one connection until the peer hangs up. A request
/// the session rejects (unknown scheme, unknown workload, malformed
/// payload) answers with an ERROR frame and keeps the connection open;
/// only transport-level failures tear it down. A STATS frame answers
/// with the daemon's live metrics snapshot.
fn handle_connection(
    stream: &TcpStream,
    session: &Session,
    metrics: &ServeMetrics,
) -> std::io::Result<()> {
    let mut reader = stream.try_clone()?;
    let writer = Mutex::new(stream.try_clone()?);
    while let Some((kind, payload)) = read_frame(&mut reader)? {
        match kind {
            FrameKind::Request => {}
            FrameKind::Stats => {
                let frame = StatsFrame {
                    text: render_stats(metrics, session),
                };
                let mut w = writer.lock();
                write_frame(&mut *w, FrameKind::Stats, &frame.encode())?;
                w.flush()?;
                continue;
            }
            FrameKind::Timeline => {
                let query = match TimelineQuery::decode(&payload) {
                    Ok(q) => q,
                    Err(e) => {
                        metrics.errors.inc();
                        send_error(&writer, &format!("malformed timeline query: {e}"))?;
                        continue;
                    }
                };
                metrics.requests.inc();
                metrics.in_flight.inc();
                let t0 = Instant::now();
                let result = answer_timeline(session, &query, &writer);
                metrics.latency.record_since(t0);
                metrics.in_flight.dec();
                match result {
                    Ok(()) => {}
                    Err(AnswerError::Reject(msg)) => {
                        metrics.errors.inc();
                        send_error(&writer, &msg)?;
                    }
                    Err(AnswerError::Io(e)) => return Err(e),
                }
                continue;
            }
            other => {
                metrics.errors.inc();
                send_error(&writer, &format!("unexpected {other:?} frame from client"))?;
                continue;
            }
        }
        let req = match SweepRequest::decode(&payload) {
            Ok(req) => req,
            Err(e) => {
                metrics.errors.inc();
                send_error(&writer, &format!("malformed request: {e}"))?;
                continue;
            }
        };
        metrics.requests.inc();
        metrics.in_flight.inc();
        let t0 = Instant::now();
        let result = answer_sweep(session, &req, &writer, metrics);
        metrics.latency.record_since(t0);
        metrics.in_flight.dec();
        match result {
            Ok(()) => {}
            Err(AnswerError::Reject(msg)) => {
                metrics.errors.inc();
                send_error(&writer, &msg)?;
            }
            Err(AnswerError::Io(e)) => return Err(e),
        }
    }
    Ok(())
}

/// The daemon's own metrics merged with the shared session's run-cache
/// registry and the process-global registry (`sim_*` engine metrics
/// when built with the `obs` feature), as Prometheus-style text.
fn render_stats(metrics: &ServeMetrics, session: &Session) -> String {
    metrics
        .registry
        .snapshot()
        .merged(session.metrics().snapshot())
        .merged(tlp_obs::global().snapshot())
        .render_prometheus()
}

enum AnswerError {
    /// The request is invalid; tell the client and keep the connection.
    Reject(String),
    /// The transport failed; drop the connection.
    Io(std::io::Error),
}

impl From<SessionError> for AnswerError {
    fn from(e: SessionError) -> Self {
        AnswerError::Reject(e.to_string())
    }
}

fn answer_sweep(
    session: &Session,
    req: &SweepRequest,
    writer: &Mutex<TcpStream>,
    metrics: &ServeMetrics,
) -> Result<(), AnswerError> {
    let scheme = session.resolve_scheme_name(&req.scheme)?;
    let pf = session.resolve_l1pf_name(&req.l1pf)?;
    let harness = session.harness();
    // The request's workload set: named workloads (order-preserving
    // dedup, so cell index == position) or the server's active catalog.
    let workloads: Vec<Arc<dyn Workload>> = if req.workloads.is_empty() {
        harness.active_workloads()
    } else {
        let mut seen = std::collections::HashSet::new();
        let mut ws = Vec::new();
        for name in &req.workloads {
            if seen.insert(name.as_str()) {
                ws.push(session.workload(name)?);
            }
        }
        ws
    };
    let cells: Vec<_> = workloads
        .iter()
        .map(|w| harness.cell_single_spec(w, Arc::clone(&scheme), Arc::clone(&pf), None))
        .collect();
    let names: Vec<String> = workloads.iter().map(|w| w.name().to_owned()).collect();
    // Stream each cell the moment its report exists — a cache hit
    // answers immediately, a coalesced cell as soon as the other
    // client's leader publishes. A send failure can't abort the batch
    // (other connections may be coalesced on these flights), so it is
    // recorded and surfaced after the run.
    let send_failure: Mutex<Option<std::io::Error>> = Mutex::new(None);
    harness.run_cells_streaming(cells, |i, cell, report| {
        let frame = CellFrame {
            index: i as u64,
            workload: names[i].clone(),
            label: cell.label().to_owned(),
            report: (**report).clone(),
        };
        let mut w = writer.lock();
        if let Err(e) = write_frame(&mut *w, FrameKind::Cell, &frame.encode()) {
            let mut slot = send_failure.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
        } else {
            metrics.cells_streamed.inc();
        }
    });
    if let Some(e) = send_failure.into_inner() {
        return Err(AnswerError::Io(e));
    }
    let summary = SummaryFrame {
        engine: harness.rc.engine.to_string(),
        cells: names.len() as u64,
        stats: session.engine_stats(),
    };
    let mut w = writer.lock();
    write_frame(&mut *w, FrameKind::Summary, &summary.encode()).map_err(AnswerError::Io)
}

/// Captures timelines for a telemetry query through the shared session's
/// blob cache and answers with one TIMELINE frame. Captures are
/// deterministic, so concurrent identical queries cost at most wasted
/// work, never divergent replies.
fn answer_timeline(
    session: &Session,
    query: &TimelineQuery,
    writer: &Mutex<TcpStream>,
) -> Result<(), AnswerError> {
    let scheme = session.resolve_scheme_name(&query.scheme)?;
    let pf = session.resolve_l1pf_name(&query.l1pf)?;
    let harness = session.harness();
    let workloads: Vec<Arc<dyn Workload>> = if query.workloads.is_empty() {
        harness.active_workloads()
    } else {
        let mut seen = std::collections::HashSet::new();
        let mut ws = Vec::new();
        for name in &query.workloads {
            if seen.insert(name.as_str()) {
                ws.push(session.workload(name)?);
            }
        }
        ws
    };
    let mut tcfg = tlp_sim::TimelineConfig::default();
    if query.window_cycles > 0 {
        tcfg.window_cycles = query.window_cycles;
    }
    if query.journey_every > 0 {
        tcfg.journey_every = query.journey_every;
    }
    let runs = workloads
        .iter()
        .map(|w| {
            let t = harness.timeline_single_spec(w, Arc::clone(&scheme), Arc::clone(&pf), tcfg);
            (w.name().to_owned(), (*t).clone())
        })
        .collect();
    let reply = TimelineReply {
        scheme: query.scheme.clone(),
        l1pf: query.l1pf.clone(),
        runs,
    };
    let mut w = writer.lock();
    write_frame(&mut *w, FrameKind::Timeline, &reply.encode()).map_err(AnswerError::Io)
}

fn send_error(writer: &Mutex<TcpStream>, message: &str) -> std::io::Result<()> {
    let frame = ErrorFrame {
        message: message.to_owned(),
    };
    let mut w = writer.lock();
    write_frame(&mut *w, FrameKind::Error, &frame.encode())?;
    w.flush()
}
