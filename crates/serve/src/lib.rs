//! `tlp-serve`: the concurrent simulation service.
//!
//! A daemon wraps one [`tlp_harness::Session`] — the composition
//! registry, the two-tier content-addressed result cache, and the worker
//! pool — behind a length-prefixed socket protocol so that *many*
//! clients (CI shards, parameter-sweep scripts, teammates on one box)
//! share a single simulation backend:
//!
//! - **Cross-client single-flight.** All connections run against the
//!   same cache, whose in-flight map coalesces concurrent requests for
//!   the same cell: the first requester anywhere in the service
//!   simulates, every later requester blocks on the same flight slot and
//!   receives the leader's report. Two clients submitting an identical
//!   cold grid cost exactly one grid of simulation.
//! - **Streaming responses.** Results are framed back per cell as each
//!   cell completes (completion order, tagged with the request index),
//!   so a client starts receiving rows while the rest of its grid is
//!   still running.
//! - **A shared disk tier.** With `--cache-dir`, reports persist across
//!   daemon restarts; the store is safe for concurrent writers in
//!   multiple processes (unique temp names + atomic rename) and can be
//!   size-capped with LRU eviction (`--cache-cap-mb`).
//!
//! The wire format ([`protocol`]) reuses the cache's own JSON codec
//! ([`tlp_sim::serial`]) for payloads, so a streamed report is
//! byte-identical to its on-disk cache entry, and the client renders
//! tables through the same [`tlp_harness::scheme_result`] path the
//! in-process CLI uses — byte-identical output either way.
//!
//! # Example
//!
//! ```no_run
//! use tlp_harness::{RunConfig, Session};
//! use tlp_serve::{Client, Server, SweepRequest};
//!
//! let server = Server::bind("127.0.0.1:0", Session::new(RunConfig::test())).unwrap();
//! let addr = server.local_addr().unwrap();
//! let handle = server.spawn().unwrap();
//!
//! let mut client = Client::connect(addr).unwrap();
//! let reply = client
//!     .sweep(&SweepRequest {
//!         scheme: "Baseline".to_owned(),
//!         l1pf: "ipcp".to_owned(),
//!         workloads: vec![], // empty = the server's active set
//!     })
//!     .unwrap();
//! for cell in &reply.cells {
//!     println!("{}: IPC {:.3}", cell.workload, cell.report.ipc());
//! }
//! handle.shutdown();
//! ```

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ServeError, SweepReply};
pub use protocol::{
    CellFrame, ErrorFrame, FrameKind, StatsFrame, SummaryFrame, SweepRequest, TimelineQuery,
    TimelineReply, PROTO_VERSION,
};
pub use server::{Server, ServerHandle};
