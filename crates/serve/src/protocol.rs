//! The wire protocol: length-prefixed frames with [`tlp_sim::serial`]
//! JSON payloads.
//!
//! Every frame is `[kind: u8][len: u32 BE][payload: len bytes]`. A client
//! sends one [`SweepRequest`] frame per request; the server answers with
//! a stream of [`CellFrame`]s — one per unique cell, emitted *as each
//! cell completes*, not in grid order — terminated by exactly one
//! [`SummaryFrame`] (success) or [`ErrorFrame`] (rejected request). A
//! connection carries any number of requests sequentially.
//!
//! Payloads reuse the harness cache's hand-rolled JSON codec
//! ([`tlp_sim::serial`]), so a streamed report is byte-identical to its
//! on-disk cache entry and round-trips losslessly.

use std::io::{Read, Write};

use tlp_harness::EngineStats;
use tlp_sim::serial::{self, SerialError, Value};
use tlp_sim::{SimReport, Timeline};

/// Protocol version spoken by this build; requests carrying a different
/// `proto` field are rejected.
pub const PROTO_VERSION: u64 = 1;

/// Upper bound on a frame payload (a defense against garbage lengths
/// from a non-protocol peer, not a real limit — a 4-core report is a few
/// kilobytes).
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Frame discriminants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: a sweep request.
    Request = 1,
    /// Server → client: one completed cell.
    Cell = 2,
    /// Server → client: end of a successful response.
    Summary = 3,
    /// Server → client: the request was rejected; ends the response.
    Error = 4,
    /// Bidirectional: a client sends an (empty-text) `STATS` frame to
    /// ask for the daemon's live metrics; the server answers with one
    /// `STATS` frame carrying a Prometheus-style text snapshot.
    Stats = 5,
    /// Bidirectional: a client sends a [`TimelineQuery`] asking for
    /// simulated-time telemetry of a scheme/prefetcher/workload set; the
    /// server answers with one [`TimelineReply`] carrying the captured
    /// [`Timeline`] blobs (the same bytes its blob cache stores).
    Timeline = 6,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(Self::Request),
            2 => Some(Self::Cell),
            3 => Some(Self::Summary),
            4 => Some(Self::Error),
            5 => Some(Self::Stats),
            6 => Some(Self::Timeline),
            _ => None,
        }
    }
}

/// A request: sweep one registered scheme across workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRequest {
    /// Registered scheme name (`tlp_repro --list-schemes`).
    pub scheme: String,
    /// Registered L1D prefetcher name.
    pub l1pf: String,
    /// Workload names; empty means the server's active workload set.
    pub workloads: Vec<String>,
}

impl SweepRequest {
    /// Encodes the request payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let workloads: Vec<Value> = self
            .workloads
            .iter()
            .map(|w| Value::Str(w.clone()))
            .collect();
        Value::Obj(vec![
            ("proto".to_owned(), Value::Num(PROTO_VERSION)),
            ("scheme".to_owned(), Value::Str(self.scheme.clone())),
            ("l1pf".to_owned(), Value::Str(self.l1pf.clone())),
            ("workloads".to_owned(), Value::Arr(workloads)),
        ])
        .render()
        .into_bytes()
    }

    /// Decodes a request payload.
    ///
    /// # Errors
    ///
    /// Returns [`SerialError`] on malformed JSON, missing fields, or a
    /// protocol-version mismatch.
    pub fn decode(payload: &[u8]) -> Result<Self, SerialError> {
        let v = parse_payload(payload)?;
        let proto = v.u64_field("proto")?;
        if proto != PROTO_VERSION {
            return Err(SerialError {
                offset: 0,
                message: format!("protocol version {proto} (this build speaks {PROTO_VERSION})"),
            });
        }
        let workloads = v
            .arr_field("workloads")?
            .iter()
            .map(|w| match w {
                Value::Str(s) => Ok(s.clone()),
                _ => Err(SerialError {
                    offset: 0,
                    message: "workloads must be strings".to_owned(),
                }),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            scheme: v.str_field("scheme")?,
            l1pf: v.str_field("l1pf")?,
            workloads,
        })
    }
}

/// One completed cell, streamed the moment its report is available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFrame {
    /// Position in the request's deduplicated workload order.
    pub index: u64,
    /// The workload this cell simulated.
    pub workload: String,
    /// The cell's canonical label (its cache description).
    pub label: String,
    /// The cell's report.
    pub report: SimReport,
}

impl CellFrame {
    /// Encodes the cell payload (the report embeds its on-disk cache
    /// encoding verbatim).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        format!(
            "{{\"index\":{},\"workload\":{},\"label\":{},\"report\":{}}}",
            self.index,
            serial::escape(&self.workload),
            serial::escape(&self.label),
            serial::report_to_json(&self.report)
        )
        .into_bytes()
    }

    /// Decodes a cell payload.
    ///
    /// # Errors
    ///
    /// Returns [`SerialError`] on malformed JSON or missing fields.
    pub fn decode(payload: &[u8]) -> Result<Self, SerialError> {
        let v = parse_payload(payload)?;
        Ok(Self {
            index: v.u64_field("index")?,
            workload: v.str_field("workload")?,
            label: v.str_field("label")?,
            report: serial::report_from_value(v.field("report")?)?,
        })
    }
}

/// End of a successful response: how many cells were streamed, plus the
/// server's global run-engine counters (shared across every client, so
/// `simulated` is the number of unique cells the whole service has ever
/// simulated — two clients submitting one identical cold grid leave it at
/// exactly that grid's unique-cell count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummaryFrame {
    /// The server's engine mode (`cycle`/`event`).
    pub engine: String,
    /// Cells streamed for this request (after dedup).
    pub cells: u64,
    /// Server-wide engine counters at response completion.
    pub stats: EngineStats,
}

impl SummaryFrame {
    /// Encodes the summary payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let s = &self.stats;
        Value::Obj(vec![
            ("engine".to_owned(), Value::Str(self.engine.clone())),
            ("cells".to_owned(), Value::Num(self.cells)),
            ("requested".to_owned(), Value::Num(s.requested)),
            ("deduped".to_owned(), Value::Num(s.deduped)),
            ("mem_hits".to_owned(), Value::Num(s.mem_hits)),
            ("disk_hits".to_owned(), Value::Num(s.disk_hits)),
            ("coalesced".to_owned(), Value::Num(s.coalesced)),
            ("corrupt".to_owned(), Value::Num(s.corrupt)),
            ("evicted".to_owned(), Value::Num(s.evicted)),
            ("inline".to_owned(), Value::Num(s.inline_simulated)),
            ("simulated".to_owned(), Value::Num(s.simulated)),
        ])
        .render()
        .into_bytes()
    }

    /// Decodes a summary payload.
    ///
    /// # Errors
    ///
    /// Returns [`SerialError`] on malformed JSON or missing fields.
    pub fn decode(payload: &[u8]) -> Result<Self, SerialError> {
        let v = parse_payload(payload)?;
        Ok(Self {
            engine: v.str_field("engine")?,
            cells: v.u64_field("cells")?,
            stats: EngineStats {
                requested: v.u64_field("requested")?,
                deduped: v.u64_field("deduped")?,
                mem_hits: v.u64_field("mem_hits")?,
                disk_hits: v.u64_field("disk_hits")?,
                coalesced: v.u64_field("coalesced")?,
                corrupt: v.u64_field("corrupt")?,
                evicted: v.u64_field("evicted")?,
                inline_simulated: v.u64_field("inline")?,
                simulated: v.u64_field("simulated")?,
            },
        })
    }
}

/// A metrics exchange: the client's query carries empty `text`, the
/// server's reply carries the rendered Prometheus-style snapshot
/// (request counters, latency quantiles, run-cache counters, and —
/// under the `obs` feature — `sim_*` engine metrics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsFrame {
    /// Prometheus-style text exposition (empty in a client's query).
    pub text: String,
}

impl StatsFrame {
    /// Encodes the stats payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        Value::Obj(vec![
            ("proto".to_owned(), Value::Num(PROTO_VERSION)),
            ("text".to_owned(), Value::Str(self.text.clone())),
        ])
        .render()
        .into_bytes()
    }

    /// Decodes a stats payload.
    ///
    /// # Errors
    ///
    /// Returns [`SerialError`] on malformed JSON, a missing field, or a
    /// protocol-version mismatch.
    pub fn decode(payload: &[u8]) -> Result<Self, SerialError> {
        let v = parse_payload(payload)?;
        let proto = v.u64_field("proto")?;
        if proto != PROTO_VERSION {
            return Err(SerialError {
                offset: 0,
                message: format!("protocol version {proto} (this build speaks {PROTO_VERSION})"),
            });
        }
        Ok(Self {
            text: v.str_field("text")?,
        })
    }
}

/// A client's telemetry query: capture timelines for one scheme /
/// prefetcher pair across a workload set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineQuery {
    /// Registered scheme name.
    pub scheme: String,
    /// Registered L1D prefetcher name.
    pub l1pf: String,
    /// Workload names; empty means the server's active workload set.
    pub workloads: Vec<String>,
    /// Window length in simulated cycles; 0 means the server default.
    pub window_cycles: u64,
    /// Journey sampling modulus (every K-th demand load); 0 means the
    /// server default.
    pub journey_every: u64,
}

impl TimelineQuery {
    /// Encodes the query payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let workloads: Vec<Value> = self
            .workloads
            .iter()
            .map(|w| Value::Str(w.clone()))
            .collect();
        Value::Obj(vec![
            ("proto".to_owned(), Value::Num(PROTO_VERSION)),
            ("scheme".to_owned(), Value::Str(self.scheme.clone())),
            ("l1pf".to_owned(), Value::Str(self.l1pf.clone())),
            ("workloads".to_owned(), Value::Arr(workloads)),
            ("window_cycles".to_owned(), Value::Num(self.window_cycles)),
            ("journey_every".to_owned(), Value::Num(self.journey_every)),
        ])
        .render()
        .into_bytes()
    }

    /// Decodes a query payload.
    ///
    /// # Errors
    ///
    /// Returns [`SerialError`] on malformed JSON, missing fields, or a
    /// protocol-version mismatch.
    pub fn decode(payload: &[u8]) -> Result<Self, SerialError> {
        let v = parse_payload(payload)?;
        let proto = v.u64_field("proto")?;
        if proto != PROTO_VERSION {
            return Err(SerialError {
                offset: 0,
                message: format!("protocol version {proto} (this build speaks {PROTO_VERSION})"),
            });
        }
        let workloads = v
            .arr_field("workloads")?
            .iter()
            .map(|w| match w {
                Value::Str(s) => Ok(s.clone()),
                _ => Err(SerialError {
                    offset: 0,
                    message: "workloads must be strings".to_owned(),
                }),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            scheme: v.str_field("scheme")?,
            l1pf: v.str_field("l1pf")?,
            workloads,
            window_cycles: v.u64_field("window_cycles")?,
            journey_every: v.u64_field("journey_every")?,
        })
    }
}

/// The server's telemetry answer: one captured [`Timeline`] per
/// workload, embedding the blob cache's serial encoding verbatim — a
/// streamed timeline renders to the same bytes a local capture does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineReply {
    /// The scheme the capture ran under.
    pub scheme: String,
    /// The L1D prefetcher the capture ran under.
    pub l1pf: String,
    /// `(workload, timeline)` pairs in request order.
    pub runs: Vec<(String, Timeline)>,
}

impl TimelineReply {
    /// Encodes the reply payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let runs: Vec<Value> = self
            .runs
            .iter()
            .map(|(workload, timeline)| {
                Value::Obj(vec![
                    ("workload".to_owned(), Value::Str(workload.clone())),
                    ("timeline".to_owned(), serial::timeline_value(timeline)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("proto".to_owned(), Value::Num(PROTO_VERSION)),
            ("scheme".to_owned(), Value::Str(self.scheme.clone())),
            ("l1pf".to_owned(), Value::Str(self.l1pf.clone())),
            ("runs".to_owned(), Value::Arr(runs)),
        ])
        .render()
        .into_bytes()
    }

    /// Decodes a reply payload.
    ///
    /// # Errors
    ///
    /// Returns [`SerialError`] on malformed JSON, missing fields, or a
    /// protocol-version mismatch.
    pub fn decode(payload: &[u8]) -> Result<Self, SerialError> {
        let v = parse_payload(payload)?;
        let proto = v.u64_field("proto")?;
        if proto != PROTO_VERSION {
            return Err(SerialError {
                offset: 0,
                message: format!("protocol version {proto} (this build speaks {PROTO_VERSION})"),
            });
        }
        let runs = v
            .arr_field("runs")?
            .iter()
            .map(|r| {
                Ok((
                    r.str_field("workload")?,
                    serial::timeline_from_value(r.field("timeline")?)?,
                ))
            })
            .collect::<Result<Vec<_>, SerialError>>()?;
        Ok(Self {
            scheme: v.str_field("scheme")?,
            l1pf: v.str_field("l1pf")?,
            runs,
        })
    }
}

/// A rejected request (unknown scheme, unknown workload, bad frame, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// Human-readable reason, suitable for the client's stderr.
    pub message: String,
}

impl ErrorFrame {
    /// Encodes the error payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        Value::Obj(vec![(
            "message".to_owned(),
            Value::Str(self.message.clone()),
        )])
        .render()
        .into_bytes()
    }

    /// Decodes an error payload.
    ///
    /// # Errors
    ///
    /// Returns [`SerialError`] on malformed JSON or a missing field.
    pub fn decode(payload: &[u8]) -> Result<Self, SerialError> {
        Ok(Self {
            message: parse_payload(payload)?.str_field("message")?,
        })
    }
}

fn parse_payload(payload: &[u8]) -> Result<Value, SerialError> {
    let text = std::str::from_utf8(payload).map_err(|_| SerialError {
        offset: 0,
        message: "payload is not UTF-8".to_owned(),
    })?;
    serial::parse_value(text)
}

/// Writes one frame (kind, 32-bit big-endian length, payload) and
/// flushes.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame payload too large")
    })?;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "frame payload too large",
        ));
    }
    w.write_all(&[kind as u8])?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// between frames).
///
/// # Errors
///
/// Returns an error for I/O failures, an unknown frame kind, an
/// oversized length prefix, or a connection closed mid-frame.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<(FrameKind, Vec<u8>)>> {
    let mut kind_byte = [0u8; 1];
    match r.read_exact(&mut kind_byte) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let kind = FrameKind::from_u8(kind_byte[0]).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unknown frame kind {}", kind_byte[0]),
        )
    })?;
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((kind, payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = SweepRequest {
            scheme: "Baseline".to_owned(),
            l1pf: "ipcp".to_owned(),
            workloads: vec!["spec.mcf_06".to_owned(), "bfs.kron".to_owned()],
        };
        assert_eq!(SweepRequest::decode(&req.encode()).expect("decodes"), req);
        let empty = SweepRequest {
            workloads: vec![],
            ..req
        };
        assert_eq!(
            SweepRequest::decode(&empty.encode()).expect("decodes"),
            empty
        );
    }

    #[test]
    fn cell_roundtrip_embeds_the_cache_codec() {
        let mut report = SimReport {
            total_cycles: 12345,
            ..SimReport::default()
        };
        report.dram.reads = 9;
        let cell = CellFrame {
            index: 3,
            workload: "spec.mcf_06".to_owned(),
            label: "1c|Tiny|w5000|i25000|spec.mcf_06|Baseline|ipcp|bw:default".to_owned(),
            report,
        };
        let back = CellFrame::decode(&cell.encode()).expect("decodes");
        assert_eq!(back, cell);
    }

    #[test]
    fn summary_and_error_roundtrip() {
        let sum = SummaryFrame {
            engine: "event".to_owned(),
            cells: 7,
            stats: EngineStats {
                requested: 10,
                deduped: 3,
                mem_hits: 2,
                disk_hits: 1,
                coalesced: 4,
                corrupt: 1,
                evicted: 2,
                inline_simulated: 0,
                simulated: 3,
            },
        };
        assert_eq!(SummaryFrame::decode(&sum.encode()).expect("decodes"), sum);
        let err = ErrorFrame {
            message: "unknown scheme: Basline (did you mean: Baseline?)".to_owned(),
        };
        assert_eq!(ErrorFrame::decode(&err.encode()).expect("decodes"), err);
    }

    #[test]
    fn stats_roundtrip() {
        let query = StatsFrame {
            text: String::new(),
        };
        assert_eq!(StatsFrame::decode(&query.encode()).expect("decodes"), query);
        let reply = StatsFrame {
            text: "# TYPE serve_requests_total counter\nserve_requests_total 3\n\
                   serve_request_latency_ns{quantile=\"0.99\"} 1234\n"
                .to_owned(),
        };
        assert_eq!(StatsFrame::decode(&reply.encode()).expect("decodes"), reply);
        // The frame kind round-trips over a byte stream like the others.
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Stats, &reply.encode()).expect("write");
        let (k, p) = read_frame(&mut std::io::Cursor::new(buf))
            .expect("read")
            .expect("frame");
        assert_eq!(k, FrameKind::Stats);
        assert_eq!(StatsFrame::decode(&p).expect("decodes"), reply);
    }

    #[test]
    fn timeline_roundtrip_embeds_the_blob_codec() {
        let query = TimelineQuery {
            scheme: "tlp".to_owned(),
            l1pf: "ipcp".to_owned(),
            workloads: vec!["bfs.urand".to_owned()],
            window_cycles: 0,
            journey_every: 16,
        };
        assert_eq!(
            TimelineQuery::decode(&query.encode()).expect("decodes"),
            query
        );
        let mut timeline = Timeline {
            window_cycles: 10_000,
            journey_every: 64,
            start_cycle: 5_000,
            end_cycle: 45_000,
            ..Timeline::default()
        };
        timeline.windows.push(tlp_timeline::WindowSample {
            start_cycle: 5_000,
            end_cycle: 15_000,
            counters: tlp_timeline::Counters {
                instructions: 31_000,
                dram_reads: 12,
                ..tlp_timeline::Counters::default()
            },
            rob_occupancy: 101,
            mshr_occupancy: 7,
        });
        timeline.journeys.push(tlp_timeline::JourneyRecord {
            core: 0,
            ordinal: 64,
            pc: 0x401_000,
            vaddr: 0xfeed_0000,
            dispatch: 6_000,
            l1_at: 6_004,
            fill_at: 6_210,
            served_level: 3,
            ..tlp_timeline::JourneyRecord::default()
        });
        let reply = TimelineReply {
            scheme: "tlp".to_owned(),
            l1pf: "ipcp".to_owned(),
            runs: vec![("bfs.urand".to_owned(), timeline)],
        };
        let back = TimelineReply::decode(&reply.encode()).expect("decodes");
        assert_eq!(back, reply);
        // A timeline reply is not a stats frame, and vice versa.
        assert!(StatsFrame::decode(&reply.encode()).is_err());
        assert!(TimelineReply::decode(
            &StatsFrame {
                text: String::new()
            }
            .encode()
        )
        .is_err());
        // The frame kind survives a byte stream.
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Timeline, &reply.encode()).expect("write");
        let (k, p) = read_frame(&mut std::io::Cursor::new(buf))
            .expect("read")
            .expect("frame");
        assert_eq!(k, FrameKind::Timeline);
        assert_eq!(TimelineReply::decode(&p).expect("decodes"), reply);
    }

    #[test]
    fn frames_roundtrip_over_a_byte_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Error, b"{\"message\":\"x\"}").expect("write");
        write_frame(&mut buf, FrameKind::Summary, b"{}").expect("write");
        let mut cursor = std::io::Cursor::new(buf);
        let (k1, p1) = read_frame(&mut cursor).expect("read").expect("frame");
        assert_eq!(
            (k1, p1.as_slice()),
            (FrameKind::Error, b"{\"message\":\"x\"}".as_slice())
        );
        let (k2, _) = read_frame(&mut cursor).expect("read").expect("frame");
        assert_eq!(k2, FrameKind::Summary);
        assert!(
            read_frame(&mut cursor).expect("read").is_none(),
            "clean EOF"
        );
    }

    #[test]
    fn oversized_and_unknown_frames_are_rejected() {
        let mut buf = vec![9u8]; // unknown kind
        buf.extend_from_slice(&0u32.to_be_bytes());
        assert!(read_frame(&mut std::io::Cursor::new(buf)).is_err());
        let mut buf = vec![FrameKind::Cell as u8];
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(read_frame(&mut std::io::Cursor::new(buf)).is_err());
        // Truncated mid-payload: an error, not a clean EOF.
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Cell, b"{\"index\":1}").expect("write");
        buf.truncate(buf.len() - 3);
        assert!(read_frame(&mut std::io::Cursor::new(buf)).is_err());
    }
}
