//! The client half: connect, submit sweeps, collect streamed cells.

use std::net::{TcpStream, ToSocketAddrs};

use tlp_sim::serial::SerialError;
use tlp_sim::SimReport;

use crate::protocol::{
    read_frame, write_frame, CellFrame, ErrorFrame, FrameKind, StatsFrame, SummaryFrame,
    SweepRequest, TimelineQuery, TimelineReply,
};

/// Errors surfaced by client-side requests.
#[derive(Debug)]
pub enum ServeError {
    /// The transport failed (connect, read, write).
    Io(std::io::Error),
    /// The peer sent bytes that don't decode as the protocol.
    Protocol(String),
    /// The server rejected the request (its ERROR frame's message —
    /// unknown scheme, unknown workload, version mismatch, ...).
    Server(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport: {e}"),
            ServeError::Protocol(m) => write!(f, "protocol: {m}"),
            ServeError::Server(m) => write!(f, "server: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<SerialError> for ServeError {
    fn from(e: SerialError) -> Self {
        ServeError::Protocol(e.to_string())
    }
}

/// A complete response to one sweep request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepReply {
    /// The streamed cells, re-sorted into request (workload) order —
    /// the wire order is completion order.
    pub cells: Vec<CellFrame>,
    /// The terminating summary.
    pub summary: SummaryFrame,
}

impl SweepReply {
    /// The reply as `(workload, report)` rows in request order — the
    /// shape [`tlp_harness::scheme_result`] renders.
    #[must_use]
    pub fn rows(&self) -> Vec<(String, SimReport)> {
        self.cells
            .iter()
            .map(|c| (c.workload.clone(), c.report.clone()))
            .collect()
    }
}

/// A connection to a running `tlp-serve` daemon. One connection carries
/// any number of sequential sweeps.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Ok(Self {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Submits one sweep and blocks until the response completes,
    /// collecting cells as the server streams them.
    ///
    /// # Errors
    ///
    /// [`ServeError::Server`] when the daemon rejects the request,
    /// [`ServeError::Protocol`]/[`ServeError::Io`] on a broken peer or
    /// transport.
    pub fn sweep(&mut self, req: &SweepRequest) -> Result<SweepReply, ServeError> {
        write_frame(&mut self.stream, FrameKind::Request, &req.encode())?;
        let mut cells: Vec<CellFrame> = Vec::new();
        loop {
            match read_frame(&mut self.stream)? {
                None => {
                    return Err(ServeError::Protocol(
                        "connection closed mid-response".to_owned(),
                    ))
                }
                Some((FrameKind::Cell, payload)) => cells.push(CellFrame::decode(&payload)?),
                Some((FrameKind::Summary, payload)) => {
                    let summary = SummaryFrame::decode(&payload)?;
                    cells.sort_by_key(|c| c.index);
                    return Ok(SweepReply { cells, summary });
                }
                Some((FrameKind::Error, payload)) => {
                    return Err(ServeError::Server(ErrorFrame::decode(&payload)?.message))
                }
                Some((kind, _)) => {
                    return Err(ServeError::Protocol(format!(
                        "unexpected {kind:?} frame in sweep response"
                    )))
                }
            }
        }
    }

    /// Asks the daemon for its live metrics snapshot: Prometheus-style
    /// text with the serve-layer counters and latency quantiles, the
    /// shared run cache's counters and phase histograms, and (when the
    /// daemon was built with the `obs` feature) the `sim_*` engine
    /// metrics.
    ///
    /// # Errors
    ///
    /// [`ServeError::Server`] when the daemon rejects the query,
    /// [`ServeError::Protocol`]/[`ServeError::Io`] on a broken peer or
    /// transport.
    /// Asks the daemon to capture simulated-time telemetry: one
    /// [`tlp_sim::Timeline`] per workload, streamed back through the
    /// daemon's blob cache. Deterministic captures mean the reply's
    /// blobs are byte-identical to what a local `--timeline` run of the
    /// same cells would produce.
    ///
    /// # Errors
    ///
    /// [`ServeError::Server`] when the daemon rejects the query,
    /// [`ServeError::Protocol`]/[`ServeError::Io`] on a broken peer or
    /// transport.
    pub fn timeline(&mut self, query: &TimelineQuery) -> Result<TimelineReply, ServeError> {
        write_frame(&mut self.stream, FrameKind::Timeline, &query.encode())?;
        match read_frame(&mut self.stream)? {
            None => Err(ServeError::Protocol(
                "connection closed mid-response".to_owned(),
            )),
            Some((FrameKind::Timeline, payload)) => Ok(TimelineReply::decode(&payload)?),
            Some((FrameKind::Error, payload)) => {
                Err(ServeError::Server(ErrorFrame::decode(&payload)?.message))
            }
            Some((kind, _)) => Err(ServeError::Protocol(format!(
                "unexpected {kind:?} frame in timeline response"
            ))),
        }
    }

    pub fn stats(&mut self) -> Result<String, ServeError> {
        let query = StatsFrame {
            text: String::new(),
        };
        write_frame(&mut self.stream, FrameKind::Stats, &query.encode())?;
        match read_frame(&mut self.stream)? {
            None => Err(ServeError::Protocol(
                "connection closed mid-response".to_owned(),
            )),
            Some((FrameKind::Stats, payload)) => Ok(StatsFrame::decode(&payload)?.text),
            Some((FrameKind::Error, payload)) => {
                Err(ServeError::Server(ErrorFrame::decode(&payload)?.message))
            }
            Some((kind, _)) => Err(ServeError::Protocol(format!(
                "unexpected {kind:?} frame in stats response"
            ))),
        }
    }
}
