//! PPF: the Perceptron-based Prefetch Filter (Bhatia et al., ISCA 2019) —
//! the state-of-the-art prefetch filter the paper compares against.
//!
//! PPF rides on an aggressively configured SPP at the L2: SPP is allowed to
//! chase long low-confidence signature paths, and the perceptron filter
//! prunes the resulting flood. For every candidate, features drawn from
//! the candidate's address and SPP's internal state (signature, depth,
//! path confidence, trigger PC) index a set of weight tables; the sum
//! decides issue/reject.
//!
//! Training is usefulness-driven, through two recording tables:
//! * the **prefetch table** remembers recently issued prefetches — a
//!   demand hit trains positively, an unused eviction negatively;
//! * the **reject table** remembers recently rejected candidates — a
//!   demand miss matching it means the filter was wrong to reject, and
//!   trains positively.
//!
//! Storage is dominated by the weight tables (~20 KB here, 40 KB in the
//! paper) — an order of magnitude more than TLP's 7 KB (Table II).

use tlp_perceptron::{combine, FeatureIndices, HashedPerceptron, TableSpec};
use tlp_sim::hooks::{L2Access, L2PrefetchCandidate, L2PrefetchFilter};
use tlp_sim::types::{line_offset_in_page, page_of, LINE_SIZE};

const NUM_FEATURES: usize = 8;
const RECORD_TABLE_SIZE: usize = 1024;

/// PPF configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PpfConfig {
    /// Entries per weight table.
    pub table_size: usize,
    /// Weight width in bits.
    pub weight_bits: u32,
    /// Acceptance threshold: issue when `sum >= tau`.
    pub tau: i32,
    /// Training threshold θ.
    pub theta: i32,
}

impl PpfConfig {
    /// The ISCA'19 configuration (scaled to 8 × 4096 × 5-bit tables).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            table_size: 4096,
            weight_bits: 5,
            tau: -8,
            theta: 20,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct RecordEntry {
    valid: bool,
    line: u64,
    indices: FeatureIndices,
    sum: i32,
}

/// The PPF filter.
#[derive(Debug)]
pub struct Ppf {
    perceptron: HashedPerceptron,
    prefetch_table: Vec<RecordEntry>,
    reject_table: Vec<RecordEntry>,
    cfg: PpfConfig,
}

impl Ppf {
    /// Builds PPF from its configuration.
    #[must_use]
    pub fn new(cfg: PpfConfig) -> Self {
        let spec = TableSpec::new(cfg.table_size, cfg.weight_bits);
        Self {
            perceptron: HashedPerceptron::new(&[spec; NUM_FEATURES]),
            prefetch_table: vec![RecordEntry::default(); RECORD_TABLE_SIZE],
            reject_table: vec![RecordEntry::default(); RECORD_TABLE_SIZE],
            cfg,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &PpfConfig {
        &self.cfg
    }

    /// Weight storage in bits.
    #[must_use]
    pub fn weight_storage_bits(&self) -> usize {
        self.perceptron.storage_bits()
    }

    fn features(trigger: &L2Access, cand: &L2PrefetchCandidate) -> [u64; NUM_FEATURES] {
        let line = cand.paddr / LINE_SIZE;
        let offset = line_offset_in_page(cand.paddr);
        let page = page_of(cand.paddr);
        [
            line,
            combine(offset, 0x1),
            page,
            u64::from(cand.signature),
            combine(u64::from(cand.signature), u64::from(cand.depth)),
            combine(u64::from(cand.confidence / 10), u64::from(cand.depth)),
            trigger.pc,
            combine(trigger.pc, offset),
        ]
    }

    fn slot(line: u64) -> usize {
        (line as usize).wrapping_mul(0x9e3779b1) % RECORD_TABLE_SIZE
    }

    fn record(table: &mut [RecordEntry], line: u64, indices: FeatureIndices, sum: i32) {
        table[Self::slot(line)] = RecordEntry {
            valid: true,
            line,
            indices,
            sum,
        };
    }

    fn take(table: &mut [RecordEntry], line: u64) -> Option<(FeatureIndices, i32)> {
        let e = &mut table[Self::slot(line)];
        if e.valid && e.line == line {
            e.valid = false;
            Some((e.indices, e.sum))
        } else {
            None
        }
    }
}

impl L2PrefetchFilter for Ppf {
    fn filter(&mut self, trigger: &L2Access, cand: &L2PrefetchCandidate) -> bool {
        let hashes = Self::features(trigger, cand);
        let indices = self.perceptron.indices(&hashes);
        let sum = self.perceptron.sum(&indices);
        let line = cand.paddr / LINE_SIZE;
        if sum >= self.cfg.tau {
            Self::record(&mut self.prefetch_table, line, indices, sum);
            true
        } else {
            Self::record(&mut self.reject_table, line, indices, sum);
            false
        }
    }

    fn on_useful(&mut self, paddr: u64) {
        let line = paddr / LINE_SIZE;
        if let Some((indices, sum)) = Self::take(&mut self.prefetch_table, line) {
            self.perceptron
                .train_thresholded(&indices, true, sum, self.cfg.theta);
        }
    }

    fn on_useless(&mut self, paddr: u64) {
        let line = paddr / LINE_SIZE;
        if let Some((indices, sum)) = Self::take(&mut self.prefetch_table, line) {
            self.perceptron
                .train_thresholded(&indices, false, sum, self.cfg.theta);
        }
    }

    fn on_demand_miss(&mut self, paddr: u64) {
        let line = paddr / LINE_SIZE;
        if let Some((indices, sum)) = Self::take(&mut self.reject_table, line) {
            // The demand missed on a line we refused to prefetch: the
            // filter was wrong — train toward acceptance.
            self.perceptron
                .train_thresholded(&indices, true, sum, self.cfg.theta);
        }
    }

    fn name(&self) -> &'static str {
        "ppf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trigger(pc: u64, paddr: u64) -> L2Access {
        L2Access {
            core: 0,
            pc,
            paddr,
            hit: false,
            cycle: 0,
        }
    }

    fn cand(paddr: u64, sig: u32, conf: u32, depth: u8) -> L2PrefetchCandidate {
        L2PrefetchCandidate {
            paddr,
            fill_llc_only: false,
            signature: sig,
            confidence: conf,
            depth,
        }
    }

    #[test]
    fn cold_filter_accepts() {
        let mut ppf = Ppf::new(PpfConfig::paper());
        assert!(ppf.filter(&trigger(0x400, 0x1000), &cand(0x2000, 7, 90, 1)));
    }

    #[test]
    fn useless_prefetches_train_toward_rejection() {
        let mut ppf = Ppf::new(PpfConfig::paper());
        let t = trigger(0x400, 0x1000);
        for i in 0..300u64 {
            let c = cand(0x10_0000 + i * 64, 0x3f, 20, 4);
            if ppf.filter(&t, &c) {
                ppf.on_useless(c.paddr);
            }
        }
        // A fresh candidate with the same profile must now be rejected.
        let rejected = !ppf.filter(&t, &cand(0x90_0000, 0x3f, 20, 4));
        assert!(rejected, "PPF failed to learn from useless prefetches");
    }

    #[test]
    fn useful_prefetches_keep_acceptance() {
        let mut ppf = Ppf::new(PpfConfig::paper());
        let t = trigger(0x500, 0x1000);
        for i in 0..300u64 {
            let c = cand(0x20_0000 + i * 64, 0x11, 95, 1);
            if ppf.filter(&t, &c) {
                ppf.on_useful(c.paddr);
            }
        }
        assert!(ppf.filter(&t, &cand(0xa0_0000, 0x11, 95, 1)));
    }

    #[test]
    fn reject_table_recovers_wrong_rejections() {
        let mut ppf = Ppf::new(PpfConfig::paper());
        let t = trigger(0x600, 0x1000);
        // Drive the profile into rejection.
        for i in 0..300u64 {
            let c = cand(0x30_0000 + i * 64, 0x22, 10, 6);
            if ppf.filter(&t, &c) {
                ppf.on_useless(c.paddr);
            }
        }
        let probe = cand(0xb0_0000, 0x22, 10, 6);
        assert!(!ppf.filter(&t, &probe), "profile must start rejected");
        // Rejected lines keep being demanded: reject-table hits train back.
        let mut flipped = false;
        for i in 0..400u64 {
            let c = cand(0x40_0000 + i * 64, 0x22, 10, 6);
            if ppf.filter(&t, &c) {
                flipped = true;
                break;
            }
            ppf.on_demand_miss(c.paddr);
        }
        assert!(flipped, "reject-table training must recover acceptance");
    }

    #[test]
    fn training_without_record_is_a_noop() {
        let mut ppf = Ppf::new(PpfConfig::paper());
        ppf.on_useful(0xdead_beef);
        ppf.on_useless(0xdead_beef);
        ppf.on_demand_miss(0xdead_beef);
    }

    #[test]
    fn storage_is_roughly_20kb() {
        let ppf = Ppf::new(PpfConfig::paper());
        let kb = ppf.weight_storage_bits() as f64 / 8.0 / 1024.0;
        assert!((15.0..=45.0).contains(&kb), "weights {kb:.1} KB");
    }
}
