//! `tlp-baselines`: the state-of-the-art mechanisms the paper compares
//! against.
//!
//! * [`Hermes`] — the perceptron-based off-chip predictor of Bera et al.
//!   (MICRO 2022). A positive prediction issues a speculative DRAM request
//!   in parallel with the cache hierarchy walk; there is no delay
//!   mechanism, which is exactly the bandwidth weakness the paper's
//!   Figures 2–4 quantify.
//! * [`Ppf`] — the Perceptron-based Prefetch Filter of Bhatia et al.
//!   (ISCA 2019), built on top of an aggressively configured SPP at the
//!   L2. PPF trains on prefetch *usefulness* and keeps prefetch/reject
//!   tables so it can also learn from wrongly rejected prefetches.
//! * [`Lp`] — the residency-tracking Level Prediction scheme of Jalili &
//!   Erez (HPCA 2022), discussed in the paper's related work (§VII): a
//!   DRAM-resident flat array plus a small metadata cache. Included so the
//!   extension experiments can compare all three off-chip prediction
//!   strategies head-to-head.

pub mod hermes;
pub mod lp;
pub mod ppf;

pub use hermes::{Hermes, HermesConfig};
pub use lp::{Lp, LpConfig, LpStats};
pub use ppf::{Ppf, PpfConfig};
