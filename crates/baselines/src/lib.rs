//! `tlp-baselines`: the state-of-the-art mechanisms the paper compares
//! against.
//!
//! * [`Hermes`] — the perceptron-based off-chip predictor of Bera et al.
//!   (MICRO 2022). A positive prediction issues a speculative DRAM request
//!   in parallel with the cache hierarchy walk; there is no delay
//!   mechanism, which is exactly the bandwidth weakness the paper's
//!   Figures 2–4 quantify.
//! * [`Ppf`] — the Perceptron-based Prefetch Filter of Bhatia et al.
//!   (ISCA 2019), built on top of an aggressively configured SPP at the
//!   L2. PPF trains on prefetch *usefulness* and keeps prefetch/reject
//!   tables so it can also learn from wrongly rejected prefetches.
//! * [`Lp`] — the residency-tracking Level Prediction scheme of Jalili &
//!   Erez (HPCA 2022), discussed in the paper's related work (§VII): a
//!   DRAM-resident flat array plus a small metadata cache. Included so the
//!   extension experiments can compare all three off-chip prediction
//!   strategies head-to-head.

pub mod hermes;
pub mod lp;
pub mod ppf;

pub use hermes::{Hermes, HermesConfig};
pub use lp::{Lp, LpConfig, LpStats};
pub use ppf::{Ppf, PpfConfig};

/// Registers this crate's components with a plugin registry (origin
/// `tlp-baselines`):
///
/// * off-chip predictors **`hermes`** (parameter `storage` =
///   `paper`|`extra`, default `paper`; `extra` is Figure 17's "+7 KB"
///   enlargement) and **`lp`** (Jalili & Erez's Level Prediction, no
///   parameters).
/// * L2 prefetch filter **`ppf`** (no parameters).
///
/// # Errors
///
/// Propagates registration collisions from the registry.
pub fn register_builtin(
    reg: &mut tlp_plugin::ComponentRegistry,
) -> Result<(), tlp_plugin::PluginError> {
    use std::sync::Arc;

    use tlp_plugin::PluginError;

    const ORIGIN: &str = "tlp-baselines";

    reg.register_offchip(
        "hermes",
        ORIGIN,
        Arc::new(|params, _ctx| {
            params.allow_keys("hermes", &["storage"])?;
            let cfg = match params.get("storage") {
                None | Some("paper") => HermesConfig::paper(),
                Some("extra") => HermesConfig::with_extra_storage(),
                Some(other) => {
                    return Err(PluginError::InvalidParam {
                        component: "hermes".to_owned(),
                        param: "storage".to_owned(),
                        message: format!("unknown budget '{other}' (expected paper or extra)"),
                    })
                }
            };
            Ok(Box::new(Hermes::new(cfg)))
        }),
    )?;
    reg.register_offchip(
        "lp",
        ORIGIN,
        Arc::new(|params, _ctx| {
            params.allow_keys("lp", &[])?;
            Ok(Box::new(Lp::new(LpConfig::hpca22())))
        }),
    )?;
    reg.register_l2_filter(
        "ppf",
        ORIGIN,
        Arc::new(|params, _ctx| {
            params.allow_keys("ppf", &[])?;
            Ok(Box::new(Ppf::new(PpfConfig::paper())))
        }),
    )?;
    Ok(())
}
