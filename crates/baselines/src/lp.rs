//! LP: cache Level Prediction (Jalili & Erez, HPCA 2022) — the
//! residency-tracking off-chip predictor the paper's related work (§VII)
//! discusses.
//!
//! LP keeps a *flat array* of per-line residency information in a reserved
//! DRAM region and caches recently used segments of it in a small on-chip
//! metadata cache. A demand load consults the metadata cache; when the
//! cached entry says the block is not resident in the hierarchy, the load
//! is routed to DRAM directly.
//!
//! The TLP paper lists three drawbacks, all of which this model exhibits:
//!
//! 1. **High false-positive rate.** The flat array only observes demand
//!    fills, so blocks brought in by prefetchers (or evicted at different
//!    times than the array assumes) are misclassified, triggering useless
//!    DRAM transactions.
//! 2. **Large storage.** Covering the workload's footprint requires a
//!    metadata cache orders of magnitude larger than TLP's 7 KB (see
//!    [`Lp::storage_bits`]).
//! 3. **No prefetch handling.** LP predicts demand loads only; it cannot
//!    filter inaccurate prefetches.
//!
//! # Model
//!
//! The DRAM-resident flat array is modelled by a bounded *residency shadow*:
//! a set-associative LRU tag store sized to the hierarchy's aggregate
//! capacity. Lines enter the shadow when a demand load completes (the block
//! is then resident) and age out by LRU as the tracked footprint exceeds
//! hierarchy capacity — mirroring how the real flat array is updated on
//! fills and evictions. Prediction requires the line's metadata segment to
//! be present in the metadata cache; a metadata miss yields no prediction
//! (the real design would have to fetch the segment from DRAM first) and
//! allocates the segment for subsequent accesses.

use tlp_sim::hooks::{LoadCtx, OffChipDecision, OffChipPredictor, OffChipTag};
use tlp_sim::types::{Level, LINE_SIZE, PAGE_SIZE};

/// LP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LpConfig {
    /// Residency-shadow sets (power of two).
    pub shadow_sets: usize,
    /// Residency-shadow associativity.
    pub shadow_ways: usize,
    /// Metadata-cache sets (power of two).
    pub md_sets: usize,
    /// Metadata-cache associativity.
    pub md_ways: usize,
}

impl LpConfig {
    /// A configuration scaled to the paper's single-core hierarchy:
    /// the shadow covers the aggregate L1D + L2 + LLC capacity
    /// (32 KB + 1 MB + 1.375 MB ≈ 39 K lines) and the metadata cache
    /// covers an 8 MB footprint in 4 KB segments.
    #[must_use]
    pub fn hpca22() -> Self {
        Self {
            shadow_sets: 4096,
            shadow_ways: 10,
            md_sets: 256,
            md_ways: 8,
        }
    }

    /// A small configuration for unit tests.
    #[must_use]
    pub fn test_tiny() -> Self {
        Self {
            shadow_sets: 8,
            shadow_ways: 2,
            md_sets: 4,
            md_ways: 2,
        }
    }
}

/// A minimal set-associative LRU tag store (no data), used for both the
/// residency shadow and the metadata cache.
#[derive(Debug)]
struct TagStore {
    tags: Vec<u64>,
    stamps: Vec<u64>,
    valid: Vec<bool>,
    sets: usize,
    ways: usize,
    clock: u64,
}

impl TagStore {
    fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways > 0, "ways must be nonzero");
        Self {
            tags: vec![0; sets * ways],
            stamps: vec![0; sets * ways],
            valid: vec![false; sets * ways],
            sets,
            ways,
            clock: 0,
        }
    }

    fn set_of(&self, key: u64) -> usize {
        (key as usize) & (self.sets - 1)
    }

    /// True when `key` is present; refreshes its LRU stamp.
    fn probe(&mut self, key: u64) -> bool {
        self.clock += 1;
        let base = self.set_of(key) * self.ways;
        for w in 0..self.ways {
            if self.valid[base + w] && self.tags[base + w] == key {
                self.stamps[base + w] = self.clock;
                return true;
            }
        }
        false
    }

    /// Inserts `key`, evicting the set's LRU entry if needed. Returns true
    /// when the key was newly inserted (false when already present).
    fn insert(&mut self, key: u64) -> bool {
        if self.probe(key) {
            return false;
        }
        let base = self.set_of(key) * self.ways;
        let slot = (0..self.ways)
            .min_by_key(|&w| {
                if self.valid[base + w] {
                    self.stamps[base + w]
                } else {
                    0
                }
            })
            .expect("ways is nonzero");
        self.tags[base + slot] = key;
        self.stamps[base + slot] = self.clock;
        self.valid[base + slot] = true;
        true
    }

    fn capacity(&self) -> usize {
        self.sets * self.ways
    }
}

/// Running counters describing LP's behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpStats {
    /// Loads for which the metadata segment was cached.
    pub md_hits: u64,
    /// Loads whose metadata segment had to be (re)fetched — no prediction.
    pub md_misses: u64,
    /// Off-chip predictions issued (speculative DRAM requests).
    pub predicted_offchip: u64,
    /// Off-chip predictions whose load was truly served from DRAM.
    pub correct_offchip: u64,
}

impl LpStats {
    /// Fraction of issued off-chip predictions that were correct.
    #[must_use]
    pub fn precision(&self) -> f64 {
        if self.predicted_offchip == 0 {
            return 0.0;
        }
        self.correct_offchip as f64 / self.predicted_offchip as f64
    }
}

/// The LP off-chip predictor.
#[derive(Debug)]
pub struct Lp {
    shadow: TagStore,
    metadata: TagStore,
    stats: LpStats,
}

impl Lp {
    /// Builds LP from its configuration.
    #[must_use]
    pub fn new(cfg: LpConfig) -> Self {
        Self {
            shadow: TagStore::new(cfg.shadow_sets, cfg.shadow_ways),
            metadata: TagStore::new(cfg.md_sets, cfg.md_ways),
            stats: LpStats::default(),
        }
    }

    /// Behaviour counters.
    #[must_use]
    pub fn stats(&self) -> LpStats {
        self.stats
    }

    /// On-chip storage of the metadata cache in bits: per segment, a 20-bit
    /// tag plus 2 bits of residency state per line in the 4 KB segment.
    /// (The flat array itself lives in DRAM and is not counted.)
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        let lines_per_segment = (PAGE_SIZE / LINE_SIZE) as usize;
        self.metadata.capacity() * (20 + 2 * lines_per_segment)
    }
}

impl OffChipPredictor for Lp {
    fn predict_load(&mut self, ctx: &LoadCtx) -> OffChipTag {
        let line = ctx.vaddr / LINE_SIZE;
        let segment = ctx.vaddr / PAGE_SIZE;
        // The prediction is only available when the metadata segment is
        // on-chip; otherwise allocate it for later loads (modelling the
        // flat-array fetch) and stay silent.
        if !self.metadata.probe(segment) {
            self.metadata.insert(segment);
            self.stats.md_misses += 1;
            return OffChipTag {
                decision: OffChipDecision::NoIssue,
                confidence: 0,
                indices: tlp_perceptron::FeatureIndices::empty(),
                valid: true,
            };
        }
        self.stats.md_hits += 1;
        // Shadow probe without refreshing LRU order would be ideal; the
        // refresh models the flat array marking the line "recently asked
        // about", which is harmless for residency semantics.
        let resident = self.shadow.probe(line);
        let decision = if resident {
            OffChipDecision::NoIssue
        } else {
            self.stats.predicted_offchip += 1;
            OffChipDecision::IssueNow
        };
        OffChipTag {
            decision,
            // LP is not confidence-based; encode the binary decision so
            // downstream consumers (SLP's leveling feature) still work.
            confidence: if resident { -1 } else { 1 },
            indices: tlp_perceptron::FeatureIndices::empty(),
            valid: true,
        }
    }

    fn train_load(&mut self, ctx: &LoadCtx, tag: &OffChipTag, served_from: Level) {
        if tag.decision == OffChipDecision::IssueNow && served_from.is_off_chip() {
            self.stats.correct_offchip += 1;
        }
        // The block is now resident in the hierarchy: record it in the flat
        // array (shadow). LRU aging models capacity evictions.
        self.shadow.insert(ctx.vaddr / LINE_SIZE);
    }

    fn name(&self) -> &'static str {
        "lp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pc: u64, vaddr: u64) -> LoadCtx {
        LoadCtx {
            core: 0,
            pc,
            vaddr,
            cycle: 0,
        }
    }

    #[test]
    fn cold_metadata_yields_no_prediction() {
        let mut lp = Lp::new(LpConfig::test_tiny());
        let tag = lp.predict_load(&ctx(0x400, 0x1000));
        assert_eq!(tag.decision, OffChipDecision::NoIssue);
        assert_eq!(lp.stats().md_misses, 1);
        assert_eq!(lp.stats().md_hits, 0);
    }

    #[test]
    fn absent_line_predicts_offchip_once_metadata_warm() {
        let mut lp = Lp::new(LpConfig::test_tiny());
        let a = ctx(0x400, 0x1000);
        let _ = lp.predict_load(&a); // warms the segment
        let tag = lp.predict_load(&a);
        assert_eq!(
            tag.decision,
            OffChipDecision::IssueNow,
            "untracked line must be predicted off-chip"
        );
        assert_eq!(lp.stats().predicted_offchip, 1);
    }

    #[test]
    fn trained_line_predicts_resident() {
        let mut lp = Lp::new(LpConfig::test_tiny());
        let a = ctx(0x400, 0x1000);
        let _ = lp.predict_load(&a);
        let tag = lp.predict_load(&a);
        lp.train_load(&a, &tag, Level::Dram);
        let tag = lp.predict_load(&a);
        assert_eq!(
            tag.decision,
            OffChipDecision::NoIssue,
            "a just-filled line is resident"
        );
    }

    #[test]
    fn capacity_evictions_restore_offchip_prediction() {
        let mut lp = Lp::new(LpConfig::test_tiny());
        let a = ctx(0x400, 0x0);
        let _ = lp.predict_load(&a);
        let t = lp.predict_load(&a);
        lp.train_load(&a, &t, Level::Dram);
        // Flood the shadow's set 0 (16-line capacity footprint; stride by
        // shadow_sets lines to stay in set 0).
        for i in 1..=8u64 {
            let v = i * 8 * LINE_SIZE;
            let c = ctx(0x400, v);
            let t = lp.predict_load(&c);
            lp.train_load(&c, &t, Level::Dram);
        }
        let tag = lp.predict_load(&a);
        // Metadata for segment 0 may itself have aged; re-warm if needed.
        let tag = if lp.stats().md_misses > 1 {
            lp.predict_load(&a)
        } else {
            tag
        };
        assert_eq!(
            tag.decision,
            OffChipDecision::IssueNow,
            "an aged-out line must be predicted off-chip again"
        );
    }

    #[test]
    fn precision_counts_true_offchip_outcomes() {
        let mut lp = Lp::new(LpConfig::test_tiny());
        let a = ctx(0x400, 0x4000);
        let _ = lp.predict_load(&a);
        let t1 = lp.predict_load(&a);
        assert_eq!(t1.decision, OffChipDecision::IssueNow);
        lp.train_load(&a, &t1, Level::Dram); // correct
        let b = ctx(0x400, 0x8000);
        let _ = lp.predict_load(&b);
        let t2 = lp.predict_load(&b);
        assert_eq!(t2.decision, OffChipDecision::IssueNow);
        lp.train_load(&b, &t2, Level::L2); // false positive
        let s = lp.stats();
        assert_eq!(s.predicted_offchip, 2);
        assert_eq!(s.correct_offchip, 1);
        assert!((s.precision() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn storage_dwarfs_tlp_budget() {
        let lp = Lp::new(LpConfig::hpca22());
        // The TLP paper's critique: LP's on-chip metadata alone is an order
        // of magnitude larger than TLP's 7 KB.
        assert!(lp.storage_bits() / 8 > 30 * 1024, "{}", lp.storage_bits());
    }

    #[test]
    fn tag_store_rejects_bad_geometry() {
        let r = std::panic::catch_unwind(|| TagStore::new(3, 2));
        assert!(r.is_err());
    }
}
