//! Hermes: perceptron-based off-chip load prediction (Bera et al.,
//! MICRO 2022) — the state-of-the-art off-chip predictor the paper
//! compares against.
//!
//! Hermes (its predictor is called POPET) uses the same program features as
//! FLP (Table I's "legacy Hermes features") and a single activation
//! threshold: any load whose confidence clears it triggers a speculative
//! DRAM request *immediately*, in parallel with the regular cache access.
//! There is no notion of delaying low-confidence predictions — the paper's
//! Finding 3 shows 17.7% of its off-chip predictions are served by the
//! L1D, pure DRAM-bandwidth waste that TLP's selective delay recovers.

use tlp_core::offchip_base::{OffChipPerceptron, OffChipPerceptronConfig};
use tlp_sim::hooks::{LoadCtx, OffChipDecision, OffChipPredictor, OffChipTag};
use tlp_sim::types::Level;

/// Hermes configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HermesConfig {
    /// Shared perceptron geometry/training parameters.
    pub perceptron: OffChipPerceptronConfig,
    /// Activation threshold τ_act: predict off-chip when the sum clears it.
    pub tau_act: i32,
}

impl HermesConfig {
    /// The MICRO'22 configuration at the paper's storage budget.
    ///
    /// τ_act is slightly positive: Hermes is tuned for coverage, accepting
    /// mispredictions (≈42% in the paper's Figure 4) in exchange for
    /// hiding cache-walk latency on true off-chip loads.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            perceptron: OffChipPerceptronConfig::paper(),
            tau_act: 2,
        }
    }

    /// Hermes enlarged with TLP's extra storage budget (Figure 17's
    /// "Hermes + 7KB" design): 4× tables add 7.5 KB of weights.
    #[must_use]
    pub fn with_extra_storage() -> Self {
        Self {
            perceptron: OffChipPerceptronConfig::scaled(4),
            tau_act: 2,
        }
    }
}

/// The Hermes off-chip predictor.
#[derive(Debug)]
pub struct Hermes {
    base: OffChipPerceptron,
    cfg: HermesConfig,
}

impl Hermes {
    /// Builds Hermes from its configuration.
    #[must_use]
    pub fn new(cfg: HermesConfig) -> Self {
        Self {
            base: OffChipPerceptron::new(cfg.perceptron),
            cfg,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &HermesConfig {
        &self.cfg
    }
}

impl OffChipPredictor for Hermes {
    fn predict_load(&mut self, ctx: &LoadCtx) -> OffChipTag {
        let (sum, indices) = self.base.predict(ctx.pc, ctx.vaddr);
        let decision = if sum >= self.cfg.tau_act {
            OffChipDecision::IssueNow
        } else {
            OffChipDecision::NoIssue
        };
        OffChipTag {
            decision,
            confidence: sum,
            indices,
            valid: true,
        }
    }

    fn train_load(&mut self, _ctx: &LoadCtx, tag: &OffChipTag, served_from: Level) {
        if !tag.valid {
            return;
        }
        self.base
            .train(&tag.indices, tag.confidence, served_from.is_off_chip());
    }

    fn name(&self) -> &'static str {
        "hermes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pc: u64, vaddr: u64) -> LoadCtx {
        LoadCtx {
            core: 0,
            pc,
            vaddr,
            cycle: 0,
        }
    }

    #[test]
    fn never_delays() {
        let mut h = Hermes::new(HermesConfig::paper());
        // Train hard toward off-chip; the decision must only ever be
        // IssueNow or NoIssue.
        for i in 0..300u64 {
            let c = ctx(0x400, 0x100_0000 + i * 4096);
            let tag = h.predict_load(&c);
            assert_ne!(tag.decision, OffChipDecision::IssueOnL1dMiss);
            h.train_load(&c, &tag, Level::Dram);
        }
        let tag = h.predict_load(&ctx(0x400, 0x900_0000));
        assert_eq!(tag.decision, OffChipDecision::IssueNow);
    }

    #[test]
    fn learns_onchip_pcs() {
        let mut h = Hermes::new(HermesConfig::paper());
        for _ in 0..300 {
            let c = ctx(0x500, 0x4000);
            let tag = h.predict_load(&c);
            h.train_load(&c, &tag, Level::L1d);
        }
        let tag = h.predict_load(&ctx(0x500, 0x4000));
        assert_eq!(tag.decision, OffChipDecision::NoIssue);
        assert!(tag.confidence < 0);
    }

    #[test]
    fn extra_storage_scales_tables() {
        let h = Hermes::new(HermesConfig::with_extra_storage());
        let base = Hermes::new(HermesConfig::paper());
        assert_eq!(
            h.base.weight_storage_bits(),
            4 * base.base.weight_storage_bits()
        );
    }
}
