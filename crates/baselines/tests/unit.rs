//! Dedicated unit tests for the baselines crate, exercising each model
//! through its public hook-trait surface: Hermes' τ_act activation, PPF's
//! prefetch/reject recording-table training, and LP's metadata-cache hit
//! path.

use tlp_baselines::{Hermes, HermesConfig, Lp, LpConfig, Ppf, PpfConfig};
use tlp_sim::hooks::{
    L2Access, L2PrefetchCandidate, L2PrefetchFilter, LoadCtx, OffChipDecision, OffChipPredictor,
};
use tlp_sim::types::Level;

fn load(pc: u64, vaddr: u64) -> LoadCtx {
    LoadCtx {
        core: 0,
        pc,
        vaddr,
        cycle: 0,
    }
}

mod hermes {
    use super::*;

    /// Trains one PC toward the given outcome.
    fn train(h: &mut Hermes, pc: u64, offchip: bool, n: u64) {
        for i in 0..n {
            let c = load(pc, 0x10_0000 + i * 4096);
            let tag = h.predict_load(&c);
            h.train_load(&c, &tag, if offchip { Level::Dram } else { Level::L1d });
        }
    }

    #[test]
    fn cold_predictor_stays_below_tau_act() {
        let mut h = Hermes::new(HermesConfig::paper());
        let tag = h.predict_load(&load(0x400, 0x1000));
        assert_eq!(tag.decision, OffChipDecision::NoIssue);
        assert!(tag.confidence < h.config().tau_act);
        assert!(tag.valid);
    }

    #[test]
    fn activation_fires_exactly_at_tau_act() {
        let mut h = Hermes::new(HermesConfig::paper());
        train(&mut h, 0x400, true, 300);
        // Every decision is consistent with the confidence/τ_act contract.
        for i in 0..100u64 {
            let tag = h.predict_load(&load(0x400, 0x90_0000 + i * 4096));
            let expect = if tag.confidence >= h.config().tau_act {
                OffChipDecision::IssueNow
            } else {
                OffChipDecision::NoIssue
            };
            assert_eq!(tag.decision, expect, "sum {}", tag.confidence);
        }
    }

    #[test]
    fn hermes_never_uses_the_delayed_path() {
        let mut h = Hermes::new(HermesConfig::paper());
        train(&mut h, 0x500, true, 200);
        for i in 0..200u64 {
            let c = load(0x500, 0x30_0000 + i * 4096);
            let tag = h.predict_load(&c);
            assert_ne!(
                tag.decision,
                OffChipDecision::IssueOnL1dMiss,
                "Hermes has no selective delay"
            );
            // Keep training with mixed outcomes to scan the sum range.
            h.train_load(&c, &tag, if i % 2 == 0 { Level::Dram } else { Level::L2 });
        }
    }

    #[test]
    fn onchip_training_deactivates() {
        let mut h = Hermes::new(HermesConfig::paper());
        train(&mut h, 0x600, true, 300);
        assert_eq!(
            h.predict_load(&load(0x600, 0xa0_0000)).decision,
            OffChipDecision::IssueNow
        );
        train(&mut h, 0x600, false, 600);
        assert_eq!(
            h.predict_load(&load(0x600, 0xb0_0000)).decision,
            OffChipDecision::NoIssue,
            "sustained on-chip outcomes must pull the PC back under τ_act"
        );
    }

    #[test]
    fn extra_storage_config_quadruples_tables() {
        let paper = HermesConfig::paper();
        let big = HermesConfig::with_extra_storage();
        assert_eq!(big.tau_act, paper.tau_act);
        for (b, p) in big
            .perceptron
            .table_sizes
            .iter()
            .zip(&paper.perceptron.table_sizes)
        {
            assert_eq!(*b, 4 * p);
        }
    }
}

mod ppf {
    use super::*;

    fn trigger(pc: u64, paddr: u64) -> L2Access {
        L2Access {
            core: 0,
            pc,
            paddr,
            hit: false,
            cycle: 0,
        }
    }

    fn cand(paddr: u64, sig: u32, conf: u32, depth: u8) -> L2PrefetchCandidate {
        L2PrefetchCandidate {
            paddr,
            fill_llc_only: false,
            signature: sig,
            confidence: conf,
            depth,
        }
    }

    #[test]
    fn prefetch_table_entry_trains_once_then_is_consumed() {
        let mut ppf = Ppf::new(PpfConfig::paper());
        let t = trigger(0x400, 0x1000);
        let c = cand(0x5_0000, 0x7, 80, 2);
        assert!(ppf.filter(&t, &c));
        // First outcome consumes the recorded entry...
        ppf.on_useless(c.paddr);
        let drained_once = ppf.filter(&t, &cand(0x6_0000, 0x7, 80, 2));
        // ...so hammering the same line again must not train further:
        // 300 ghost outcomes would otherwise flip the profile to reject.
        for _ in 0..300 {
            ppf.on_useless(c.paddr);
        }
        assert_eq!(
            ppf.filter(&t, &cand(0x7_0000, 0x7, 80, 2)),
            drained_once,
            "outcomes without a live prefetch-table entry must be no-ops"
        );
    }

    #[test]
    fn useless_streak_flips_to_reject_and_reject_table_recovers() {
        let mut ppf = Ppf::new(PpfConfig::paper());
        let t = trigger(0x900, 0x1000);
        // Phase 1: the profile's prefetches are useless -> learn to reject.
        for i in 0..300u64 {
            let c = cand(0x10_0000 + i * 64, 0x2a, 15, 5);
            if ppf.filter(&t, &c) {
                ppf.on_useless(c.paddr);
            }
        }
        assert!(
            !ppf.filter(&t, &cand(0x80_0000, 0x2a, 15, 5)),
            "useless streak must train toward rejection"
        );
        // Phase 2: rejected lines keep missing as demands -> the reject
        // table trains back toward acceptance.
        let mut recovered = false;
        for i in 0..500u64 {
            let c = cand(0x90_0000 + i * 64, 0x2a, 15, 5);
            if ppf.filter(&t, &c) {
                recovered = true;
                break;
            }
            ppf.on_demand_miss(c.paddr);
        }
        assert!(recovered, "reject-table hits must recover acceptance");
    }

    #[test]
    fn useful_and_useless_outcomes_pull_in_opposite_directions() {
        let mut good = Ppf::new(PpfConfig::paper());
        let mut bad = Ppf::new(PpfConfig::paper());
        let t = trigger(0x700, 0x1000);
        for i in 0..200u64 {
            let c = cand(0x20_0000 + i * 64, 0x13, 60, 3);
            if good.filter(&t, &c) {
                good.on_useful(c.paddr);
            }
            if bad.filter(&t, &c) {
                bad.on_useless(c.paddr);
            }
        }
        let probe = cand(0xc0_0000, 0x13, 60, 3);
        assert!(good.filter(&t, &probe), "useful history keeps acceptance");
        assert!(!bad.filter(&t, &probe), "useless history flips to reject");
    }

    #[test]
    fn demand_miss_without_rejection_is_inert() {
        let mut ppf = Ppf::new(PpfConfig::paper());
        let t = trigger(0x800, 0x1000);
        // Never-rejected lines: on_demand_miss must find nothing to train.
        for i in 0..200u64 {
            ppf.on_demand_miss(0x40_0000 + i * 64);
        }
        assert!(ppf.filter(&t, &cand(0xd0_0000, 0x5, 70, 2)));
    }
}

mod lp {
    use super::*;

    #[test]
    fn first_touch_misses_metadata_then_hits() {
        let mut lp = Lp::new(LpConfig::test_tiny());
        // Segment 0x1000/4096 = 1 is cold: no prediction, md miss counted.
        let tag = lp.predict_load(&load(0x400, 0x1000));
        assert_eq!(tag.decision, OffChipDecision::NoIssue);
        assert_eq!(lp.stats().md_misses, 1);
        assert_eq!(lp.stats().md_hits, 0);
        // Same segment again: the metadata cache now hits.
        let _ = lp.predict_load(&load(0x400, 0x1040));
        assert_eq!(lp.stats().md_hits, 1);
        assert_eq!(lp.stats().md_misses, 1);
    }

    #[test]
    fn metadata_hit_predicts_offchip_for_nonresident_lines() {
        let mut lp = Lp::new(LpConfig::test_tiny());
        let _ = lp.predict_load(&load(0x400, 0x2000)); // warm the segment
        let tag = lp.predict_load(&load(0x400, 0x2040));
        assert_eq!(
            tag.decision,
            OffChipDecision::IssueNow,
            "metadata hit + non-resident line must route to DRAM"
        );
        assert_eq!(lp.stats().predicted_offchip, 1);
    }

    #[test]
    fn resident_lines_stay_onchip_after_training() {
        let mut lp = Lp::new(LpConfig::test_tiny());
        let c = load(0x400, 0x3000);
        let _ = lp.predict_load(&c); // warm the segment
        let tag = lp.predict_load(&c);
        assert_eq!(tag.decision, OffChipDecision::IssueNow);
        // The load completes: the line is now resident in the hierarchy.
        lp.train_load(&c, &tag, Level::Dram);
        let tag = lp.predict_load(&c);
        assert_eq!(
            tag.decision,
            OffChipDecision::NoIssue,
            "a trained (resident) line must not be routed to DRAM again"
        );
        assert_eq!(lp.stats().correct_offchip, 1);
        assert!((lp.stats().precision() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metadata_capacity_evictions_forget_segments() {
        let cfg = LpConfig::test_tiny(); // 4 sets x 2 ways = 8 segments
        let mut lp = Lp::new(LpConfig::test_tiny());
        let capacity = (cfg.md_sets * cfg.md_ways) as u64;
        // Touch enough distinct segments to evict segment 0...
        for s in 0..=capacity * 2 {
            let _ = lp.predict_load(&load(0x400, s * 4096));
        }
        let misses_before = lp.stats().md_misses;
        // ...so segment 0 misses metadata again.
        let _ = lp.predict_load(&load(0x400, 0x0));
        assert_eq!(lp.stats().md_misses, misses_before + 1);
    }

    #[test]
    fn storage_dwarfs_tlp_budget() {
        let lp = Lp::new(LpConfig::hpca22());
        let kb = lp.storage_bits() as f64 / 8.0 / 1024.0;
        // The paper's related-work point: LP's metadata cache is an order
        // of magnitude bigger than TLP's ~7 KB.
        assert!(kb > 30.0, "hpca22 metadata cache is only {kb:.1} KB");
    }
}
