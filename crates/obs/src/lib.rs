//! `tlp-obs`: a zero-dependency observability substrate for the TLP
//! reproduction — named counters, gauges, and log-bucketed histograms
//! behind a [`MetricsRegistry`], plus lightweight [`Span`] timing.
//!
//! Design constraints (in priority order):
//!
//! - **Determinism-safe.** Metrics are strictly write-only from the
//!   instrumented code's point of view: nothing in the simulator or the
//!   run engine ever reads a metric back to make a decision, so enabling
//!   observation cannot perturb simulated state. Wall-clock time
//!   ([`std::time::Instant`]) is only ever *recorded*, never branched on.
//! - **Cheap.** A counter increment is one relaxed atomic add; a
//!   histogram record is two index instructions plus four relaxed
//!   atomics. Handles are `Arc`-backed and `Clone`, so call sites hoist
//!   the name lookup out of hot loops and keep a handle.
//! - **Zero dependencies.** Everything is `std`: the crate must be
//!   linkable from `tlp_sim` behind a feature flag without growing the
//!   mandatory build graph.
//!
//! # Example
//!
//! ```
//! use tlp_obs::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! let hits = reg.counter("cache_hits_total");
//! hits.inc();
//! let lat = reg.histogram("lookup_ns");
//! lat.record(1_250);
//! {
//!     let _span = lat.span(); // records elapsed nanos on drop
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("cache_hits_total"), Some(1));
//! println!("{}", snap.render_prometheus());
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Sub-buckets per power-of-two octave. Four sub-buckets bound the
/// relative quantile error at 1/4 = 25% (12.5% above the exact range).
const SUBS: usize = 4;
/// Octaves covering the full `u64` range.
const OCTAVES: usize = 64;
/// Total histogram buckets.
const BUCKETS: usize = SUBS * OCTAVES;

/// A monotonically increasing `u64` event count.
///
/// Handles are cheap clones of one shared atomic; a detached counter
/// (one not minted by a registry) is valid and simply unnamed — the
/// disk-cache eviction counter starts life detached and is adopted by
/// the owning cache's registry.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero, not attached to any registry.
    #[must_use]
    pub fn detached() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level (queue depth, in-flight requests).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh gauge at zero, not attached to any registry.
    #[must_use]
    pub fn detached() -> Self {
        Self::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds (possibly negative) `d`.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistInner {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Maps a value to its log bucket: exact for `v < SUBS`, then `SUBS`
/// linear sub-buckets per power-of-two octave.
fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let exp = (63 - v.leading_zeros()) as usize; // >= 2 since v >= 4
    let sub = ((v >> (exp - 2)) as usize) & (SUBS - 1);
    exp * SUBS + sub
}

/// The largest value that lands in bucket `idx` (inclusive upper bound).
fn bucket_bound(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let exp = idx / SUBS;
    let sub = (idx % SUBS) as u64;
    let width = 1u64 << (exp - 2);
    let lo = (1u64 << exp) + sub * width;
    lo + (width - 1)
}

/// A log-bucketed `u64` histogram (typically nanoseconds): power-of-two
/// octaves split into four linear sub-buckets, so quantile readouts are
/// within 12.5% of the true value while recording stays lock-free.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Self(Arc::new(HistInner::new()))
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.0.count.load(Ordering::Relaxed))
            .field("sum", &self.0.sum.load(Ordering::Relaxed))
            .finish()
    }
}

impl Histogram {
    /// A fresh empty histogram, not attached to any registry.
    #[must_use]
    pub fn detached() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        let h = &*self.0;
        h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.min.fetch_min(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records the wall-clock nanoseconds elapsed since `start`
    /// (saturating at `u64::MAX` ns, i.e. after ~584 years).
    pub fn record_since(&self, start: Instant) {
        self.record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts a span whose drop records its wall-clock duration here.
    pub fn span(&self) -> Span {
        Span {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    /// Observation count so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = &*self.0;
        let count = h.count.load(Ordering::Relaxed);
        let mut buckets = Vec::new();
        for (i, b) in h.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((bucket_bound(i), n));
            }
        }
        HistogramSnapshot {
            count,
            sum: h.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                h.min.load(Ordering::Relaxed)
            },
            max: h.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A live timing scope: created by [`Histogram::span`], records the
/// elapsed wall-clock nanoseconds into its histogram when dropped.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    hist: Histogram,
    start: Instant,
}

impl Span {
    /// Starts timing against `hist` (alias for [`Histogram::span`]).
    pub fn enter(hist: &Histogram) -> Self {
        hist.span()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record_since(self.start);
    }
}

/// A point-in-time copy of a [`Histogram`]'s distribution, with quantile
/// readout. `buckets` holds `(inclusive_upper_bound, count)` pairs for
/// the non-empty buckets, in increasing bound order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// `(inclusive upper bound, count)` for each non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The value at quantile `q` (0.0 ..= 1.0): the upper bound of the
    /// bucket containing the rank-`ceil(q * count)` observation, clamped
    /// to the observed `[min, max]`. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bound.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One metric's point-in-time state inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter's current count.
    Counter(u64),
    /// A gauge's current level.
    Gauge(i64),
    /// A histogram's distribution copy.
    Histogram(HistogramSnapshot),
}

/// A named metric inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSnapshot {
    /// The registered name.
    pub name: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// A point-in-time copy of a registry (or a merge of several), sorted by
/// metric name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// All metrics, sorted by name.
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// Appends another snapshot's metrics (re-sorting by name). Callers
    /// merge disjoint registries — e.g. the run-cache registry with the
    /// process-global engine registry; duplicate names are kept side by
    /// side rather than summed.
    #[must_use]
    pub fn merged(mut self, other: Snapshot) -> Snapshot {
        self.metrics.extend(other.metrics);
        self.metrics.sort_by(|a, b| a.name.cmp(&b.name));
        self
    }

    /// Looks up a counter's value by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.metrics.iter().find_map(|m| match &m.value {
            MetricValue::Counter(v) if m.name == name => Some(*v),
            _ => None,
        })
    }

    /// Looks up a gauge's level by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.metrics.iter().find_map(|m| match &m.value {
            MetricValue::Gauge(v) if m.name == name => Some(*v),
            _ => None,
        })
    }

    /// Looks up a histogram's distribution by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.metrics.iter().find_map(|m| match &m.value {
            MetricValue::Histogram(h) if m.name == name => Some(h),
            _ => None,
        })
    }

    /// Renders the snapshot as Prometheus-style text exposition:
    /// counters and gauges as single samples, histograms as summaries
    /// with `p50`/`p90`/`p99` quantile samples plus `_min`/`_max`/
    /// `_sum`/`_count`.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for m in &self.metrics {
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {} counter\n{} {v}", m.name, m.name);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {} gauge\n{} {v}", m.name, m.name);
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {} summary", m.name);
                    for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
                        let _ =
                            writeln!(out, "{}{{quantile=\"{label}\"}} {}", m.name, h.quantile(q));
                    }
                    let _ = writeln!(out, "{}_min {}", m.name, h.min);
                    let _ = writeln!(out, "{}_max {}", m.name, h.max);
                    let _ = writeln!(out, "{}_sum {}", m.name, h.sum);
                    let _ = writeln!(out, "{}_count {}", m.name, h.count);
                }
            }
        }
        out
    }
}

/// A named collection of metrics. Lookups are get-or-create: the first
/// `counter("x")` registers `x`, later calls hand back clones of the
/// same underlying atomic. Cheap to share (`Arc` it) — the lock guards
/// only the name map, never the hot recording path.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.metrics.lock().map(|m| m.len()).unwrap_or(0);
        f.debug_struct("MetricsRegistry")
            .field("metrics", &n)
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.metrics.lock().expect("metrics registry poisoned");
        map.entry(name.to_owned()).or_insert_with(make).clone()
    }

    /// The counter registered under `name` (created on first use).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::detached())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Registers `name` as an alias of an existing counter handle —
    /// used to adopt a detached counter (e.g. the disk cache's eviction
    /// count) into a registry.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn adopt_counter(&self, name: &str, counter: &Counter) {
        match self.get_or_insert(name, || Metric::Counter(counter.clone())) {
            Metric::Counter(_) => {}
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// The gauge registered under `name` (created on first use).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::detached())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// The histogram registered under `name` (created on first use).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::detached())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let map = self.metrics.lock().expect("metrics registry poisoned");
        Snapshot {
            metrics: map
                .iter()
                .map(|(name, m)| MetricSnapshot {
                    name: name.clone(),
                    value: match m {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

/// The process-global registry. Components constructed deep inside
/// worker threads (the simulated `System`, notably) record here;
/// everything with its own lifecycle (a `ResultCache`, a `Server`)
/// owns a private registry instead.
#[must_use]
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_bucket_exactly() {
        for v in 0..SUBS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bound(bucket_index(v)), v);
        }
        // 4..=8 stay exact too (first octave's sub-buckets have width 1).
        for v in 4..=8u64 {
            let idx = bucket_index(v);
            assert!(bucket_bound(idx) >= v);
            assert!(
                bucket_bound(idx) - v < 1 + v / 4,
                "v={v} bound={}",
                bucket_bound(idx)
            );
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_bound_contains_value() {
        let mut last_idx = 0usize;
        let mut v = 0u64;
        while v < u64::MAX / 2 {
            let idx = bucket_index(v);
            assert!(idx >= last_idx, "index not monotone at v={v}");
            let bound = bucket_bound(idx);
            assert!(bound >= v, "bound {bound} < v {v}");
            // Relative error of the upper bound is at most 1/4.
            assert!(bound - v <= v / 4 + 1, "v={v} bound={bound}");
            last_idx = idx;
            v = v + v / 2 + 1; // never overflows: v < u64::MAX / 2
        }
        assert_eq!(bucket_bound(bucket_index(u64::MAX)), u64::MAX);
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let h = Histogram::detached();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // Bucket upper bounds overestimate by at most 25%.
        let p50 = s.quantile(0.5);
        assert!((500..=640).contains(&p50), "p50={p50}");
        let p90 = s.quantile(0.9);
        assert!((900..=1000).contains(&p90), "p90={p90}");
        let p99 = s.quantile(0.99);
        assert!((990..=1000).contains(&p99), "p99={p99}");
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn quantile_clamps_to_observed_range() {
        let h = Histogram::detached();
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 1000);
        assert_eq!(s.quantile(0.99), 1000);
        let empty = Histogram::detached().snapshot();
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.min, 0);
    }

    #[test]
    fn quantile_degenerate_inputs_are_pinned() {
        // Zero observations: every quantile — including out-of-range and
        // non-finite q — reads exactly 0. No NaN, no panic.
        let empty = Histogram::detached().snapshot();
        for q in [
            -1.0,
            0.0,
            0.25,
            0.5,
            0.99,
            1.0,
            2.0,
            f64::NAN,
            f64::INFINITY,
        ] {
            assert_eq!(empty.quantile(q), 0, "empty histogram, q={q}");
        }
        // One observation: every quantile reads the sole sample (the
        // rank clamp pins degenerate q to the only rank there is).
        let one = Histogram::detached();
        one.record(42);
        let s = one.snapshot();
        assert_eq!(s.count, 1);
        for q in [-1.0, 0.0, 0.5, 0.99, 1.0, 2.0, f64::NAN, f64::INFINITY] {
            assert_eq!(s.quantile(q), 42, "single sample, q={q}");
        }
        // Many observations: degenerate q still lands inside the
        // observed range, at its edges.
        let many = Histogram::detached();
        for v in [5u64, 500, 50_000] {
            many.record(v);
        }
        let s = many.snapshot();
        assert_eq!(s.quantile(-1.0), 5);
        assert_eq!(s.quantile(2.0), 50_000);
        assert_eq!(s.quantile(f64::NAN), 5);
    }

    #[test]
    fn registry_handles_share_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total");
        let b = reg.counter("x_total");
        a.add(3);
        b.inc();
        assert_eq!(reg.snapshot().counter("x_total"), Some(4));

        let g = reg.gauge("depth");
        g.add(5);
        reg.gauge("depth").dec();
        assert_eq!(reg.snapshot().gauge("depth"), Some(4));
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn adopt_counter_aliases_the_same_atomic() {
        let reg = MetricsRegistry::new();
        let detached = Counter::detached();
        detached.add(7);
        reg.adopt_counter("evicted_total", &detached);
        detached.inc();
        assert_eq!(reg.snapshot().counter("evicted_total"), Some(8));
    }

    #[test]
    fn span_records_into_histogram() {
        let h = Histogram::detached();
        {
            let _s = h.span();
            std::hint::black_box(());
        }
        {
            let _s = Span::enter(&h);
        }
        assert_eq!(h.count(), 2);
        assert!(h.snapshot().sum > 0);
    }

    #[test]
    fn render_prometheus_format() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total").add(2);
        reg.gauge("a_gauge").set(-3);
        let h = reg.histogram("lat_ns");
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let text = reg.snapshot().render_prometheus();
        // Sorted by name: a_gauge, b_total, lat_ns.
        let a = text.find("# TYPE a_gauge gauge").expect("gauge header");
        let b = text.find("# TYPE b_total counter").expect("counter header");
        let l = text.find("# TYPE lat_ns summary").expect("summary header");
        assert!(a < b && b < l);
        assert!(text.contains("a_gauge -3"));
        assert!(text.contains("b_total 2"));
        assert!(text.contains("lat_ns{quantile=\"0.5\"}"));
        assert!(text.contains("lat_ns{quantile=\"0.99\"}"));
        assert!(text.contains("lat_ns_count 3"));
        assert!(text.contains("lat_ns_sum 60"));
        assert!(text.contains("lat_ns_min 10"));
        assert!(text.contains("lat_ns_max 30"));
    }

    #[test]
    fn snapshots_merge_and_resort() {
        let r1 = MetricsRegistry::new();
        r1.counter("zz_total").inc();
        let r2 = MetricsRegistry::new();
        r2.counter("aa_total").add(2);
        let merged = r1.snapshot().merged(r2.snapshot());
        assert_eq!(merged.metrics.len(), 2);
        assert_eq!(merged.metrics[0].name, "aa_total");
        assert_eq!(merged.counter("zz_total"), Some(1));
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let c = global().counter("obs_selftest_total");
        c.inc();
        assert!(global().snapshot().counter("obs_selftest_total").unwrap() >= 1);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("n_total");
        let h = reg.histogram("v_ns");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let (c, h) = (c.clone(), h.clone());
                std::thread::spawn(move || {
                    for v in 0..1000u64 {
                        c.inc();
                        h.record(v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().sum, 4 * (999 * 1000 / 2));
    }
}
