//! Property tests for the event queue's ordering guarantees: monotone
//! time, FIFO among same-cycle events, and pop order that is independent
//! of which structure (calendar wheel vs. heap) each event landed in.

use proptest::prelude::*;
use tlp_events::{ComponentId, Cycle, EventQueue};

/// Replays `schedules` into a fresh queue of `slots` wheel slots and
/// drains it, returning the popped `(tick, id)` sequence.
fn drain(slots: usize, schedules: &[(Cycle, u32)]) -> Vec<(Cycle, ComponentId)> {
    let mut q = EventQueue::new(slots);
    for &(t, id) in schedules {
        q.schedule(t, ComponentId(id));
    }
    let mut out = Vec::new();
    while let Some(e) = q.pop() {
        out.push(e);
    }
    out
}

proptest! {
    /// Popped ticks never decrease, every scheduled event pops exactly
    /// once, and same-tick events pop in ascending component id.
    #[test]
    fn pops_are_monotone_and_complete(
        schedules in proptest::collection::vec((0u64..500, 0u32..8), 0..200),
        slots in 1usize..100,
    ) {
        let out = drain(slots, &schedules);
        prop_assert_eq!(out.len(), schedules.len());
        for w in out.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards: {w:?}");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 <= w[1].1, "same-tick id order violated: {w:?}");
            }
        }
        // Same multiset of ticks in and out.
        let mut ticks_in: Vec<Cycle> = schedules.iter().map(|&(t, _)| t).collect();
        ticks_in.sort_unstable();
        let mut ticks_out: Vec<Cycle> = out.iter().map(|&(t, _)| t).collect();
        ticks_out.sort_unstable();
        prop_assert_eq!(ticks_in, ticks_out);
    }

    /// Pop order is a pure function of the schedule sequence: a 1-slot
    /// wheel (everything takes the heap path) and a wheel wide enough to
    /// hold every event (nothing touches the heap) agree exactly.
    #[test]
    fn wheel_and_heap_paths_pop_identically(
        schedules in proptest::collection::vec((0u64..300, 0u32..8), 0..200),
        slots in 2usize..64,
    ) {
        let heap_heavy = drain(1, &schedules);
        let wheel_only = drain(1024, &schedules);
        let mixed = drain(slots, &schedules);
        prop_assert_eq!(&heap_heavy, &wheel_only);
        prop_assert_eq!(&heap_heavy, &mixed);
    }

    /// FIFO among ties: events scheduled for the same (tick, id) pop in
    /// insertion order. Tagged by scheduling each duplicate under a
    /// distinct id band and checking band order is preserved per tick.
    #[test]
    fn same_cycle_events_are_fifo(
        ticks in proptest::collection::vec(0u64..40, 1..120),
        slots in 1usize..64,
    ) {
        let mut q = EventQueue::new(slots);
        // All events share one component id: pop order must equal
        // insertion order among equal ticks.
        for &t in &ticks {
            q.schedule(t, ComponentId(0));
        }
        let mut expect: Vec<(Cycle, usize)> = ticks.iter().copied().zip(0..).collect();
        expect.sort_by_key(|&(t, i)| (t, i)); // stable tie-break = FIFO
        let mut popped = Vec::new();
        while let Some((t, _)) = q.pop() {
            popped.push(t);
        }
        let expect_ticks: Vec<Cycle> = expect.iter().map(|&(t, _)| t).collect();
        prop_assert_eq!(popped, expect_ticks);
    }

    /// Interleaved schedule/pop traffic keeps time monotone even when
    /// schedules land in the past (they clamp to the floor).
    #[test]
    fn interleaved_traffic_stays_monotone(
        ops in proptest::collection::vec((any::<bool>(), 0u64..200, 0u32..4), 0..300),
        slots in 1usize..32,
    ) {
        let mut q = EventQueue::new(slots);
        let mut last = 0u64;
        for (is_pop, t, id) in ops {
            if is_pop {
                if let Some((tick, _)) = q.pop() {
                    prop_assert!(tick >= last, "pop at {tick} after {last}");
                    last = tick;
                }
            } else {
                q.schedule(t, ComponentId(id));
            }
        }
        while let Some((tick, _)) = q.pop() {
            prop_assert!(tick >= last);
            last = tick;
        }
    }
}
