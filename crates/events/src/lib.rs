//! `tlp-events`: a deterministic discrete-event scheduling kernel.
//!
//! Everything that evolves over time in a simulated system is modelled as
//! a [`Component`]: a CPU core front-end, a cache level, a DRAM
//! controller, a device. Each component knows when it next wants to run
//! ([`Component::next_tick`]) and how to advance its internal state
//! ([`Component::tick`]). A global time base in *base cycles* ties the
//! components together, and an [`EventQueue`] — a binary min-heap keyed by
//! `(tick, ComponentId)` with stable FIFO tie-breaking, fronted by a
//! calendar-wheel fast path for near-future events — decides who runs
//! next.
//!
//! The kernel is the substrate of `tlp_sim`'s event engine mode: instead
//! of advancing every component one cycle at a time, the engine pops the
//! earliest wake-up from the queue and jumps the clock straight there,
//! skipping the dead cycles where the whole system is stalled behind a
//! DRAM access. Determinism is load-bearing: given the same schedule
//! calls, the pop order is bit-reproducible — same-cycle events pop in
//! `(ComponentId, insertion order)` — so a simulation driven by the queue
//! produces identical results on every run.
//!
//! # Example
//!
//! ```
//! use tlp_events::{Component, Cycle, EventLoop};
//!
//! /// A timer that fires every `period` cycles and counts its firings
//! /// into the shared context.
//! struct Timer {
//!     period: Cycle,
//! }
//!
//! impl Component for Timer {
//!     type Ctx = u64;
//!     fn next_tick(&self, now: Cycle) -> Option<Cycle> {
//!         Some(now + self.period)
//!     }
//!     fn tick(&mut self, now: Cycle, fired: &mut u64) -> Option<Cycle> {
//!         *fired += 1;
//!         Some(now + self.period)
//!     }
//! }
//!
//! let mut lp = EventLoop::new();
//! lp.add(Box::new(Timer { period: 10 }));
//! lp.add(Box::new(Timer { period: 25 }));
//! let mut fired = 0u64;
//! lp.run_until(&mut fired, 100);
//! assert_eq!(fired, 10 + 4); // cycles 10..=100 step 10, 25..=100 step 25
//! assert_eq!(lp.now(), 100);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The global time base: a count of base clock cycles since reset.
pub type Cycle = u64;

/// Identity of a scheduled component within one [`EventQueue`] /
/// [`EventLoop`]. Part of the ordering key: same-cycle events pop in
/// ascending `ComponentId`, which is how a system encodes its canonical
/// intra-cycle component order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub u32);

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A piece of simulated hardware that evolves over time.
///
/// The contract (the "Execution Engine Architecture" model):
///
/// * [`Component::next_tick`] answers *when this component next wants to
///   be scheduled*, in base cycles, given that no external input arrives
///   in the meantime. It must be **conservative**: if the component would
///   change state at cycle `t` when ticked every cycle, `next_tick` must
///   return a value `<= t`. Waking too early is a wasted (but harmless)
///   no-op tick; waking too late changes simulated behavior. `None` means
///   the component sleeps until something external (a message from
///   another component) re-schedules it.
/// * [`Component::tick`] advances the component's internal state to
///   `now`, interacting with the rest of the system through the shared
///   context `Ctx` (output buffers, buses, the routing fabric — whatever
///   the embedding system provides), and returns the updated wake-up
///   time, with the same `None`-means-sleep convention.
///
/// Determinism requirement: both methods must be pure functions of the
/// component state, `now`, and `Ctx` — no wall clock, no ambient
/// randomness — so that a queue-driven run is bit-reproducible.
pub trait Component {
    /// What a tick may read and write besides the component itself.
    type Ctx;

    /// Earliest future cycle (`> now`) at which this component may change
    /// state without external input; `None` to sleep until re-scheduled.
    fn next_tick(&self, now: Cycle) -> Option<Cycle>;

    /// Advances internal state to `now`; returns the new wake-up time.
    fn tick(&mut self, now: Cycle, ctx: &mut Self::Ctx) -> Option<Cycle>;
}

/// One scheduled wake-up. Ordering is the queue's pop order: earliest
/// tick first, then lowest component id, then insertion order (FIFO).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    tick: Cycle,
    id: ComponentId,
    seq: u64,
}

/// Default calendar-wheel width (slots): events within this many cycles
/// of the queue's time floor take the O(1)-insert wheel path; farther
/// events go to the heap. 64 covers cache latencies and most DRAM bank
/// timings at CPU-cycle granularity.
pub const DEFAULT_WHEEL_SLOTS: usize = 64;

/// A deterministic future-event queue: a calendar wheel for events within
/// `wheel_slots` cycles of the current time floor, backed by a binary
/// min-heap for far-future events.
///
/// Pops are globally ordered by `(tick, ComponentId, insertion seq)` —
/// the heap and wheel paths interleave without ever reordering — so the
/// same sequence of [`EventQueue::schedule`] calls always produces the
/// same sequence of [`EventQueue::pop`]s, regardless of which structure
/// each event landed in.
///
/// Time can only move forward: the time floor (`base`) advances to each
/// popped tick, and scheduling in the past clamps to the floor.
#[derive(Debug)]
pub struct EventQueue {
    /// Bucket `t % slots` holds the events for tick `t`, for
    /// `t ∈ [base, base + slots)`. All entries in one bucket share one
    /// tick (the window is exactly one wheel revolution).
    wheel: Vec<Vec<Entry>>,
    wheel_len: usize,
    heap: BinaryHeap<Reverse<Entry>>,
    /// Time floor: every queued entry has `tick >= base`.
    base: Cycle,
    /// Insertion counter for FIFO tie-breaking.
    seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new(DEFAULT_WHEEL_SLOTS)
    }
}

impl EventQueue {
    /// Creates an empty queue with `wheel_slots` calendar slots.
    ///
    /// # Panics
    ///
    /// Panics if `wheel_slots` is zero.
    #[must_use]
    pub fn new(wheel_slots: usize) -> Self {
        assert!(wheel_slots > 0, "calendar wheel needs at least one slot");
        Self {
            wheel: (0..wheel_slots).map(|_| Vec::new()).collect(),
            wheel_len: 0,
            heap: BinaryHeap::new(),
            base: 0,
            seq: 0,
        }
    }

    /// Number of queued events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.wheel_len + self.heap.len()
    }

    /// True when nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The queue's time floor (advances to each popped tick).
    #[must_use]
    pub fn base(&self) -> Cycle {
        self.base
    }

    /// Drops every queued event and moves the time floor to `now`.
    /// Insertion order keeps counting across rebases, so FIFO ties stay
    /// stable even for schedulers that rebuild their queue each step.
    pub fn rebase(&mut self, now: Cycle) {
        for bucket in &mut self.wheel {
            bucket.clear();
        }
        self.heap.clear();
        self.wheel_len = 0;
        self.base = now;
    }

    /// Schedules component `id` to wake at `tick`. A tick in the past is
    /// clamped to the time floor ("run as soon as possible").
    pub fn schedule(&mut self, tick: Cycle, id: ComponentId) {
        let tick = tick.max(self.base);
        let e = Entry {
            tick,
            id,
            seq: self.seq,
        };
        self.seq += 1;
        let slots = self.wheel.len() as Cycle;
        if tick - self.base < slots {
            self.wheel[(tick % slots) as usize].push(e);
            self.wheel_len += 1;
        } else {
            self.heap.push(Reverse(e));
        }
    }

    /// The earliest queued entry across both structures, with its wheel
    /// location when it lives in the wheel.
    fn find_min(&self) -> Option<(Entry, Option<(usize, usize)>)> {
        let mut best: Option<(Entry, Option<(usize, usize)>)> = None;
        if self.wheel_len > 0 {
            // Calendar-wheel cursor: walk ticks forward from the time
            // floor and stop at the first occupied bucket — each bucket
            // holds exactly one tick value within the window, so that
            // bucket contains the wheel's minimum. Events cluster near
            // the floor, so this usually terminates in a step or two.
            let slots = self.wheel.len() as Cycle;
            for t in self.base..self.base + slots {
                let s = (t % slots) as usize;
                let bucket = &self.wheel[s];
                if bucket.is_empty() {
                    continue;
                }
                let (i, &e) = bucket
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.cmp(b.1))
                    .expect("bucket checked non-empty");
                best = Some((e, Some((s, i))));
                break;
            }
        }
        // The heap can hold entries that have since fallen inside the
        // wheel window (the floor advanced after they were scheduled), so
        // the global minimum must always consider both structures.
        if let Some(&Reverse(e)) = self.heap.peek() {
            if best.is_none_or(|(b, _)| e < b) {
                best = Some((e, None));
            }
        }
        best
    }

    /// The next wake-up without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<(Cycle, ComponentId)> {
        self.find_min().map(|(e, _)| (e.tick, e.id))
    }

    /// Removes and returns the next wake-up `(tick, component)`. Advances
    /// the time floor to the popped tick.
    pub fn pop(&mut self) -> Option<(Cycle, ComponentId)> {
        let (e, loc) = self.find_min()?;
        match loc {
            Some((slot, idx)) => {
                self.wheel[slot].swap_remove(idx);
                self.wheel_len -= 1;
            }
            None => {
                self.heap.pop();
            }
        }
        self.base = e.tick;
        Some((e.tick, e.id))
    }
}

/// A self-contained event loop: owns the components and the queue, pops
/// the earliest wake-up, ticks that component against the shared context,
/// and re-schedules it at the returned time.
///
/// `tlp_sim`'s engine embeds the [`EventQueue`] directly (its components
/// interact through the engine's own routing), but systems whose
/// components communicate only through a shared context can run entirely
/// on this loop.
pub struct EventLoop<Ctx> {
    queue: EventQueue,
    components: Vec<Box<dyn Component<Ctx = Ctx>>>,
    now: Cycle,
}

impl<Ctx> Default for EventLoop<Ctx> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Ctx> std::fmt::Debug for EventLoop<Ctx> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLoop")
            .field("components", &self.components.len())
            .field("now", &self.now)
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl<Ctx> EventLoop<Ctx> {
    /// An empty loop at cycle 0 with the default wheel width.
    #[must_use]
    pub fn new() -> Self {
        Self {
            queue: EventQueue::default(),
            components: Vec::new(),
            now: 0,
        }
    }

    /// Registers a component; its id is its registration order. The
    /// component's initial wake-up comes from [`Component::next_tick`].
    pub fn add(&mut self, c: Box<dyn Component<Ctx = Ctx>>) -> ComponentId {
        let id = ComponentId(u32::try_from(self.components.len()).expect("too many components"));
        if let Some(t) = c.next_tick(self.now) {
            self.queue.schedule(t, id);
        }
        self.components.push(c);
        id
    }

    /// Current global time.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Wakes an externally-notified component at `tick` (e.g. a message
    /// arrival makes a sleeping component runnable).
    pub fn wake(&mut self, id: ComponentId, tick: Cycle) {
        self.queue.schedule(tick, id);
    }

    /// Pops and runs one wake-up, if any. Returns the cycle it ran at.
    pub fn step(&mut self, ctx: &mut Ctx) -> Option<Cycle> {
        let (t, id) = self.queue.pop()?;
        self.now = t;
        let c = &mut self.components[id.0 as usize];
        if let Some(next) = c.tick(t, ctx) {
            self.queue.schedule(next.max(t + 1), id);
        }
        Some(t)
    }

    /// Runs wake-ups up to and including `limit`, then parks the clock at
    /// `limit`. Returns the number of component ticks executed.
    pub fn run_until(&mut self, ctx: &mut Ctx, limit: Cycle) -> u64 {
        let mut ticks = 0;
        while self.queue.peek().is_some_and(|(t, _)| t <= limit) {
            self.step(ctx);
            ticks += 1;
        }
        self.now = self.now.max(limit);
        ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_across_wheel_and_heap() {
        let mut q = EventQueue::new(8);
        // 200 and 500 go to the heap (window is [0, 8)), 3 to the wheel.
        q.schedule(500, ComponentId(0));
        q.schedule(3, ComponentId(1));
        q.schedule(200, ComponentId(2));
        assert_eq!(q.pop(), Some((3, ComponentId(1))));
        // After the floor advances, far events still pop in order.
        q.schedule(4, ComponentId(3));
        assert_eq!(q.pop(), Some((4, ComponentId(3))));
        assert_eq!(q.pop(), Some((200, ComponentId(2))));
        assert_eq!(q.pop(), Some((500, ComponentId(0))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_tick_orders_by_component_then_fifo() {
        let mut q = EventQueue::new(16);
        q.schedule(10, ComponentId(5));
        q.schedule(10, ComponentId(2));
        q.schedule(10, ComponentId(5));
        q.schedule(10, ComponentId(2));
        assert_eq!(q.pop(), Some((10, ComponentId(2))));
        assert_eq!(q.pop(), Some((10, ComponentId(2))));
        assert_eq!(q.pop(), Some((10, ComponentId(5))));
        assert_eq!(q.pop(), Some((10, ComponentId(5))));
    }

    #[test]
    fn past_schedules_clamp_to_the_floor() {
        let mut q = EventQueue::new(8);
        q.schedule(50, ComponentId(0));
        assert_eq!(q.pop(), Some((50, ComponentId(0))));
        q.schedule(7, ComponentId(1)); // in the past: clamps to 50
        assert_eq!(q.pop(), Some((50, ComponentId(1))));
        assert_eq!(q.base(), 50);
    }

    #[test]
    fn rebase_clears_and_moves_the_floor() {
        let mut q = EventQueue::new(8);
        q.schedule(5, ComponentId(0));
        q.schedule(100, ComponentId(1));
        q.rebase(40);
        assert!(q.is_empty());
        q.schedule(12, ComponentId(2)); // clamps to the new floor
        assert_eq!(q.pop(), Some((40, ComponentId(2))));
    }

    #[test]
    fn heap_entries_that_fall_into_the_window_still_pop_first() {
        let mut q = EventQueue::new(4);
        q.schedule(100, ComponentId(0)); // heap (window [0, 4))
        q.schedule(1, ComponentId(1)); // wheel
        assert_eq!(q.pop(), Some((1, ComponentId(1))));
        // Window is now [1, 5); 100 is still in the heap. A wheel entry
        // at 103 must NOT pop before the heap's 100.
        q.schedule(103, ComponentId(2));
        assert_eq!(q.pop(), Some((100, ComponentId(0))));
        assert_eq!(q.pop(), Some((103, ComponentId(2))));
    }

    struct OneShot {
        at: Cycle,
    }

    impl Component for OneShot {
        type Ctx = Vec<Cycle>;
        fn next_tick(&self, _now: Cycle) -> Option<Cycle> {
            Some(self.at)
        }
        fn tick(&mut self, now: Cycle, log: &mut Vec<Cycle>) -> Option<Cycle> {
            log.push(now);
            None
        }
    }

    #[test]
    fn event_loop_skips_idle_time() {
        let mut lp = EventLoop::new();
        lp.add(Box::new(OneShot { at: 1_000_000 }));
        lp.add(Box::new(OneShot { at: 3 }));
        let mut log = Vec::new();
        let ticks = lp.run_until(&mut log, 2_000_000);
        assert_eq!(ticks, 2, "exactly two wake-ups, no idle ticks");
        assert_eq!(log, vec![3, 1_000_000]);
        assert_eq!(lp.now(), 2_000_000);
    }

    #[test]
    fn sleeping_components_wake_on_external_notify() {
        struct Sleeper;
        impl Component for Sleeper {
            type Ctx = Vec<Cycle>;
            fn next_tick(&self, _now: Cycle) -> Option<Cycle> {
                None
            }
            fn tick(&mut self, now: Cycle, log: &mut Vec<Cycle>) -> Option<Cycle> {
                log.push(now);
                None
            }
        }
        let mut lp = EventLoop::new();
        let id = lp.add(Box::new(Sleeper));
        let mut log = Vec::new();
        assert_eq!(lp.run_until(&mut log, 100), 0, "asleep: nothing runs");
        lp.wake(id, 250);
        lp.run_until(&mut log, 1_000);
        assert_eq!(log, vec![250]);
    }
}
