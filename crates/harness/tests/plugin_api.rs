//! Integration tests for the registry-driven composition API: RunKey
//! stability against the pre-refactor golden values, registry hygiene
//! (duplicates, uniqueness), and a custom component running end-to-end
//! through [`Session`].

use std::sync::Arc;

use proptest::prelude::*;

use tlp_core::variants::TlpVariant;
use tlp_harness::scheme::all_builtin_schemes;
use tlp_harness::{builtin_registry, Harness, L1Pf, RunConfig, Scheme, Session, TlpParams};
use tlp_plugin::{ComponentRef, PluginError, SchemeSpec, Seam};
use tlp_sim::hooks::{DemandAccess, L1Prefetcher, PrefetchCandidate};
use tlp_sim::types::LINE_SIZE;

/// Every built-in `Scheme`'s cache key, byte-for-byte as produced by the
/// pre-refactor harness (captured before the registry rework). These
/// strings address golden fixtures and on-disk caches; a mismatch means
/// historical results silently detach from their cells.
#[test]
fn builtin_scheme_keys_match_the_pre_refactor_golden_list() {
    let golden: [(Scheme, &str); 16] = [
        (Scheme::Baseline, "Baseline"),
        (Scheme::Ppf, "PPF"),
        (Scheme::Hermes, "Hermes"),
        (Scheme::HermesPpf, "Hermes+PPF"),
        (Scheme::Tlp, "TLP"),
        (Scheme::HermesExtra, "Hermes+7KB"),
        (Scheme::Lp, "LP"),
        (Scheme::HermesTlp, "Hermes+TLP"),
        (Scheme::AthenaRl, "AthenaRl"),
        (Scheme::Variant(TlpVariant::FlpOnly), "variant:FLP"),
        (Scheme::Variant(TlpVariant::SlpOnly), "variant:SLP"),
        (Scheme::Variant(TlpVariant::Tsp), "variant:TSP"),
        (Scheme::Variant(TlpVariant::DelayedTsp), "variant:Delayed TSP"),
        (
            Scheme::Variant(TlpVariant::SelectiveTsp),
            "variant:Selective TSP",
        ),
        (Scheme::Variant(TlpVariant::Full), "variant:TLP"),
        (
            Scheme::TlpCustom(TlpParams::paper()),
            "tlp:TlpParams { tau_high: 14, tau_low: 2, tau_pref: 6, resize: (1, 1), drop_feature: None }",
        ),
    ];
    for (scheme, key) in golden {
        assert_eq!(scheme.key(), key, "{scheme:?} key drifted");
        assert_eq!(
            scheme.to_spec().cache_key(),
            key,
            "{scheme:?} spec does not pin its legacy key"
        );
    }
    // Parameterized custom point, as probed pre-refactor.
    let p = TlpParams {
        tau_high: 20,
        tau_low: 4,
        tau_pref: 10,
        resize: (1, 2),
        drop_feature: Some(3),
    };
    assert_eq!(
        Scheme::TlpCustom(p).key(),
        "tlp:TlpParams { tau_high: 20, tau_low: 4, tau_pref: 10, resize: (1, 2), drop_feature: Some(3) }"
    );
}

/// Full-stack RunKey stability: exact 128-bit cell addresses captured
/// from the pre-refactor run engine. This pins everything between the
/// enum and the content hash (env fragment, scheme key, prefetcher
/// fragment, bandwidth rendering, FNV streams, `CODE_VERSION`).
#[test]
fn cell_runkeys_match_the_pre_refactor_golden_hexes() {
    let h = Harness::new(RunConfig::test());
    let w = h.workloads()[0].clone();
    assert_eq!(w.name(), "spec.mcf_06", "catalog head changed");
    let singles: [(Scheme, &str); 4] = [
        (Scheme::Baseline, "3e3b823bfd01a2138306a24f0c2de50e"),
        (Scheme::Tlp, "022886eb4a81e5ac26caf0937fef240f"),
        (
            Scheme::TlpCustom(TlpParams::paper()),
            "4efd9d0dacbaf09888ac50fda3b6252b",
        ),
        (Scheme::AthenaRl, "a7c5491a0e14a599755ba16364f97b94"),
    ];
    for (scheme, hex) in singles {
        assert_eq!(
            h.cell_single(&w, scheme, L1Pf::Ipcp, None).key().hex(),
            hex,
            "{scheme:?} cell address drifted"
        );
    }
    let mix = h.cell_mix(
        &[w.clone(), w.clone(), w.clone(), w.clone()],
        Scheme::Variant(TlpVariant::Tsp),
        L1Pf::BertiExtra,
        Some(1.6),
    );
    assert_eq!(mix.key().hex(), "e20b8af37c58976857c09518843041c7");
}

/// No built-in key may wander into the namespaces reserved for derived
/// and custom keys — that separation is what makes collisions between
/// user compositions and built-ins structurally impossible.
#[test]
fn builtin_keys_stay_out_of_reserved_namespaces() {
    for s in all_builtin_schemes() {
        let key = s.key();
        assert!(!key.starts_with("spec:"), "{key}");
        assert!(!key.starts_with("custom:"), "{key}");
    }
    for p in L1Pf::ALL {
        assert!(!p.name().starts_with("custom:"));
    }
}

/// Name uniqueness across every built-in registration: components unique
/// per seam, schemes unique overall.
#[test]
fn builtin_names_are_unique() {
    let reg = builtin_registry();
    for seam in Seam::ALL {
        let names: Vec<String> = reg
            .components_of(seam)
            .into_iter()
            .map(|c| c.name)
            .collect();
        let set: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), names.len(), "{seam} names collide: {names:?}");
        assert!(!names.is_empty(), "{seam} has no registrations");
    }
    let schemes: Vec<String> = reg.schemes().into_iter().map(|s| s.name).collect();
    let set: std::collections::HashSet<&String> = schemes.iter().collect();
    assert_eq!(set.len(), schemes.len(), "scheme names collide");
}

/// Re-registering any built-in name (component or scheme) is rejected on
/// a session's private registry.
#[test]
fn duplicate_registration_is_rejected_for_builtins() {
    let mut session = Session::new(RunConfig::test());
    let reg = session.registry_mut();
    let err = reg
        .register_l1_prefetcher("ipcp", "elsewhere", Arc::new(|_, _| unreachable!()))
        .unwrap_err();
    assert!(matches!(err, PluginError::DuplicateComponent { .. }));
    let err = reg
        .register_scheme(SchemeSpec::new("TLP"), "elsewhere")
        .unwrap_err();
    assert!(matches!(err, PluginError::DuplicateScheme { .. }));
    // The custom namespace is disjoint: "custom:ipcp" is fine, once.
    let name = reg
        .register_custom_l1_prefetcher("ipcp", Arc::new(|_, _| unreachable!()))
        .expect("custom namespace is free");
    assert_eq!(name, "custom:ipcp");
    assert!(reg
        .register_custom_l1_prefetcher("ipcp", Arc::new(|_, _| unreachable!()))
        .is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Distinct TlpParams always produce distinct scheme keys (and equal
    /// params equal keys): the custom-scheme cache space cannot alias.
    #[test]
    fn tlp_custom_keys_are_injective(
        th1 in -32i32..64, tl1 in -32i32..64, tp1 in -32i32..64,
        rn1 in 1u8..4, rd1 in 1u8..4, df1 in 0u8..6,
        th2 in -32i32..64, tl2 in -32i32..64, tp2 in -32i32..64,
        rn2 in 1u8..4, rd2 in 1u8..4, df2 in 0u8..6,
    ) {
        // 5 encodes None (the shim has no option strategy).
        let df = |v: u8| if v == 5 { None } else { Some(v) };
        let a = TlpParams { tau_high: th1, tau_low: tl1, tau_pref: tp1, resize: (rn1, rd1), drop_feature: df(df1) };
        let b = TlpParams { tau_high: th2, tau_low: tl2, tau_pref: tp2, resize: (rn2, rd2), drop_feature: df(df2) };
        let (ka, kb) = (Scheme::TlpCustom(a).key(), Scheme::TlpCustom(b).key());
        prop_assert_eq!(a == b, ka == kb, "params {:?} vs {:?}: keys '{}' vs '{}'", a, b, ka, kb);
        // And the knobs survive the plugin-parameter round trip.
        prop_assert_eq!(TlpParams::from_params("flp", &a.to_params()).unwrap(), a);
    }
}

/// A toy next-N-line prefetcher: the custom component of the end-to-end
/// test below. Lives entirely outside the harness.
#[derive(Debug)]
struct NextN {
    n: u64,
}

impl L1Prefetcher for NextN {
    fn on_access(&mut self, access: &DemandAccess, out: &mut Vec<PrefetchCandidate>) {
        if access.hit {
            return;
        }
        let line = access.vaddr & !(LINE_SIZE - 1);
        for i in 1..=self.n {
            out.push(PrefetchCandidate {
                vaddr: line + i * LINE_SIZE,
                fill_l1: true,
            });
        }
    }

    fn name(&self) -> &'static str {
        "next-n"
    }
}

/// End-to-end: register a custom prefetcher, compose a spec, run it
/// through `Session` on the shared run engine, and observe it actually
/// prefetching — without touching `crates/harness/src/scheme.rs`.
#[test]
fn custom_next_n_prefetcher_runs_through_session() {
    let mut rc = RunConfig::test();
    rc.warmup = 1_000;
    rc.instructions = 6_000;
    let mut session = Session::new(rc);
    let name = session
        .registry_mut()
        .register_custom_l1_prefetcher(
            "next-n",
            Arc::new(|params, _ctx| {
                params.allow_keys("next-n", &["n"])?;
                let n = params.get_parsed::<u64>("next-n", "n")?.unwrap_or(2);
                Ok(Box::new(NextN { n }))
            }),
        )
        .expect("register");
    assert_eq!(name, "custom:next-n");

    // Compose a scheme around it and register it for name-based lookup
    // (the same path `tlp_repro --scheme` resolves through).
    let spec = SchemeSpec::new("sandwich-sweep")
        .l1_prefetcher(ComponentRef::new(&name).param("n", 3))
        .l2_prefetcher(ComponentRef::new("spp").param("profile", "standard"))
        .l1_filter("slp");
    session
        .registry_mut()
        .register_custom_scheme(spec.clone())
        .expect("scheme registers");
    let resolved = session
        .resolve_scheme_name("sandwich-sweep")
        .expect("resolves by name");
    assert!(resolved.cache_key.contains("custom:next-n{n=3}"));

    let report = session
        .run_single("spec.mcf_06", &spec, "none")
        .expect("runs");
    let issued: u64 = report.cores.iter().map(|c| c.l1_prefetch.issued).sum();
    assert!(issued > 0, "the custom prefetcher must issue prefetches");

    // The run went through the planned engine path, not inline.
    let stats = session.engine_stats();
    assert_eq!(stats.inline_simulated, 0);
    assert_eq!(stats.simulated, 1);

    // Same spec again: pure cache hit (content addressing covers custom
    // components).
    let again = session
        .run_single("spec.mcf_06", &spec, "none")
        .expect("warm run");
    assert_eq!(report, again);
    assert_eq!(session.engine_stats().simulated, 1);
}

/// Malformed factory parameters surface as `Err` at resolution time —
/// not as a worker-thread panic at simulation time.
#[test]
fn session_rejects_bad_params_before_simulating() {
    let session = Session::new(RunConfig::test());
    let bad_value = SchemeSpec::new("x").offchip(ComponentRef::new("flp").param("delay", "warp"));
    let err = session.resolve_spec(&bad_value).unwrap_err();
    assert!(err.to_string().contains("delay"), "{err}");
    let typo_key = SchemeSpec::new("y").l1_prefetcher(ComponentRef::new("ipcp").param("scal", 4));
    let err = session
        .run_single("spec.mcf_06", &typo_key, "none")
        .unwrap_err();
    assert!(err.to_string().contains("unknown parameter"), "{err}");
    assert_eq!(session.engine_stats().simulated, 0, "nothing may simulate");
}

/// Pinned keys cannot masquerade as derived keys or registered schemes.
#[test]
fn session_rejects_aliasing_pinned_keys() {
    let session = Session::new(RunConfig::test());
    let forged = SchemeSpec::new("z")
        .offchip("hermes")
        .pinned_key("spec:oc=flp;l1pf=-;l1f=slp;l2pf=spp{profile=standard};l2f=-");
    assert!(matches!(
        session.resolve_spec(&forged),
        Err(tlp_harness::SessionError::Plugin(
            PluginError::PinnedKeyRejected { .. }
        ))
    ));
    let imposter = SchemeSpec::new("mine").offchip("hermes").pinned_key("TLP");
    assert!(matches!(
        session.resolve_spec(&imposter),
        Err(tlp_harness::SessionError::Plugin(
            PluginError::PinnedKeyRejected { .. }
        ))
    ));
}

/// Unknown names surface with did-you-mean suggestions at session level.
#[test]
fn session_lookups_suggest() {
    let session = Session::new(RunConfig::test());
    let err = session.resolve_scheme_name("Basline").unwrap_err();
    assert!(err.to_string().contains("did you mean"), "{err}");
    let err = session.resolve_l1pf_name("bertii").unwrap_err();
    assert!(err.to_string().contains("berti"), "{err}");
    let err = session
        .run_single("spec.mcf_07", &SchemeSpec::new("x"), "ipcp")
        .unwrap_err();
    assert!(err.to_string().contains("unknown workload"), "{err}");
}
