//! Disk-tier stress: writer threads in this process *and* writer child
//! processes all hammer one cache directory — the shared-store shape the
//! `tlp-serve` daemon relies on. The invariant under test is the
//! atomic-publish contract: a reader may see an older version of an
//! entry or a miss, but never a torn (undecodable) one.
//!
//! The multi-process half re-invokes this test binary (libtest `--exact`
//! filter) with `TLP_DISK_STRESS_CHILD` set; the child branch runs the
//! same writer loop as the in-process threads and exits.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use tlp_harness::cache::{DiskCache, DiskLoad};
use tlp_harness::RunKey;
use tlp_sim::SimReport;

const CHILD_DIR_ENV: &str = "TLP_DISK_STRESS_CHILD";
const CHILD_ID_ENV: &str = "TLP_DISK_STRESS_ID";
const ITERS: u64 = 150;
const PARENT_THREADS: u64 = 3;
const CHILD_PROCESSES: u64 = 2;

fn shared_key() -> RunKey {
    RunKey::from_desc("disk-stress|shared")
}

fn writer_key(id: u64) -> RunKey {
    RunKey::from_desc(&format!("disk-stress|writer{id}"))
}

/// A report whose content identifies the writer and iteration, so any
/// successfully decoded version is self-consistent by construction.
fn report(id: u64, iter: u64) -> SimReport {
    SimReport {
        total_cycles: id * 1_000_000 + iter,
        ..SimReport::default()
    }
}

/// One writer's workload: interleave stores to the contended shared key
/// and to a private key with reads of the shared key, asserting no read
/// ever classifies as torn.
fn hammer(dir: &PathBuf, id: u64) {
    let disk = DiskCache::open(dir).expect("open cache dir");
    for i in 0..ITERS {
        disk.store(shared_key(), &report(id, i));
        disk.store(writer_key(id), &report(id, i));
        match disk.load_classified(shared_key()) {
            DiskLoad::Hit(r) => {
                // Whatever version this is, it must be one some writer
                // actually published, never a splice of two.
                assert!(
                    r.total_cycles % 1_000_000 < ITERS,
                    "shared entry holds a published iteration (got {})",
                    r.total_cycles
                );
            }
            DiskLoad::Miss => {} // raced a concurrent rename; legal
            DiskLoad::Corrupt => panic!("writer {id} observed a torn entry"),
        }
    }
}

#[test]
fn concurrent_writers_across_threads_and_processes_never_tear() {
    // Child branch: this is one of the spawned writer processes.
    if let Ok(dir) = std::env::var(CHILD_DIR_ENV) {
        let id: u64 = std::env::var(CHILD_ID_ENV)
            .expect("child id set")
            .parse()
            .expect("child id numeric");
        hammer(&PathBuf::from(dir), id);
        return;
    }

    let dir = std::env::temp_dir().join(format!("tlp-disk-stress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create stress dir");

    let exe = std::env::current_exe().expect("test binary path");
    let mut children: Vec<std::process::Child> = (0..CHILD_PROCESSES)
        .map(|c| {
            std::process::Command::new(&exe)
                .arg("--exact")
                .arg("concurrent_writers_across_threads_and_processes_never_tear")
                .env(CHILD_DIR_ENV, &dir)
                .env(CHILD_ID_ENV, (100 + c).to_string())
                .stdout(std::process::Stdio::null())
                .spawn()
                .expect("spawn child writer process")
        })
        .collect();

    let failures = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..PARENT_THREADS {
            let dir = &dir;
            let failures = &failures;
            s.spawn(move || {
                let outcome = std::panic::catch_unwind(|| hammer(dir, t));
                if outcome.is_err() {
                    failures.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });
    assert_eq!(
        failures.load(Ordering::SeqCst),
        0,
        "a writer thread saw torn data"
    );

    for child in &mut children {
        let status = child.wait().expect("child exits");
        assert!(status.success(), "a writer process saw torn data: {status}");
    }

    // Post-mortem: every key every writer used must now hold a complete,
    // decodable entry (the last rename wins; none may be torn or
    // half-renamed).
    let disk = DiskCache::open(&dir).expect("reopen cache dir");
    let mut keys = vec![shared_key()];
    keys.extend((0..PARENT_THREADS).map(writer_key));
    keys.extend((0..CHILD_PROCESSES).map(|c| writer_key(100 + c)));
    for key in keys {
        match disk.load_classified(key) {
            DiskLoad::Hit(_) => {}
            other => panic!("{}: expected a decodable entry, got {other:?}", key.hex()),
        }
    }
    // No temp files may survive: every publish either renamed or cleaned
    // up after itself.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("read stress dir")
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| !n.ends_with(".json"))
        .collect();
    assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");

    let _ = std::fs::remove_dir_all(&dir);
}
