//! Golden-report regression fixtures: the exact rendered tables of
//! `fig01` and `ext7` at a pinned test-scale budget are checked into
//! `tests/golden/`. Any change to the simulator, the workload generators,
//! or the experiment code that shifts a single digit of these tables
//! fails here — results can never drift silently.
//!
//! To intentionally update the fixtures after a behavior change, run
//! `scripts/update-golden.sh` (which sets `UPDATE_GOLDEN=1` around this
//! suite) and commit the diff with an explanation of why the numbers
//! moved. The budget below is deliberately hardcoded — not derived from
//! `RunConfig::test()` — so harness-default changes cannot silently
//! re-scope the fixtures.

use std::path::PathBuf;

use tlp_harness::experiments::{ext07_rl, fig01};
use tlp_harness::{Harness, RunConfig};
use tlp_trace::catalog::Scale;

/// The pinned fixture budget. Threads are irrelevant to results (see
/// `tests/determinism.rs` at the workspace root) and left at the default.
fn golden_harness() -> Harness {
    let mut rc = RunConfig::test();
    rc.scale = Scale::Tiny;
    rc.warmup = 1_500;
    rc.instructions = 8_000;
    rc.workloads_per_suite = Some(1);
    rc.mixes_per_suite = 1;
    Harness::new(rc)
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Compares `rendered` against the checked-in fixture, or rewrites the
/// fixture when `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, rendered: &str) {
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir");
        std::fs::write(&path, rendered).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run scripts/update-golden.sh",
            path.display()
        )
    });
    assert_eq!(
        expected, rendered,
        "golden mismatch for '{name}': results drifted from the checked-in \
         fixture. If the change is intentional, run scripts/update-golden.sh \
         and commit the new fixture with a rationale."
    );
}

#[test]
fn fig01_matches_golden_fixture() {
    let h = golden_harness();
    check_golden("fig01", &fig01::run(&h).render());
}

#[test]
fn ext07_matches_golden_fixtures() {
    let h = golden_harness();
    check_golden("ext07", &ext07_rl::run(&h).render());
    check_golden("ext07lc", &ext07_rl::run_learning_curve(&h).render());
}
