//! Structural tests for the experiment runners: every experiment must
//! produce well-formed results (non-empty rows, the columns its figure
//! needs, finite values) at a minimal budget. These catch bit-rot in the
//! runners without asserting specific performance numbers.

use tlp_harness::experiments::{
    ext01_offchip, ext02_replacement, ext03_thresholds, ext04_features, ext05_storage,
    ext06_victim, ext07_rl, fig01, fig04, tables,
};
use tlp_harness::report::ExperimentResult;
use tlp_harness::{Harness, RunConfig};

fn tiny_harness() -> Harness {
    let mut rc = RunConfig::test();
    rc.instructions = 8_000;
    rc.warmup = 1_500;
    rc.workloads_per_suite = Some(1);
    rc.mixes_per_suite = 1;
    Harness::new(rc)
}

fn assert_well_formed(r: &ExperimentResult, expect_rows: usize, columns: &[&str]) {
    assert!(!r.id.is_empty() && !r.title.is_empty());
    assert_eq!(r.rows.len(), expect_rows, "{}: row count", r.id);
    for row in &r.rows {
        for col in columns {
            let v = row
                .get(col)
                .unwrap_or_else(|| panic!("{}: row {} misses column {col}", r.id, row.label));
            assert!(v.is_finite(), "{}: {}/{col} is not finite", r.id, row.label);
        }
    }
}

#[test]
fn ext01_reports_all_four_predictors() {
    let h = tiny_harness();
    let r = ext01_offchip::run(&h);
    assert_well_formed(&r, 4, &["speedup", "ΔDRAM", "precision", "coverage"]);
    let labels: Vec<&str> = r.rows.iter().map(|x| x.label.as_str()).collect();
    assert_eq!(labels, ["Hermes", "LP", "FLP", "TLP"]);
    // Percentages are percentages.
    for row in &r.rows {
        let p = row.get("precision").expect("column checked");
        assert!((0.0..=100.0).contains(&p), "{}: precision {p}", row.label);
        let c = row.get("coverage").expect("column checked");
        assert!((0.0..=100.0).contains(&c), "{}: coverage {c}", row.label);
    }
}

#[test]
fn ext02_covers_every_replacement_policy() {
    let h = tiny_harness();
    let r = ext02_replacement::run(&h);
    assert_well_formed(&r, 5, &["TLP speedup", "TLP ΔDRAM", "base MPKI"]);
    let labels: Vec<&str> = r.rows.iter().map(|x| x.label.as_str()).collect();
    assert_eq!(labels, ["lru", "srrip", "drrip", "ship", "random"]);
}

#[test]
fn ext03_sweeps_have_one_row_per_point() {
    let h = tiny_harness();
    let hi = ext03_thresholds::run_tau_high(&h);
    assert_well_formed(&hi, ext03_thresholds::TAU_HIGH.len(), &["speedup", "ΔDRAM"]);
    let lo = ext03_thresholds::run_tau_low(&h);
    assert_well_formed(&lo, ext03_thresholds::TAU_LOW.len(), &["speedup", "ΔDRAM"]);
    let pf = ext03_thresholds::run_tau_pref(&h);
    assert_well_formed(&pf, ext03_thresholds::TAU_PREF.len(), &["speedup", "ΔDRAM"]);
}

#[test]
fn ext04_has_baseline_plus_one_row_per_feature() {
    let h = tiny_harness();
    let r = ext04_features::run(&h);
    assert_well_formed(
        &r,
        1 + ext04_features::FEATURE_NAMES.len(),
        &["speedup", "ΔDRAM", "pf acc"],
    );
    assert_eq!(r.rows[0].label, "all features");
}

#[test]
fn ext05_storage_grows_monotonically() {
    let h = tiny_harness();
    let r = ext05_storage::run(&h);
    assert_well_formed(
        &r,
        ext05_storage::FACTORS.len(),
        &["storage KB", "speedup", "ΔDRAM"],
    );
    let kbs: Vec<f64> = r
        .rows
        .iter()
        .map(|row| row.get("storage KB").expect("column checked"))
        .collect();
    assert!(
        kbs.windows(2).all(|w| w[0] < w[1]),
        "storage must increase along the sweep: {kbs:?}"
    );
    // The ×1/1 point is the paper's ~7 KB budget.
    assert!((kbs[2] - 7.04).abs() < 0.2, "paper point {kbs:?}");
}

#[test]
fn ext06_reports_all_configurations() {
    let h = tiny_harness();
    let r = ext06_victim::run(&h);
    assert_well_formed(&r, 4, &["speedup", "ΔDRAM", "VC hit%"]);
}

#[test]
fn ext07_compares_all_four_systems() {
    let h = tiny_harness();
    let r = ext07_rl::run(&h);
    assert_well_formed(&r, 4, &["speedup", "ΔDRAM", "precision"]);
    let labels: Vec<&str> = r.rows.iter().map(|x| x.label.as_str()).collect();
    assert_eq!(labels, ["Baseline", "Hermes", "TLP", "AthenaRl"]);
    // The baseline row is its own reference point.
    assert_eq!(r.rows[0].get("speedup"), Some(0.0));
    assert_eq!(r.rows[0].get("ΔDRAM"), Some(0.0));
}

#[test]
fn ext07_learning_curve_has_one_row_per_epoch() {
    let h = tiny_harness();
    let r = ext07_rl::run_learning_curve(&h);
    assert_well_formed(&r, ext07_rl::EPOCHS, &["issue acc", "issued/kld", "IPC"]);
    assert_eq!(r.summary.len(), 1, "mean row");
    for row in &r.rows {
        let acc = row.get("issue acc").expect("column checked");
        assert!((0.0..=100.0).contains(&acc), "{}: acc {acc}", row.label);
        assert!(row.get("IPC").expect("column checked") > 0.0);
    }
    // The persistent agent must not get *worse* across epochs: the last
    // epoch's accuracy stays at or above the first's.
    let first = r.rows[0].get("issue acc").expect("column checked");
    let last = r.rows[ext07_rl::EPOCHS - 1]
        .get("issue acc")
        .expect("column checked");
    assert!(
        last >= first - 1e-9,
        "learning curve regressed: {first:.2} -> {last:.2}"
    );
}

#[test]
fn fig01_reports_mpki_per_level_with_summaries() {
    let h = tiny_harness();
    let r = fig01::run(&h);
    assert!(!r.rows.is_empty());
    for row in &r.rows {
        let l1 = row.get("L1D").expect("L1D column");
        let llc = row.get("LLC").expect("LLC column");
        assert!(l1 >= 0.0 && llc >= 0.0);
    }
    assert_eq!(r.summary.len(), 3, "SPEC/GAP/ALL summaries");
}

#[test]
fn fig04_outcome_shares_sum_to_100() {
    let h = tiny_harness();
    let r = fig04::run(&h);
    for row in &r.rows {
        let total: f64 = row.values.iter().map(|(_, v)| v).sum();
        assert!(
            total.abs() < 1e-6 || (total - 100.0).abs() < 1e-6,
            "{}: outcome shares sum to {total}",
            row.label
        );
    }
}

#[test]
fn static_tables_render_without_simulation() {
    let t2 = tables::table2();
    assert!(t2.render().contains("Total"));
    let t3 = tables::table3();
    assert!(!t3.rows.is_empty());
}

#[test]
fn hand_planned_experiments_cover_their_collection_grids() {
    // ext02/ext06 build their cell batches by hand (custom configs) and
    // fig03 through the shared mix planner; if a planning loop ever
    // drifts from its collection loop, the missed cells simulate inline
    // on the caller thread — correct but serial. The engine counts those,
    // and for migrated experiments the count must stay zero.
    let h = tiny_harness();
    let _ = ext02_replacement::run(&h);
    let _ = ext06_victim::run(&h);
    let _ = tlp_harness::experiments::fig03::run(&h);
    let stats = h.engine_stats();
    assert_eq!(
        stats.inline_simulated,
        0,
        "collection fell off the planned grid: {}",
        stats.summary_line()
    );
    assert!(stats.simulated > 0, "the experiments did simulate");
}
