//! Cross-batch single-flight regression: two concurrent clients of one
//! harness submitting the *same* grid must cost one grid of simulation.
//!
//! Before the in-flight map, two `run_cells` batches racing on a cold
//! cache each passed the lookup (miss) before either published, so every
//! overlapping cell simulated twice — wasted work locally, and a
//! correctness hazard for the `tlp-serve` daemon where "two clients, one
//! grid" is the normal case.

use std::sync::{Arc, Barrier};

use tlp_harness::{RunConfig, Session};
use tlp_sim::serial;
use tlp_sim::SimReport;

/// Rows as their exact cache-codec bytes, so "same result" means
/// byte-identical serialization, not just approximate equality.
fn as_json(rows: &[(String, SimReport)]) -> Vec<(String, String)> {
    rows.iter()
        .map(|(w, r)| (w.clone(), serial::report_to_json(r)))
        .collect()
}

#[test]
fn concurrent_identical_grids_simulate_each_cell_once() {
    let mut rc = RunConfig::test();
    rc.threads = 2;
    let session = Arc::new(Session::new(rc));
    let spec = session
        .registry()
        .scheme("Baseline")
        .expect("built-in scheme")
        .clone();
    let unique = session.harness().active_workloads().len() as u64;
    assert!(unique > 1, "the test grid must have multiple cells");

    let barrier = Barrier::new(2);
    let (rows_a, rows_b) = std::thread::scope(|s| {
        let run = |_: ()| {
            let session = Arc::clone(&session);
            let spec = spec.clone();
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                session.run_sweep(&spec, "ipcp").expect("sweep runs")
            })
        };
        let a = run(());
        let b = run(());
        (a.join().expect("client a"), b.join().expect("client b"))
    });

    let stats = session.engine_stats();
    assert_eq!(
        stats.simulated, unique,
        "each unique cell simulates exactly once across both grids: {stats:?}"
    );
    assert_eq!(
        stats.inline_simulated, 0,
        "no cell fell back to inline simulation: {stats:?}"
    );
    assert_eq!(
        as_json(&rows_a),
        as_json(&rows_b),
        "both requesters observe byte-identical reports"
    );

    // A third, sequential pass is pure cache: the counter must not move.
    let rows_c = session.run_sweep(&spec, "ipcp").expect("warm sweep runs");
    assert_eq!(session.engine_stats().simulated, unique);
    assert_eq!(as_json(&rows_a), as_json(&rows_c));
}
