//! End-to-end observability tests: the `--profile` artifact is written
//! through the same [`Session`] path the CLI uses, parses with the
//! workspace's own JSON codec, and its counters are field-for-field the
//! numbers on the `# run-engine:` summary line (both render from the
//! same metrics registry).

use std::sync::Arc;

use tlp_harness::{RunConfig, Session};
use tlp_sim::serial::parse_value;

/// Runs a small grid twice over one session — the repeat turns every
/// cell into a memory hit — then checks the written artifact against
/// the summary line's counters.
#[test]
fn profile_artifact_matches_the_summary_line() {
    let session = Session::new(RunConfig::test());
    let h = session.harness();
    let workloads = h.active_workloads();
    let scheme = session.resolve_scheme_name("Baseline").expect("scheme");
    let pf = session.resolve_l1pf_name("ipcp").expect("prefetcher");
    let cells = |n: usize| {
        workloads
            .iter()
            .take(n)
            .map(|w| h.cell_single_spec(w, Arc::clone(&scheme), Arc::clone(&pf), None))
            .collect::<Vec<_>>()
    };
    h.run_cells(cells(2)); // cold: both cells simulate
    h.run_cells(cells(2)); // warm: both cells hit in memory

    let dir = std::env::temp_dir().join(format!("tlp-obs-profile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tempdir");
    let path = dir.join("profile.json");
    session
        .write_profile("cycle", &path)
        .expect("profile written");

    let text = std::fs::read_to_string(&path).expect("artifact readable");
    let _ = std::fs::remove_dir_all(&dir);
    let parsed = parse_value(&text).expect("artifact parses with tlp_sim::serial");

    // The artifact declares its shape: schema 2 (top-level `schema`
    // field + optional timeline summary), and round-trips through the
    // codec byte-for-byte.
    assert_eq!(
        parsed.u64_field("schema").unwrap(),
        tlp_harness::profile::PROFILE_SCHEMA
    );
    assert_eq!(
        parsed.render(),
        text,
        "artifact render round-trips losslessly"
    );
    // No timeline was captured in this session: the summary is absent.
    assert!(parsed.field("timeline").is_err());

    // When a timeline summary is supplied, it embeds under the same
    // schema and still round-trips.
    let with_timeline = tlp_harness::profile::profile_value_with(
        h,
        "cycle",
        Some(tlp_harness::timeline::summary_value(&[])),
    );
    let reparsed = parse_value(&with_timeline.render()).expect("parses");
    assert_eq!(reparsed.u64_field("schema").unwrap(), 2);
    let tl = reparsed.field("timeline").expect("summary embedded");
    assert_eq!(tl.u64_field("total_windows").unwrap(), 0);

    // The run_engine section equals the summary-line counters exactly.
    let stats = session.engine_stats();
    let line = stats.summary_line();
    let re = parsed.field("run_engine").expect("run_engine section");
    for (field, value) in [
        ("requested", stats.requested),
        ("deduped", stats.deduped),
        ("mem_hits", stats.mem_hits),
        ("disk_hits", stats.disk_hits),
        ("coalesced", stats.coalesced),
        ("corrupt", stats.corrupt),
        ("evicted", stats.evicted),
        ("inline_simulated", stats.inline_simulated),
        ("simulated", stats.simulated),
    ] {
        assert_eq!(
            re.u64_field(field).unwrap(),
            value,
            "artifact field {field} equals the registry snapshot"
        );
    }
    // ... and the line itself advertises the same numbers the artifact
    // carries (the acceptance criterion: artifact ⟷ `# run-engine:`).
    assert!(
        line.contains(&format!("simulated={}", stats.simulated)),
        "line: {line}"
    );
    assert!(
        line.contains(&format!("mem_hits={}", stats.mem_hits)),
        "line: {line}"
    );
    assert_eq!(stats.requested, 4, "two grids of two cells each");
    assert_eq!(stats.simulated, 2, "cold grid simulated once per cell");
    assert_eq!(stats.mem_hits, 2, "warm grid answered from memory");

    // The metrics section carries the run-cache counters and the phase
    // histograms the `--profile` flag exists to expose.
    let metrics = parsed.arr_field("metrics").expect("metrics section");
    let find = |name: &str| {
        metrics
            .iter()
            .find(|m| m.str_field("name").as_deref() == Ok(name))
            .unwrap_or_else(|| panic!("metric {name} present"))
    };
    assert_eq!(
        find("run_cache_simulated_total")
            .u64_field("value")
            .unwrap(),
        stats.simulated
    );
    assert_eq!(
        find("run_cache_mem_hits_total").u64_field("value").unwrap(),
        stats.mem_hits
    );
    let lookup = find("run_cache_lookup_ns");
    assert_eq!(lookup.str_field("kind").unwrap(), "histogram");
    // At least one timed lookup per request (a simulating leader looks
    // up again when it re-checks the tiers, so the count can exceed it).
    assert!(lookup.u64_field("count").unwrap() >= stats.requested);
    let simulate = find("run_cache_simulate_ns");
    assert_eq!(simulate.u64_field("count").unwrap(), stats.simulated);
    assert!(simulate.u64_field("p99").unwrap() >= simulate.u64_field("p50").unwrap());

    // The per-cell timing log: 4 entries, 2 simulated then 2 mem hits.
    let cells_log = parsed.arr_field("cells").expect("cells section");
    assert_eq!(cells_log.len(), 4);
    let outcomes: Vec<String> = cells_log
        .iter()
        .map(|c| c.str_field("outcome").unwrap())
        .collect();
    assert_eq!(
        outcomes.iter().filter(|o| *o == "simulated").count(),
        2,
        "outcomes: {outcomes:?}"
    );
    assert_eq!(
        outcomes.iter().filter(|o| *o == "mem_hit").count(),
        2,
        "outcomes: {outcomes:?}"
    );
}
