//! The run orchestrator: trace capture/caching, system assembly, parallel
//! sweeps, and the single-core IPC cache that weighted speedup needs.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use tlp_sim::engine::System;
use tlp_sim::{SimReport, SystemConfig};
use tlp_trace::catalog::{self, Scale};
use tlp_trace::emit::Workload;
use tlp_trace::{TraceRecord, VecTrace};

use crate::scheme::{L1Pf, Scheme};

/// Simulation budgets and scale for a harness session.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Workload scale (graph sizes, working sets).
    pub scale: Scale,
    /// Warmup instructions per core.
    pub warmup: u64,
    /// Measured instructions per core.
    pub instructions: u64,
    /// Multi-core mixes evaluated per suite (paper: 100).
    pub mixes_per_suite: usize,
    /// Single-core workloads per suite (None = the full 24+31 catalog).
    pub workloads_per_suite: Option<usize>,
    /// Worker threads for sweeps.
    pub threads: usize,
}

impl RunConfig {
    /// Unit/integration-test budget: tiny graphs, 25 K instructions.
    #[must_use]
    pub fn test() -> Self {
        Self {
            scale: Scale::Tiny,
            warmup: 5_000,
            instructions: 25_000,
            mixes_per_suite: 2,
            workloads_per_suite: Some(2),
            threads: available_threads(),
        }
    }

    /// Bench/CI budget: Quick scale, 100 K instructions.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            scale: Scale::Quick,
            warmup: 20_000,
            instructions: 100_000,
            mixes_per_suite: 4,
            workloads_per_suite: Some(6),
            threads: available_threads(),
        }
    }

    /// Full harness runs: Full scale, 1 M instructions.
    #[must_use]
    pub fn full() -> Self {
        Self {
            scale: Scale::Full,
            warmup: 200_000,
            instructions: 1_000_000,
            mixes_per_suite: 12,
            workloads_per_suite: None,
            threads: available_threads(),
        }
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// The harness: cached traces, cached single-core IPCs, and run helpers.
pub struct Harness {
    /// The active run configuration.
    pub rc: RunConfig,
    workloads: Vec<Arc<dyn Workload>>,
    traces: RwLock<HashMap<String, Arc<Vec<TraceRecord>>>>,
    ipc_cache: RwLock<HashMap<String, f64>>,
    report_cache: RwLock<HashMap<String, SimReport>>,
}

impl std::fmt::Debug for Harness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Harness")
            .field("rc", &self.rc)
            .field("workloads", &self.workloads.len())
            .finish_non_exhaustive()
    }
}

impl Harness {
    /// Builds the harness and the 55-workload catalog at the configured
    /// scale.
    #[must_use]
    pub fn new(rc: RunConfig) -> Self {
        Self {
            rc,
            workloads: catalog::single_core_set(rc.scale),
            traces: RwLock::new(HashMap::new()),
            ipc_cache: RwLock::new(HashMap::new()),
            report_cache: RwLock::new(HashMap::new()),
        }
    }

    /// The single-core workload set (SPEC first, then GAP).
    #[must_use]
    pub fn workloads(&self) -> &[Arc<dyn Workload>] {
        &self.workloads
    }

    /// The workload set experiments sweep: the full catalog, or the
    /// configured per-suite subset.
    #[must_use]
    pub fn active_workloads(&self) -> Vec<Arc<dyn Workload>> {
        match self.rc.workloads_per_suite {
            None => self.workloads.clone(),
            Some(n) => self.workload_subset(n),
        }
    }

    /// Workload names grouped by suite: `(spec, gap)`.
    #[must_use]
    pub fn suite_names(&self) -> (Vec<String>, Vec<String>) {
        let mut spec = Vec::new();
        let mut gap = Vec::new();
        for w in &self.workloads {
            match w.suite() {
                tlp_trace::emit::Suite::Spec => spec.push(w.name().to_owned()),
                tlp_trace::emit::Suite::Gap => gap.push(w.name().to_owned()),
            }
        }
        (spec, gap)
    }

    /// A subset of workloads for quick sweeps: every `stride`-th workload
    /// of each suite.
    #[must_use]
    pub fn workload_subset(&self, per_suite: usize) -> Vec<Arc<dyn Workload>> {
        let (spec, gap) = self.suite_names();
        let pick = |names: &[String]| -> Vec<String> {
            let step = (names.len() / per_suite.max(1)).max(1);
            names
                .iter()
                .step_by(step)
                .take(per_suite)
                .cloned()
                .collect()
        };
        let mut chosen: Vec<String> = pick(&spec);
        chosen.extend(pick(&gap));
        self.workloads
            .iter()
            .filter(|w| chosen.iter().any(|c| c == w.name()))
            .cloned()
            .collect()
    }

    /// Captured (and cached) trace for a workload, long enough for the
    /// configured warmup + measurement.
    #[must_use]
    pub fn trace_for(&self, w: &Arc<dyn Workload>) -> VecTrace {
        let name = w.name().to_owned();
        if let Some(recs) = self.traces.read().get(&name) {
            return VecTrace::looping(name, recs.as_ref().clone());
        }
        let budget = (self.rc.warmup + self.rc.instructions) as usize + 4096;
        let recs = Arc::new(tlp_trace::source::capture(w.as_ref(), budget));
        self.traces.write().insert(name.clone(), Arc::clone(&recs));
        VecTrace::looping(name, recs.as_ref().clone())
    }

    /// Runs one single-core simulation (cached per workload/scheme/l1pf).
    #[must_use]
    pub fn run_single(&self, w: &Arc<dyn Workload>, scheme: Scheme, l1pf: L1Pf) -> SimReport {
        self.run_single_with_bandwidth(w, scheme, l1pf, None)
    }

    /// Runs one single-core simulation with an explicit per-core bandwidth
    /// (cached).
    #[must_use]
    pub fn run_single_with_bandwidth(
        &self,
        w: &Arc<dyn Workload>,
        scheme: Scheme,
        l1pf: L1Pf,
        gbps: Option<f64>,
    ) -> SimReport {
        let key = format!(
            "1c|{}|{}|{}|{:?}",
            w.name(),
            scheme.key(),
            l1pf.name(),
            gbps
        );
        if let Some(r) = self.report_cache.read().get(&key) {
            return r.clone();
        }
        let cfg = match gbps {
            Some(b) => SystemConfig::cascade_lake_with_bandwidth(1, b),
            None => SystemConfig::cascade_lake(1),
        };
        let setup = scheme.build_setup(Box::new(self.trace_for(w)), l1pf);
        let mut sys = System::new(cfg, vec![setup]);
        let report = sys.run(self.rc.warmup, self.rc.instructions);
        self.report_cache.write().insert(key, report.clone());
        report
    }

    /// Runs one single-core simulation under an explicit [`SystemConfig`]
    /// (cached; `tag` must uniquely identify the config deviation, e.g.
    /// the LLC replacement policy).
    #[must_use]
    pub fn run_single_custom(
        &self,
        w: &Arc<dyn Workload>,
        scheme: Scheme,
        l1pf: L1Pf,
        cfg: SystemConfig,
        tag: &str,
    ) -> SimReport {
        let key = format!("1c|{}|{}|{}|cfg:{tag}", w.name(), scheme.key(), l1pf.name());
        if let Some(r) = self.report_cache.read().get(&key) {
            return r.clone();
        }
        let setup = scheme.build_setup(Box::new(self.trace_for(w)), l1pf);
        let mut sys = System::new(cfg, vec![setup]);
        let report = sys.run(self.rc.warmup, self.rc.instructions);
        self.report_cache.write().insert(key, report.clone());
        report
    }

    /// Runs one 4-core mix (cached per mix/scheme/l1pf/bandwidth).
    #[must_use]
    pub fn run_mix(
        &self,
        ws: &[Arc<dyn Workload>; 4],
        scheme: Scheme,
        l1pf: L1Pf,
        gbps: Option<f64>,
    ) -> SimReport {
        let key = format!(
            "4c|{}+{}+{}+{}|{}|{}|{:?}",
            ws[0].name(),
            ws[1].name(),
            ws[2].name(),
            ws[3].name(),
            scheme.key(),
            l1pf.name(),
            gbps
        );
        if let Some(r) = self.report_cache.read().get(&key) {
            return r.clone();
        }
        let cfg = match gbps {
            Some(b) => SystemConfig::cascade_lake_with_bandwidth(4, b),
            None => SystemConfig::cascade_lake(4),
        };
        let setups = ws
            .iter()
            .map(|w| scheme.build_setup(Box::new(self.trace_for(w)), l1pf))
            .collect();
        let mut sys = System::new(cfg, setups);
        let report = sys.run(self.rc.warmup, self.rc.instructions);
        self.report_cache.write().insert(key, report.clone());
        report
    }

    /// Cached single-core IPC of `w` under `scheme` (isolation run on the
    /// multi-core per-core bandwidth), as weighted speedup requires.
    #[must_use]
    pub fn single_ipc(&self, w: &Arc<dyn Workload>, scheme: Scheme, l1pf: L1Pf, gbps: f64) -> f64 {
        let key = format!("{}|{}|{}|{gbps}", w.name(), scheme.key(), l1pf.name());
        if let Some(&ipc) = self.ipc_cache.read().get(&key) {
            return ipc;
        }
        let report = self.run_single_with_bandwidth(w, scheme, l1pf, Some(gbps));
        let ipc = report.ipc();
        self.ipc_cache.write().insert(key, ipc);
        ipc
    }

    /// Weighted speedup of a mix report relative to per-workload isolation
    /// IPCs (paper §V-D): Σ IPC_shared / IPC_single.
    #[must_use]
    pub fn weighted_ipc(
        &self,
        ws: &[Arc<dyn Workload>; 4],
        mix_report: &SimReport,
        scheme: Scheme,
        l1pf: L1Pf,
        gbps: f64,
    ) -> f64 {
        ws.iter()
            .zip(&mix_report.cores)
            .map(|(w, core)| {
                let single = self.single_ipc(w, scheme, l1pf, gbps);
                if single <= 0.0 {
                    0.0
                } else {
                    core.core.ipc() / single
                }
            })
            .sum()
    }

    /// Maps `f` over `items` on the configured number of worker threads,
    /// preserving order.
    pub fn parallel_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let threads = self.rc.threads.max(1);
        if threads == 1 || items.len() <= 1 {
            return items.iter().map(&f).collect();
        }
        let n = items.len();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let (tx, rx) = crossbeam::channel::unbounded::<(usize, R)>();
        let (items_ref, f_ref, next_ref) = (&items, &f, &next);
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(n) {
                let tx = tx.clone();
                scope.spawn(move |_| loop {
                    let i = next_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f_ref(&items_ref[i]);
                    if tx.send((i, r)).is_err() {
                        break;
                    }
                });
            }
        })
        .expect("worker panicked");
        drop(tx);
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        while let Ok((i, r)) = rx.recv() {
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every index produced"))
            .collect()
    }
}

/// Geometric mean of (1 + x) ratios expressed as percent deltas:
/// `geomean_speedup_percent([5.0, 10.0])` treats inputs as +5%, +10%.
#[must_use]
pub fn geomean_speedup_percent(percents: &[f64]) -> f64 {
    if percents.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = percents
        .iter()
        .map(|p| (1.0 + p / 100.0).max(1e-9).ln())
        .sum();
    ((log_sum / percents.len() as f64).exp() - 1.0) * 100.0
}

/// Arithmetic mean.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_uniform_is_identity() {
        assert!((geomean_speedup_percent(&[10.0, 10.0]) - 10.0).abs() < 1e-9);
        assert_eq!(geomean_speedup_percent(&[]), 0.0);
    }

    #[test]
    fn geomean_mixes_gains_and_losses() {
        let g = geomean_speedup_percent(&[50.0, -33.333_333_333]);
        assert!(g.abs() < 0.01, "×1.5 and ×(2/3) must cancel: {g}");
    }

    #[test]
    fn parallel_map_preserves_order() {
        let h = Harness::new(RunConfig::test());
        let out = h.parallel_map((0..100).collect(), |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn trace_cache_returns_identical_traces() {
        let h = Harness::new(RunConfig::test());
        let w = &h.workloads()[0].clone();
        let mut a = h.trace_for(w);
        let mut b = h.trace_for(w);
        use tlp_trace::TraceSource;
        for _ in 0..100 {
            assert_eq!(a.next_record(), b.next_record());
        }
    }

    #[test]
    fn subset_takes_from_both_suites() {
        let h = Harness::new(RunConfig::test());
        let sub = h.workload_subset(2);
        assert_eq!(sub.len(), 4);
        let suites: std::collections::HashSet<_> = sub.iter().map(|w| w.suite()).collect();
        assert_eq!(suites.len(), 2);
    }
}
