//! The run engine: trace capture/caching, system assembly, and the
//! sharded execution of simulation cells over the content-addressed
//! result cache in [`crate::cache`].
//!
//! Experiments describe the grid cells they need as [`RunCell`]s and
//! submit them through [`Harness::run_cells`]; the engine deduplicates the
//! batch, answers what it can from the cache, and simulates the rest on a
//! self-scheduling worker pool. Collection then happens sequentially
//! through the cached getters ([`Harness::run_single`],
//! [`Harness::run_mix`], ...), so results are bit-identical regardless of
//! thread count or cache state.

use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use parking_lot::Mutex;

use tlp_plugin::{BuildCtx, ResolvedScheme};
use tlp_sim::engine::{CoreSetup, System};
use tlp_sim::{EngineMode, SimReport, SystemConfig, Timeline, TimelineConfig};
use tlp_trace::catalog::{self, Scale};
use tlp_trace::emit::Workload;
use tlp_trace::simpoint::{simpoints_of, BbvConfig, SimPoint};
use tlp_trace::{TraceRecord, TraceSource, VecTrace};
use tlp_tracestore::{
    capture_desc, TraceKey, TraceLoad, TraceReader, TraceStore, TraceWorkload, CAPTURE_SIMPOINT_K,
    CAPTURE_SIMPOINT_SEED, TRACE_NAMESPACE,
};

use crate::cache::{self, DiskCache, EngineStats, ResultCache, RunKey};
use crate::scheme::{L1Pf, ResolvedL1Pf, Scheme};
use crate::tracetier::{TraceTier, TraceTierCounters, TraceTierStats, DEFAULT_TRACE_MEM_CAP};

/// Simulation budgets and scale for a harness session.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Workload scale (graph sizes, working sets).
    pub scale: Scale,
    /// Warmup instructions per core.
    pub warmup: u64,
    /// Measured instructions per core.
    pub instructions: u64,
    /// Multi-core mixes evaluated per suite (paper: 100).
    pub mixes_per_suite: usize,
    /// Single-core workloads per suite (None = the full 24+31 catalog).
    pub workloads_per_suite: Option<usize>,
    /// Worker threads for sweeps.
    pub threads: usize,
    /// Engine time-advance strategy. Cycle and event mode produce
    /// bit-identical reports (pinned by `tests/determinism.rs`), so the
    /// mode is deliberately **not** part of the cell content address —
    /// cached results are shared across modes.
    pub engine: EngineMode,
}

impl RunConfig {
    /// Unit/integration-test budget: tiny graphs, 25 K instructions.
    #[must_use]
    pub fn test() -> Self {
        Self {
            scale: Scale::Tiny,
            warmup: 5_000,
            instructions: 25_000,
            mixes_per_suite: 2,
            workloads_per_suite: Some(2),
            threads: available_threads(),
            engine: engine_from_env(),
        }
    }

    /// Bench/CI budget: Quick scale, 100 K instructions.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            scale: Scale::Quick,
            warmup: 20_000,
            instructions: 100_000,
            mixes_per_suite: 4,
            workloads_per_suite: Some(6),
            threads: available_threads(),
            engine: engine_from_env(),
        }
    }

    /// Full harness runs: Full scale, 1 M instructions.
    #[must_use]
    pub fn full() -> Self {
        Self {
            scale: Scale::Full,
            warmup: 200_000,
            instructions: 1_000_000,
            mixes_per_suite: 12,
            workloads_per_suite: None,
            threads: available_threads(),
            engine: engine_from_env(),
        }
    }
}

/// Worker-thread default: the `TLP_THREADS` environment variable when set
/// (CI pins the test matrix with it), else the machine's parallelism.
fn available_threads() -> usize {
    if let Some(n) = std::env::var("TLP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// Engine-mode default: the `TLP_ENGINE` environment variable when set
/// (CI runs the golden/determinism suites under both modes with it), else
/// the cycle-accurate reference engine.
///
/// # Panics
///
/// Panics on an unrecognized `TLP_ENGINE` value — a typo silently falling
/// back to the default would defeat the CI matrix.
fn engine_from_env() -> EngineMode {
    match std::env::var("TLP_ENGINE") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|e| panic!("invalid TLP_ENGINE: {e}")),
        Err(_) => EngineMode::Cycle,
    }
}

/// One simulation cell of the evaluation grid: a content-addressed key, a
/// human-readable label (for scheduling diagnostics and panic messages),
/// and everything needed to simulate the cell on a cache miss.
pub struct RunCell {
    key: RunKey,
    label: String,
    kind: CellKind,
}

enum CellKind {
    Single {
        workload: Arc<dyn Workload>,
        scheme: Arc<ResolvedScheme>,
        l1pf: Arc<ResolvedL1Pf>,
        gbps: Option<f64>,
    },
    Mix {
        workloads: [Arc<dyn Workload>; 4],
        scheme: Arc<ResolvedScheme>,
        l1pf: Arc<ResolvedL1Pf>,
        gbps: Option<f64>,
    },
    Custom {
        workload: Arc<dyn Workload>,
        scheme: Arc<ResolvedScheme>,
        l1pf: Arc<ResolvedL1Pf>,
        cfg: Box<SystemConfig>,
    },
}

impl RunCell {
    /// The cell's content-addressed key.
    #[must_use]
    pub fn key(&self) -> RunKey {
        self.key
    }

    /// The cell's display label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl std::fmt::Debug for RunCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunCell")
            .field("key", &self.key.hex())
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// Result of a SimPoint-sampled run ([`Harness::run_simpoints`]): the
/// replayed regions (weights renormalized over the chosen `k`), their
/// individual reports, and the reconstituted full-run estimate.
#[derive(Debug, Clone)]
pub struct SimPointRun {
    /// Workload the estimate is for.
    pub workload: String,
    /// BBV interval length (instructions per region).
    pub interval: usize,
    /// The replayed SimPoints, by decreasing weight; weights sum to 1.
    pub regions: Vec<SimPoint>,
    /// One report per region, same order as `regions`.
    pub region_reports: Vec<SimReport>,
    /// The weighted full-run estimate.
    pub estimate: SimReport,
}

/// The harness: cached traces, the two-tier result cache, and run helpers.
pub struct Harness {
    /// The active run configuration.
    pub rc: RunConfig,
    workloads: Vec<Arc<dyn Workload>>,
    traces: Mutex<TraceTier>,
    trace_store: Option<Arc<TraceStore>>,
    /// Explicit memory-tier cap; `None` = unbounded without a store,
    /// [`DEFAULT_TRACE_MEM_CAP`] with one.
    trace_mem_cap: Option<usize>,
    tstats: TraceTierCounters,
    cache: ResultCache,
}

impl std::fmt::Debug for Harness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Harness")
            .field("rc", &self.rc)
            .field("workloads", &self.workloads.len())
            .finish_non_exhaustive()
    }
}

impl Harness {
    /// Builds the harness and the 55-workload catalog at the configured
    /// scale, with a memory-only result cache.
    #[must_use]
    pub fn new(rc: RunConfig) -> Self {
        Self {
            rc,
            workloads: catalog::single_core_set(rc.scale),
            traces: Mutex::new(TraceTier::default()),
            trace_store: None,
            trace_mem_cap: None,
            tstats: TraceTierCounters::default(),
            cache: ResultCache::in_memory(),
        }
    }

    /// Adds the on-disk cache tier under `dir` (created if absent).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created.
    pub fn with_cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        self.cache = ResultCache::with_disk(DiskCache::open(dir)?);
        Ok(self)
    }

    /// Adds a pre-configured on-disk tier (e.g. one with a size cap from
    /// [`DiskCache::with_cap_bytes`]).
    #[must_use]
    pub fn with_disk_cache(mut self, disk: DiskCache) -> Self {
        self.cache = ResultCache::with_disk(disk);
        self
    }

    /// Adds the content-addressed on-disk trace store under `dir`
    /// (created if absent): fresh captures are persisted as TLPT v2 and
    /// later resolutions — in this process or a cold one — stream the
    /// stored file back instead of re-capturing. Also caps the in-memory
    /// trace tier at [`DEFAULT_TRACE_MEM_CAP`] workloads unless
    /// [`Harness::with_trace_mem_cap`] says otherwise.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created.
    pub fn with_trace_dir(mut self, dir: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        self.trace_store = Some(Arc::new(TraceStore::open(dir)?));
        Ok(self)
    }

    /// Shares an already-open trace store (e.g. the serve daemon's single
    /// store across sessions).
    #[must_use]
    pub fn with_trace_store(mut self, store: Arc<TraceStore>) -> Self {
        self.trace_store = Some(store);
        self
    }

    /// Caps the in-memory trace tier at `cap` workloads (LRU eviction;
    /// entries not yet persisted to the store stay pinned regardless).
    #[must_use]
    pub fn with_trace_mem_cap(mut self, cap: usize) -> Self {
        self.trace_mem_cap = Some(cap.max(1));
        self
    }

    /// The configured trace store, when one backs this harness.
    #[must_use]
    pub fn trace_store(&self) -> Option<&Arc<TraceStore>> {
        self.trace_store.as_ref()
    }

    /// Snapshot of the trace-tier counters (captures, per-tier hits,
    /// evictions, corrupt store files, resident entries).
    #[must_use]
    pub fn trace_stats(&self) -> TraceTierStats {
        let corrupt = self.trace_store.as_ref().map_or(0, |s| s.corrupt_count());
        let resident = self.traces.lock().len() as u64;
        self.tstats.snapshot(corrupt, resident)
    }

    /// Resolves a `trace:NAME` workload against the store's imports.
    /// Returns `None` when the name lacks the prefix, no store is
    /// configured, the import doesn't exist, or its file fails
    /// validation.
    #[must_use]
    pub fn trace_workload(&self, name: &str) -> Option<Arc<dyn Workload>> {
        let short = name.strip_prefix(TRACE_NAMESPACE)?;
        let store = self.trace_store.as_ref()?;
        let path = store.import_path(short);
        if !path.exists() {
            return None;
        }
        TraceWorkload::open(short, path)
            .ok()
            .map(|w| Arc::new(w) as Arc<dyn Workload>)
    }

    /// Snapshot of the run-engine counters (requests, hits per tier,
    /// simulations, batch dedup).
    #[must_use]
    pub fn engine_stats(&self) -> EngineStats {
        self.cache.stats()
    }

    /// The run cache's metrics registry (`run_cache_*` counters and
    /// phase histograms) — the substrate behind [`Harness::engine_stats`],
    /// `--profile` artifacts, and the serve daemon's `STATS` frame.
    #[must_use]
    pub fn metrics(&self) -> &tlp_obs::MetricsRegistry {
        self.cache.metrics()
    }

    /// The per-cell wall-clock timing log captured by the run engine
    /// (label, outcome, queue wait, total duration).
    #[must_use]
    pub fn cell_timings(&self) -> Vec<crate::cache::CellTiming> {
        self.cache.cell_timings()
    }

    /// The single-core workload set (SPEC first, then GAP).
    #[must_use]
    pub fn workloads(&self) -> &[Arc<dyn Workload>] {
        &self.workloads
    }

    /// The workload set experiments sweep: the full catalog, or the
    /// configured per-suite subset.
    #[must_use]
    pub fn active_workloads(&self) -> Vec<Arc<dyn Workload>> {
        match self.rc.workloads_per_suite {
            None => self.workloads.clone(),
            Some(n) => self.workload_subset(n),
        }
    }

    /// Workload names grouped by suite: `(spec, gap)`.
    #[must_use]
    pub fn suite_names(&self) -> (Vec<String>, Vec<String>) {
        let mut spec = Vec::new();
        let mut gap = Vec::new();
        for w in &self.workloads {
            match w.suite() {
                tlp_trace::emit::Suite::Spec => spec.push(w.name().to_owned()),
                tlp_trace::emit::Suite::Gap => gap.push(w.name().to_owned()),
            }
        }
        (spec, gap)
    }

    /// A subset of workloads for quick sweeps: every `stride`-th workload
    /// of each suite.
    #[must_use]
    pub fn workload_subset(&self, per_suite: usize) -> Vec<Arc<dyn Workload>> {
        let (spec, gap) = self.suite_names();
        let pick = |names: &[String]| -> Vec<String> {
            let step = (names.len() / per_suite.max(1)).max(1);
            names
                .iter()
                .step_by(step)
                .take(per_suite)
                .cloned()
                .collect()
        };
        let mut chosen: Vec<String> = pick(&spec);
        chosen.extend(pick(&gap));
        self.workloads
            .iter()
            .filter(|w| chosen.iter().any(|c| c == w.name()))
            .cloned()
            .collect()
    }

    /// The trace for a workload, long enough for the configured warmup +
    /// measurement, resolved memory → disk → capture:
    ///
    /// 1. A `trace:` workload ([`Workload::trace_path`]) streams its
    ///    backing file directly — nothing to capture, nothing to cache.
    /// 2. The in-memory tier shares the captured records zero-copy.
    /// 3. The on-disk store (when configured) streams the stored TLPT v2
    ///    file — replay never materializes the records, and a warm trace
    ///    dir makes cold-process runs capture nothing.
    /// 4. Otherwise the workload is captured (and persisted to the store
    ///    when one is configured).
    ///
    /// # Panics
    ///
    /// Panics when a `trace:` workload's backing file disappears or fails
    /// validation after [`Harness::trace_workload`] vetted it.
    #[must_use]
    pub fn trace_for(&self, w: &Arc<dyn Workload>) -> Box<dyn TraceSource> {
        if let Some(path) = w.trace_path() {
            let t = TraceReader::open(path).unwrap_or_else(|e| {
                panic!(
                    "trace workload '{}': cannot open {}: {e}",
                    w.name(),
                    path.display()
                )
            });
            self.tstats.disk_hits.fetch_add(1, Ordering::Relaxed);
            return Box::new(t);
        }
        let name = w.name();
        {
            let mut tier = self.traces.lock();
            if let Some(recs) = tier.touch(name) {
                self.tstats.mem_hits.fetch_add(1, Ordering::Relaxed);
                return Box::new(VecTrace::looping_shared(name.to_owned(), recs));
            }
        }
        if let Some(store) = &self.trace_store {
            if let Some(t) = tlp_tracestore::store::open_if_present(store, self.capture_key(name)) {
                self.tstats.disk_hits.fetch_add(1, Ordering::Relaxed);
                return Box::new(t);
            }
        }
        let recs = self.capture_records(w);
        Box::new(VecTrace::looping_shared(name.to_owned(), recs))
    }

    /// Capture budget in records: enough for warmup + measurement with
    /// slack for the frontend pipeline to stay fed at the end.
    fn trace_budget(&self) -> usize {
        (self.rc.warmup + self.rc.instructions) as usize + 4096
    }

    /// The store key of this harness's capture of `name` — workload,
    /// capture environment, and budget all feed the content address.
    fn capture_key(&self, name: &str) -> TraceKey {
        TraceKey::from_desc(&capture_desc(&self.env_desc(), name, self.trace_budget()))
    }

    /// Captures a workload's records, single-flighted under the tier
    /// lock. `generate` advances a per-workload pass counter that seeds
    /// the generator, so two workers capturing the same workload
    /// concurrently (cold cache, several schemes of one workload in
    /// flight) would interleave passes and record *different* traces —
    /// nondeterminism that leaks straight into reports. Single-flighting
    /// the capture keeps the pass sequence, and therefore every report,
    /// identical to a serial run.
    ///
    /// When a store is configured the capture is persisted (with its
    /// capture-time SimPoints in the footer); only then may the memory
    /// entry ever be evicted — see [`crate::tracetier`].
    fn capture_records(&self, w: &Arc<dyn Workload>) -> Arc<Vec<TraceRecord>> {
        let name = w.name().to_owned();
        let mut tier = self.traces.lock();
        if let Some(recs) = tier.touch(&name) {
            self.tstats.mem_hits.fetch_add(1, Ordering::Relaxed);
            return recs;
        }
        let recs = Arc::new(tlp_trace::source::capture(w.as_ref(), self.trace_budget()));
        self.tstats.captures.fetch_add(1, Ordering::Relaxed);
        let mut evictable = false;
        if let Some(store) = &self.trace_store {
            let cfg = BbvConfig::standard();
            let sps = simpoints_of(&recs, cfg, CAPTURE_SIMPOINT_K, CAPTURE_SIMPOINT_SEED);
            evictable = store
                .save(
                    self.capture_key(&name),
                    &name,
                    true,
                    &recs,
                    &sps,
                    cfg.interval,
                )
                .is_ok();
        }
        tier.insert(name, Arc::clone(&recs), evictable);
        let evicted = tier.evict_to(self.effective_trace_cap());
        if evicted > 0 {
            self.tstats.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        recs
    }

    /// The memory tier's effective entry cap.
    fn effective_trace_cap(&self) -> usize {
        self.trace_mem_cap.unwrap_or(if self.trace_store.is_some() {
            DEFAULT_TRACE_MEM_CAP
        } else {
            usize::MAX
        })
    }

    /// The run-budget fragment of every cell description: anything here
    /// changes simulation results, so it is part of the content address.
    fn env_desc(&self) -> String {
        format!(
            "{:?}|w{}|i{}",
            self.rc.scale, self.rc.warmup, self.rc.instructions
        )
    }

    /// Describes a single-core cell.
    #[must_use]
    pub fn cell_single(
        &self,
        w: &Arc<dyn Workload>,
        scheme: Scheme,
        l1pf: L1Pf,
        gbps: Option<f64>,
    ) -> RunCell {
        self.cell_single_spec(w, scheme.resolve(), l1pf.resolve(), gbps)
    }

    /// Describes a single-core cell for a resolved (possibly custom)
    /// scheme — the registry-backed twin of [`Harness::cell_single`].
    /// The scheme's [`cache_key`](ResolvedScheme::cache_key) and the
    /// prefetcher's canonical fragment feed the content address.
    #[must_use]
    pub fn cell_single_spec(
        &self,
        w: &Arc<dyn Workload>,
        scheme: Arc<ResolvedScheme>,
        l1pf: Arc<ResolvedL1Pf>,
        gbps: Option<f64>,
    ) -> RunCell {
        let desc = cache::single_desc(
            &self.env_desc(),
            w.name(),
            &scheme.cache_key,
            &l1pf.key,
            &cache::bandwidth_desc(gbps),
        );
        RunCell {
            key: RunKey::from_desc(&desc),
            label: desc,
            kind: CellKind::Single {
                workload: Arc::clone(w),
                scheme,
                l1pf,
                gbps,
            },
        }
    }

    /// Describes a 4-core mix cell.
    #[must_use]
    pub fn cell_mix(
        &self,
        ws: &[Arc<dyn Workload>; 4],
        scheme: Scheme,
        l1pf: L1Pf,
        gbps: Option<f64>,
    ) -> RunCell {
        self.cell_mix_spec(ws, scheme.resolve(), l1pf.resolve(), gbps)
    }

    /// Describes a 4-core mix cell for a resolved scheme.
    #[must_use]
    pub fn cell_mix_spec(
        &self,
        ws: &[Arc<dyn Workload>; 4],
        scheme: Arc<ResolvedScheme>,
        l1pf: Arc<ResolvedL1Pf>,
        gbps: Option<f64>,
    ) -> RunCell {
        let desc = cache::mix_desc(
            &self.env_desc(),
            [ws[0].name(), ws[1].name(), ws[2].name(), ws[3].name()],
            &scheme.cache_key,
            &l1pf.key,
            &cache::bandwidth_desc(gbps),
        );
        RunCell {
            key: RunKey::from_desc(&desc),
            label: desc,
            kind: CellKind::Mix {
                workloads: ws.clone(),
                scheme,
                l1pf,
                gbps,
            },
        }
    }

    /// Describes a single-core cell under an explicit [`SystemConfig`].
    /// `tag` names the config deviation (e.g. the LLC replacement policy)
    /// for display; the key additionally folds in a digest of the full
    /// config, so two calls reusing a tag with different hardware can
    /// never alias — the address stays content-based even across the
    /// persistent disk tier.
    #[must_use]
    pub fn cell_custom(
        &self,
        w: &Arc<dyn Workload>,
        scheme: Scheme,
        l1pf: L1Pf,
        cfg: SystemConfig,
        tag: &str,
    ) -> RunCell {
        let cfg_digest = RunKey::from_desc(&format!("{cfg:?}")).hex();
        let desc = cache::custom_desc(
            &self.env_desc(),
            w.name(),
            &scheme.key(),
            l1pf.name(),
            &format!("{tag}#{cfg_digest}"),
        );
        RunCell {
            key: RunKey::from_desc(&desc),
            label: desc,
            kind: CellKind::Custom {
                workload: Arc::clone(w),
                scheme: scheme.resolve(),
                l1pf: l1pf.resolve(),
                cfg: Box::new(cfg),
            },
        }
    }

    /// Assembles one core's system through the resolved scheme's
    /// factories. A factory failure here is a panic, not an error: cell
    /// creation goes through registry resolution, so by the time a cell
    /// simulates, its names were valid — only a parameter a factory
    /// rejects at build time can still fail, and that aborts the run
    /// loudly with the scheme named.
    fn assemble(
        &self,
        scheme: &ResolvedScheme,
        l1pf: &ResolvedL1Pf,
        trace: Box<dyn TraceSource>,
    ) -> CoreSetup {
        scheme
            .build_setup(trace, Some(l1pf), &mut BuildCtx::new())
            .unwrap_or_else(|e| panic!("cannot assemble scheme '{}': {e}", scheme.name))
    }

    /// Simulates one cell from scratch (no cache involvement). Each cell
    /// is a deterministic, single-threaded simulation, which is what makes
    /// content addressing and thread-count invariance sound.
    fn simulate(&self, kind: &CellKind) -> SimReport {
        match kind {
            CellKind::Single {
                workload,
                scheme,
                l1pf,
                gbps,
            } => {
                let cfg = match gbps {
                    Some(b) => SystemConfig::cascade_lake_with_bandwidth(1, *b),
                    None => SystemConfig::cascade_lake(1),
                };
                let setup = self.assemble(scheme, l1pf, self.trace_for(workload));
                System::new(cfg, vec![setup])
                    .with_engine_mode(self.rc.engine)
                    .run(self.rc.warmup, self.rc.instructions)
            }
            CellKind::Mix {
                workloads,
                scheme,
                l1pf,
                gbps,
            } => {
                let cfg = match gbps {
                    Some(b) => SystemConfig::cascade_lake_with_bandwidth(4, *b),
                    None => SystemConfig::cascade_lake(4),
                };
                let setups = workloads
                    .iter()
                    .map(|w| self.assemble(scheme, l1pf, self.trace_for(w)))
                    .collect();
                System::new(cfg, setups)
                    .with_engine_mode(self.rc.engine)
                    .run(self.rc.warmup, self.rc.instructions)
            }
            CellKind::Custom {
                workload,
                scheme,
                l1pf,
                cfg,
            } => {
                let setup = self.assemble(scheme, l1pf, self.trace_for(workload));
                System::new((**cfg).clone(), vec![setup])
                    .with_engine_mode(self.rc.engine)
                    .run(self.rc.warmup, self.rc.instructions)
            }
        }
    }

    /// Captures the simulated-time telemetry of one single-core cell:
    /// the cell re-simulates with a [`tlp_timeline::Recorder`] attached
    /// and the resulting [`Timeline`] is content-addressed under its own
    /// key (the cell's descriptor plus the timeline parameters), cached
    /// in a blob tier separate from `SimReport`s.
    ///
    /// The capture is deterministic — bit-identical across engine modes,
    /// thread counts, and warm/cold caches — so a racing duplicate can
    /// only waste work, never publish a different blob; it is therefore
    /// not single-flighted. The instrumented run's `SimReport` is
    /// discarded (the plain cell already covers it), so timeline capture
    /// can never perturb a cached report.
    pub fn timeline_single(
        &self,
        w: &Arc<dyn Workload>,
        scheme: Scheme,
        l1pf: L1Pf,
        tcfg: TimelineConfig,
    ) -> Arc<Timeline> {
        self.timeline_single_spec(w, scheme.resolve(), l1pf.resolve(), tcfg)
    }

    /// [`Harness::timeline_single`] for a resolved (possibly custom)
    /// scheme — the registry-backed twin, used by the session layer and
    /// the serve daemon.
    pub fn timeline_single_spec(
        &self,
        w: &Arc<dyn Workload>,
        scheme: Arc<ResolvedScheme>,
        l1pf: Arc<ResolvedL1Pf>,
        tcfg: TimelineConfig,
    ) -> Arc<Timeline> {
        let cell = self.cell_single_spec(w, scheme, l1pf, None);
        let desc = format!(
            "{}|timeline|w{}|k{}",
            cell.label, tcfg.window_cycles, tcfg.journey_every
        );
        let key = RunKey::from_desc(&desc);
        if let Some(t) = self.cache.lookup_timeline(key) {
            return t;
        }
        let timeline = match &cell.kind {
            CellKind::Single {
                workload,
                scheme,
                l1pf,
                ..
            } => {
                let setup = self.assemble(scheme, l1pf, self.trace_for(workload));
                let mut sys = System::new(SystemConfig::cascade_lake(1), vec![setup])
                    .with_engine_mode(self.rc.engine);
                sys.enable_timeline(tcfg);
                let _ = sys.run(self.rc.warmup, self.rc.instructions);
                sys.take_timeline()
                    .expect("timeline was enabled before the run")
            }
            _ => unreachable!("cell_single always builds CellKind::Single"),
        };
        self.cache.insert_timeline(key, timeline)
    }

    /// Records plus SimPoints for a workload, resolving through the same
    /// memory → disk → capture tiers as [`Harness::trace_for`] but
    /// materializing the records (SimPoint replay slices them). SimPoints
    /// come from a stored footer when one exists; computing them fresh
    /// yields the identical set — captures are deterministic per fresh
    /// process and the k-means seed is fixed — so either path agrees.
    fn records_and_simpoints(
        &self,
        w: &Arc<dyn Workload>,
    ) -> (Arc<Vec<TraceRecord>>, Vec<SimPoint>) {
        let cfg = BbvConfig::standard();
        let compute = |recs: &[TraceRecord]| {
            simpoints_of(recs, cfg, CAPTURE_SIMPOINT_K, CAPTURE_SIMPOINT_SEED)
        };
        if let Some(path) = w.trace_path() {
            let mut reader = TraceReader::open(path).unwrap_or_else(|e| {
                panic!(
                    "trace workload '{}': cannot open {}: {e}",
                    w.name(),
                    path.display()
                )
            });
            self.tstats.disk_hits.fetch_add(1, Ordering::Relaxed);
            let sps = reader.simpoints().to_vec();
            let n = reader.total_records();
            let recs: Vec<TraceRecord> = (0..n)
                .map(|_| reader.next_record().expect("validated trace decodes fully"))
                .collect();
            let sps = if sps.is_empty() { compute(&recs) } else { sps };
            return (Arc::new(recs), sps);
        }
        {
            let mut tier = self.traces.lock();
            if let Some(recs) = tier.touch(w.name()) {
                self.tstats.mem_hits.fetch_add(1, Ordering::Relaxed);
                drop(tier);
                let sps = compute(&recs);
                return (recs, sps);
            }
        }
        if let Some(store) = &self.trace_store {
            if let TraceLoad::Hit(mut t) = store.open_trace(self.capture_key(w.name())) {
                self.tstats.disk_hits.fetch_add(1, Ordering::Relaxed);
                let sps = t.simpoints().to_vec();
                let recs = t.read_records();
                let sps = if sps.is_empty() { compute(&recs) } else { sps };
                return (Arc::new(recs), sps);
            }
        }
        let recs = self.capture_records(w);
        let sps = compute(&recs);
        (recs, sps)
    }

    /// Runs a SimPoint-sampled estimate of one single-core cell (paper
    /// methodology: simulate the representative regions, blend by cluster
    /// weight) — see [`Harness::run_simpoints_spec`].
    #[must_use]
    pub fn run_simpoints(
        &self,
        w: &Arc<dyn Workload>,
        scheme: Scheme,
        l1pf: L1Pf,
        k: usize,
    ) -> SimPointRun {
        self.run_simpoints_spec(w, scheme.resolve(), l1pf.resolve(), k)
    }

    /// SimPoint-sampled single-core run: replays the top-`k` SimPoint
    /// regions of the workload's trace (each one BBV interval long) and
    /// reconstitutes a full-run estimate by weighted merge, with region
    /// weights renormalized over the chosen `k` and scaled to full-run
    /// units. Region runs are uncached (they are a fraction of a full
    /// cell's cost) and run on the configured worker pool.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0` or the trace is shorter than one SimPoint
    /// interval.
    #[must_use]
    pub fn run_simpoints_spec(
        &self,
        w: &Arc<dyn Workload>,
        scheme: Arc<ResolvedScheme>,
        l1pf: Arc<ResolvedL1Pf>,
        k: usize,
    ) -> SimPointRun {
        assert!(k > 0, "need at least one SimPoint region");
        let cfg = BbvConfig::standard();
        let (recs, mut sps) = self.records_and_simpoints(w);
        assert!(
            !sps.is_empty(),
            "trace of {} records is shorter than one SimPoint interval ({})",
            recs.len(),
            cfg.interval
        );
        sps.truncate(k);
        let total: f64 = sps.iter().map(|p| p.weight).sum();
        for p in &mut sps {
            p.weight /= total;
        }
        // Each region replays one interval: proportionally scaled warmup,
        // then measure at most one interval's worth of instructions.
        let measure = (cfg.interval as u64).min(self.rc.instructions).max(1);
        let warm = (cfg.interval as u64 / 4).min(self.rc.warmup);
        let region_reports = self.parallel_map_labeled(
            sps.clone(),
            |p, _| format!("{}@sp{}", w.name(), p.interval),
            |p| {
                let start = p.interval * cfg.interval;
                let end = (start + cfg.interval).min(recs.len());
                let region = recs[start..end].to_vec();
                let trace = VecTrace::looping(format!("{}@sp{}", w.name(), p.interval), region);
                let setup = self.assemble(&scheme, &l1pf, Box::new(trace));
                System::new(SystemConfig::cascade_lake(1), vec![setup])
                    .with_engine_mode(self.rc.engine)
                    .run(warm, measure)
            },
        );
        // Scale weights so the estimate lands in full-run units.
        let scale = self.rc.instructions as f64 / measure as f64;
        let weights: Vec<f64> = sps.iter().map(|p| p.weight * scale).collect();
        let estimate = tlp_tracestore::weighted_merge(&region_reports, &weights);
        SimPointRun {
            workload: w.name().to_owned(),
            interval: cfg.interval,
            regions: sps,
            region_reports,
            estimate,
        }
    }

    /// Runs one cell through the cache: hit in a tier, or simulate and
    /// fill both tiers.
    pub fn run_cell(&self, cell: &RunCell) -> SimReport {
        (*self.run_cell_arc(cell)).clone()
    }

    /// [`Harness::run_cell`] without the defensive clone — the shared
    /// in-cache report, for hot collection paths that only read a field.
    /// A miss here means the cell was never planned into a
    /// [`Harness::run_cells`] batch: it still simulates correctly, but
    /// single-threaded on the caller, so it is flagged in the engine
    /// stats (`inline=` in the summary line).
    fn run_cell_arc(&self, cell: &RunCell) -> Arc<SimReport> {
        self.cache
            .get_or_run_labeled(cell.key, Some(&cell.label), 0, || {
                self.cache.note_inline_simulated();
                self.simulate(&cell.kind)
            })
    }

    /// A content-addressed key for one step of a *stateful* simulation
    /// sequence (e.g. a persistent-agent learning-curve epoch), run
    /// through [`Harness::run_sequence`]. `step` must uniquely identify
    /// the position and nature of the step within the sequence.
    #[must_use]
    pub fn sequence_key(
        &self,
        w: &Arc<dyn Workload>,
        scheme: Scheme,
        l1pf: L1Pf,
        step: &str,
    ) -> RunKey {
        RunKey::from_desc(&cache::custom_desc(
            &self.env_desc(),
            w.name(),
            &scheme.key(),
            l1pf.name(),
            &format!("seq:{step}"),
        ))
    }

    /// Runs a sequence of cells whose simulations are stateful across the
    /// sequence (later steps depend on state accumulated by earlier ones,
    /// so a step can never be simulated standalone). Caching is therefore
    /// all-or-nothing: if every key hits, the cached reports are returned
    /// and nothing is simulated; otherwise `simulate_all` re-runs the
    /// whole sequence and every step is stored.
    ///
    /// # Panics
    ///
    /// Panics when `simulate_all` returns a different number of reports
    /// than `keys`.
    pub fn run_sequence<F>(&self, keys: &[RunKey], simulate_all: F) -> Vec<SimReport>
    where
        F: FnOnce() -> Vec<SimReport>,
    {
        let cached: Vec<Option<Arc<SimReport>>> =
            keys.iter().map(|&k| self.cache.lookup(k)).collect();
        if cached.iter().all(Option::is_some) {
            return cached
                .into_iter()
                .map(|r| (*r.expect("checked above")).clone())
                .collect();
        }
        let reports = simulate_all();
        assert_eq!(
            reports.len(),
            keys.len(),
            "simulate_all must produce one report per sequence key"
        );
        for (&k, r) in keys.iter().zip(&reports) {
            self.cache.insert_simulated(k, r.clone());
        }
        reports
    }

    /// Submits a batch of cells to the engine: duplicates are coalesced,
    /// cached cells answer instantly, and the remainder is simulated on a
    /// self-scheduling pool of `rc.threads` workers, each claiming the
    /// next unclaimed cell of the deduplicated grid. Resolution goes
    /// through the cache's single-flight layer, so a cell this batch
    /// misses on but another concurrent batch (or service client) is
    /// already simulating is *waited for*, not re-simulated: every unique
    /// cell is simulated exactly once per cache lifetime, even across
    /// overlapping batches.
    pub fn run_cells(&self, cells: Vec<RunCell>) {
        self.run_cells_streaming(cells, |_, _, _| {});
    }

    /// [`Harness::run_cells`] with a completion callback: `on_ready(i,
    /// cell, report)` fires from the worker that resolved cell `i` (its
    /// index in the deduplicated batch, batch order preserved) the moment
    /// its report is available — cache hits immediately, misses as each
    /// simulation (or coalesced wait on another requester's flight)
    /// finishes. This is what lets `tlp-serve` stream per-cell result
    /// frames back to clients instead of collecting sequentially at
    /// end-of-grid. The callback runs concurrently on pool workers, so it
    /// must be `Sync` and should stay cheap.
    pub fn run_cells_streaming<F>(&self, cells: Vec<RunCell>, on_ready: F)
    where
        F: Fn(usize, &RunCell, &Arc<SimReport>) + Sync,
    {
        let mut seen = HashSet::new();
        let mut todo = Vec::new();
        for cell in cells {
            if !seen.insert(cell.key) {
                self.cache.note_deduped(1);
                continue;
            }
            todo.push(cell);
        }
        let todo: Vec<(usize, RunCell)> = todo.into_iter().enumerate().collect();
        // Queue wait is measured from batch submission to worker pickup —
        // the per-cell phase the profile artifact breaks out.
        let submitted = std::time::Instant::now();
        self.parallel_map_labeled(
            todo,
            |(_, cell), _| cell.label.clone(),
            |(i, cell)| {
                let wait = u64::try_from(submitted.elapsed().as_nanos()).unwrap_or(u64::MAX);
                let report =
                    self.cache
                        .get_or_run_labeled(cell.key, Some(&cell.label), wait, || {
                            self.simulate(&cell.kind)
                        });
                on_ready(*i, cell, &report);
            },
        );
    }

    /// Runs one single-core simulation (cached per workload/scheme/l1pf).
    #[must_use]
    pub fn run_single(&self, w: &Arc<dyn Workload>, scheme: Scheme, l1pf: L1Pf) -> SimReport {
        self.run_single_with_bandwidth(w, scheme, l1pf, None)
    }

    /// Runs one single-core simulation with an explicit per-core bandwidth
    /// (cached).
    #[must_use]
    pub fn run_single_with_bandwidth(
        &self,
        w: &Arc<dyn Workload>,
        scheme: Scheme,
        l1pf: L1Pf,
        gbps: Option<f64>,
    ) -> SimReport {
        self.run_cell(&self.cell_single(w, scheme, l1pf, gbps))
    }

    /// Runs one single-core simulation under an explicit [`SystemConfig`]
    /// (cached; `tag` must uniquely identify the config deviation, e.g.
    /// the LLC replacement policy).
    #[must_use]
    pub fn run_single_custom(
        &self,
        w: &Arc<dyn Workload>,
        scheme: Scheme,
        l1pf: L1Pf,
        cfg: SystemConfig,
        tag: &str,
    ) -> SimReport {
        self.run_cell(&self.cell_custom(w, scheme, l1pf, cfg, tag))
    }

    /// Runs one 4-core mix (cached per mix/scheme/l1pf/bandwidth).
    #[must_use]
    pub fn run_mix(
        &self,
        ws: &[Arc<dyn Workload>; 4],
        scheme: Scheme,
        l1pf: L1Pf,
        gbps: Option<f64>,
    ) -> SimReport {
        self.run_cell(&self.cell_mix(ws, scheme, l1pf, gbps))
    }

    /// Cached single-core IPC of `w` under `scheme` (isolation run on the
    /// multi-core per-core bandwidth), as weighted speedup requires.
    #[must_use]
    pub fn single_ipc(&self, w: &Arc<dyn Workload>, scheme: Scheme, l1pf: L1Pf, gbps: f64) -> f64 {
        self.run_cell_arc(&self.cell_single(w, scheme, l1pf, Some(gbps)))
            .ipc()
    }

    /// Weighted speedup of a mix report relative to per-workload isolation
    /// IPCs (paper §V-D): Σ IPC_shared / IPC_single.
    #[must_use]
    pub fn weighted_ipc(
        &self,
        ws: &[Arc<dyn Workload>; 4],
        mix_report: &SimReport,
        scheme: Scheme,
        l1pf: L1Pf,
        gbps: f64,
    ) -> f64 {
        ws.iter()
            .zip(&mix_report.cores)
            .map(|(w, core)| {
                let single = self.single_ipc(w, scheme, l1pf, gbps);
                if single <= 0.0 {
                    0.0
                } else {
                    core.core.ipc() / single
                }
            })
            .sum()
    }

    /// Maps `f` over `items` on the configured number of worker threads,
    /// preserving order. A panicking closure re-panics on the caller with
    /// the item's index in the message.
    pub fn parallel_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.parallel_map_labeled(items, |_, i| format!("item {i}"), f)
    }

    /// [`Harness::parallel_map`] with a caller-provided label per item: a
    /// panicking closure re-panics on the caller with the failing item's
    /// label, so a dead cell in a thousand-cell grid is identifiable.
    pub fn parallel_map_labeled<T, R, F, L>(&self, items: Vec<T>, label: L, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
        L: Fn(&T, usize) -> String,
    {
        use std::panic::{catch_unwind, AssertUnwindSafe};

        let threads = self.rc.threads.max(1);
        let n = items.len();
        let run_one = |i: usize| -> Result<R, String> {
            catch_unwind(AssertUnwindSafe(|| f(&items[i])))
                .map_err(|payload| panic_message(payload.as_ref()))
        };
        let fail = |i: usize, msg: &str| {
            panic!(
                "worker panicked on {} ({} of {n}): {msg}",
                label(&items[i], i),
                i + 1
            )
        };
        if threads == 1 || n <= 1 {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                match run_one(i) {
                    Ok(r) => out.push(r),
                    Err(msg) => fail(i, &msg),
                }
            }
            return out;
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let (tx, rx) = crossbeam::channel::unbounded::<(usize, Result<R, String>)>();
        let (run_ref, next_ref) = (&run_one, &next);
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(n) {
                let tx = tx.clone();
                scope.spawn(move |_| loop {
                    let i = next_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if tx.send((i, run_ref(i))).is_err() {
                        break;
                    }
                });
            }
        })
        .expect("worker thread died outside the panic guard");
        drop(tx);
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut failure: Option<(usize, String)> = None;
        while let Ok((i, r)) = rx.recv() {
            match r {
                Ok(v) => results[i] = Some(v),
                Err(msg) => {
                    // Keep the lowest-index failure for a deterministic
                    // message when several workers panic.
                    if failure.as_ref().is_none_or(|(j, _)| i < *j) {
                        failure = Some((i, msg));
                    }
                }
            }
        }
        if let Some((i, msg)) = failure {
            fail(i, &msg);
        }
        results
            .into_iter()
            .map(|r| r.expect("every index produced"))
            .collect()
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Geometric mean of (1 + x) ratios expressed as percent deltas:
/// `geomean_speedup_percent([5.0, 10.0])` treats inputs as +5%, +10%.
#[must_use]
pub fn geomean_speedup_percent(percents: &[f64]) -> f64 {
    if percents.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = percents
        .iter()
        .map(|p| (1.0 + p / 100.0).max(1e-9).ln())
        .sum();
    ((log_sum / percents.len() as f64).exp() - 1.0) * 100.0
}

/// Arithmetic mean.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_uniform_is_identity() {
        assert!((geomean_speedup_percent(&[10.0, 10.0]) - 10.0).abs() < 1e-9);
        assert_eq!(geomean_speedup_percent(&[]), 0.0);
    }

    #[test]
    fn geomean_mixes_gains_and_losses() {
        let g = geomean_speedup_percent(&[50.0, -33.333_333_333]);
        assert!(g.abs() < 0.01, "×1.5 and ×(2/3) must cancel: {g}");
    }

    #[test]
    fn parallel_map_preserves_order() {
        let h = Harness::new(RunConfig::test());
        let out = h.parallel_map((0..100).collect(), |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "worker panicked on item 13 (14 of 32): boom at 13")]
    fn parallel_map_panic_names_the_failing_item() {
        let h = Harness::new(RunConfig::test());
        let _ = h.parallel_map((0..32).collect(), |&x: &i32| {
            assert!(x != 13, "boom at {x}");
            x
        });
    }

    #[test]
    #[should_panic(expected = "worker panicked on cell doomed-cell")]
    fn labeled_panic_carries_the_cell_label() {
        let mut rc = RunConfig::test();
        rc.threads = 1; // Exercise the sequential path's guard too.
        let h = Harness::new(rc);
        let _ = h.parallel_map_labeled(
            vec!["ok", "doomed", "ok"],
            |item, _| format!("cell {item}-cell"),
            |item| assert!(*item != "doomed", "poof"),
        );
    }

    #[test]
    fn trace_cache_returns_identical_traces() {
        let h = Harness::new(RunConfig::test());
        let w = &h.workloads()[0].clone();
        let mut a = h.trace_for(w);
        let mut b = h.trace_for(w);
        for _ in 0..100 {
            assert_eq!(a.next_record(), b.next_record());
        }
    }

    #[test]
    fn subset_takes_from_both_suites() {
        let h = Harness::new(RunConfig::test());
        let sub = h.workload_subset(2);
        assert_eq!(sub.len(), 4);
        let suites: std::collections::HashSet<_> = sub.iter().map(|w| w.suite()).collect();
        assert_eq!(suites.len(), 2);
    }

    #[test]
    fn cell_keys_separate_every_grid_axis() {
        let h = Harness::new(RunConfig::test());
        let w = h.workloads()[0].clone();
        let v = h.workloads()[1].clone();
        let cells = [
            h.cell_single(&w, Scheme::Baseline, L1Pf::Ipcp, None),
            h.cell_single(&v, Scheme::Baseline, L1Pf::Ipcp, None),
            h.cell_single(&w, Scheme::Tlp, L1Pf::Ipcp, None),
            h.cell_single(&w, Scheme::Baseline, L1Pf::Berti, None),
            h.cell_single(&w, Scheme::Baseline, L1Pf::Ipcp, Some(12.8)),
            h.cell_mix(
                &[w.clone(), w.clone(), w.clone(), w.clone()],
                Scheme::Baseline,
                L1Pf::Ipcp,
                None,
            ),
            h.cell_custom(
                &w,
                Scheme::Baseline,
                L1Pf::Ipcp,
                SystemConfig::cascade_lake(1),
                "lru",
            ),
        ];
        let keys: HashSet<RunKey> = cells.iter().map(RunCell::key).collect();
        assert_eq!(keys.len(), cells.len(), "every axis must change the key");
    }

    #[test]
    fn cell_keys_depend_on_the_run_budget() {
        let h1 = Harness::new(RunConfig::test());
        let mut rc = RunConfig::test();
        rc.instructions += 1;
        let h2 = Harness::new(rc);
        let w = h1.workloads()[0].clone();
        assert_ne!(
            h1.cell_single(&w, Scheme::Baseline, L1Pf::Ipcp, None).key(),
            h2.cell_single(&w, Scheme::Baseline, L1Pf::Ipcp, None).key(),
        );
    }

    #[test]
    fn run_cells_deduplicates_and_fills_the_cache() {
        let mut rc = RunConfig::test();
        rc.warmup = 1_000;
        rc.instructions = 4_000;
        let h = Harness::new(rc);
        let w = h.workloads()[0].clone();
        let batch = vec![
            h.cell_single(&w, Scheme::Baseline, L1Pf::Ipcp, None),
            h.cell_single(&w, Scheme::Baseline, L1Pf::Ipcp, None),
            h.cell_single(&w, Scheme::Baseline, L1Pf::Ipcp, None),
        ];
        h.run_cells(batch);
        let st = h.engine_stats();
        assert_eq!(st.simulated, 1, "triplicate cell simulates once");
        assert_eq!(st.deduped, 2);
        // Collection is a pure cache hit.
        let _ = h.run_single(&w, Scheme::Baseline, L1Pf::Ipcp);
        let st = h.engine_stats();
        assert_eq!(st.simulated, 1);
        assert_eq!(st.mem_hits, 1);
    }
}
