//! Multi-core workload mix generation (paper §V-D).
//!
//! Per suite (SPEC, GAP): 50 homogeneous mixes (four instances of one
//! randomly-selected workload) and 50 heterogeneous mixes (four randomly
//! selected workloads), seeded for reproducibility. The harness runs the
//! first `mixes_per_suite` of each list.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tlp_trace::emit::{Suite, Workload};

/// One 4-core mix.
#[derive(Clone)]
pub struct Mix {
    /// Mix id (e.g. `gap-hom-03`).
    pub name: String,
    /// The four co-running workloads.
    pub workloads: [Arc<dyn Workload>; 4],
    /// Originating suite.
    pub suite: Suite,
    /// True for homogeneous (4 copies of one workload).
    pub homogeneous: bool,
}

impl std::fmt::Debug for Mix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mix")
            .field("name", &self.name)
            .field(
                "workloads",
                &self.workloads.iter().map(|w| w.name()).collect::<Vec<_>>(),
            )
            .field("suite", &self.suite)
            .field("homogeneous", &self.homogeneous)
            .finish()
    }
}

/// Seed for mix selection (fixed, like the paper's published mix list).
pub const MIX_SEED: u64 = 0xA11CE;

/// Generates `per_kind` homogeneous and `per_kind` heterogeneous mixes for
/// each suite present in `workloads` (paper: 50 + 50 per suite).
#[must_use]
pub fn generate_mixes(workloads: &[Arc<dyn Workload>], per_kind: usize) -> Vec<Mix> {
    let mut out = Vec::new();
    for suite in [Suite::Spec, Suite::Gap] {
        let pool: Vec<Arc<dyn Workload>> = workloads
            .iter()
            .filter(|w| w.suite() == suite)
            .cloned()
            .collect();
        if pool.is_empty() {
            continue;
        }
        let tag = match suite {
            Suite::Spec => "spec",
            Suite::Gap => "gap",
        };
        let mut rng =
            StdRng::seed_from_u64(MIX_SEED ^ (tag.len() as u64) << 32 ^ pool.len() as u64);
        for i in 0..per_kind {
            let w = pool[rng.gen_range(0..pool.len())].clone();
            out.push(Mix {
                name: format!("{tag}-hom-{i:02}"),
                workloads: [w.clone(), w.clone(), w.clone(), w],
                suite,
                homogeneous: true,
            });
        }
        for i in 0..per_kind {
            let pick = |rng: &mut StdRng| pool[rng.gen_range(0..pool.len())].clone();
            out.push(Mix {
                name: format!("{tag}-het-{i:02}"),
                workloads: [
                    pick(&mut rng),
                    pick(&mut rng),
                    pick(&mut rng),
                    pick(&mut rng),
                ],
                suite,
                homogeneous: false,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_trace::catalog::{self, Scale};

    #[test]
    fn generates_both_kinds_for_both_suites() {
        let ws = catalog::single_core_set(Scale::Tiny);
        let mixes = generate_mixes(&ws, 3);
        assert_eq!(mixes.len(), 12);
        assert_eq!(mixes.iter().filter(|m| m.homogeneous).count(), 6);
        assert_eq!(mixes.iter().filter(|m| m.suite == Suite::Gap).count(), 6);
    }

    #[test]
    fn homogeneous_mixes_repeat_one_workload() {
        let ws = catalog::single_core_set(Scale::Tiny);
        let mixes = generate_mixes(&ws, 2);
        for m in mixes.iter().filter(|m| m.homogeneous) {
            let names: std::collections::HashSet<&str> =
                m.workloads.iter().map(|w| w.name()).collect();
            assert_eq!(names.len(), 1, "{} is not homogeneous", m.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let ws = catalog::single_core_set(Scale::Tiny);
        let a: Vec<String> = generate_mixes(&ws, 5)
            .iter()
            .flat_map(|m| m.workloads.iter().map(|w| w.name().to_owned()))
            .collect();
        let b: Vec<String> = generate_mixes(&ws, 5)
            .iter()
            .flat_map(|m| m.workloads.iter().map(|w| w.name().to_owned()))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn mix_names_are_unique() {
        let ws = catalog::single_core_set(Scale::Tiny);
        let mixes = generate_mixes(&ws, 10);
        let names: std::collections::HashSet<&String> = mixes.iter().map(|m| &m.name).collect();
        assert_eq!(names.len(), mixes.len());
    }
}
