//! Experiment results and plain-text rendering.

use serde::{Deserialize, Serialize};

/// One row of an experiment table: a label plus named numeric columns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Row label (workload, scheme, bandwidth point, ...).
    pub label: String,
    /// `(column, value)` pairs, in display order.
    pub values: Vec<(String, f64)>,
}

impl Row {
    /// Builds a row.
    #[must_use]
    pub fn new(label: impl Into<String>, values: Vec<(String, f64)>) -> Self {
        Self {
            label: label.into(),
            values,
        }
    }

    /// Looks up a value by column name.
    #[must_use]
    pub fn get(&self, column: &str) -> Option<f64> {
        self.values
            .iter()
            .find(|(c, _)| c == column)
            .map(|&(_, v)| v)
    }
}

/// The result of one experiment (one paper figure or table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id (e.g. `fig10a`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// What the numbers mean (units).
    pub unit: String,
    /// Data rows.
    pub rows: Vec<Row>,
    /// Summary rows (averages/geomeans), rendered separately.
    pub summary: Vec<Row>,
}

impl ExperimentResult {
    /// Creates an empty result shell.
    #[must_use]
    pub fn new(id: impl Into<String>, title: impl Into<String>, unit: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            unit: unit.into(),
            rows: Vec::new(),
            summary: Vec::new(),
        }
    }

    /// Looks up a summary value.
    #[must_use]
    pub fn summary_value(&self, row: &str, column: &str) -> Option<f64> {
        self.summary
            .iter()
            .find(|r| r.label == row)
            .and_then(|r| r.get(column))
    }

    /// Renders the result as an aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== {} — {} [{}]\n",
            self.id, self.title, self.unit
        ));
        let columns: Vec<String> = self
            .rows
            .first()
            .or(self.summary.first())
            .map(|r| r.values.iter().map(|(c, _)| c.clone()).collect())
            .unwrap_or_default();
        let label_w = self
            .rows
            .iter()
            .chain(&self.summary)
            .map(|r| r.label.len())
            .max()
            .unwrap_or(8)
            .max(8);
        let col_w = columns.iter().map(|c| c.len().max(10)).collect::<Vec<_>>();
        out.push_str(&format!("{:label_w$}", ""));
        for (c, w) in columns.iter().zip(&col_w) {
            out.push_str(&format!(" {c:>w$}"));
        }
        out.push('\n');
        let fmt_row = |r: &Row, out: &mut String| {
            out.push_str(&format!("{:label_w$}", r.label));
            for ((_, v), w) in r.values.iter().zip(&col_w) {
                out.push_str(&format!(" {v:>w$.2}"));
            }
            out.push('\n');
        };
        for r in &self.rows {
            fmt_row(r, &mut out);
        }
        if !self.summary.is_empty() {
            out.push_str(&format!("{}\n", "-".repeat(label_w + 4)));
            for r in &self.summary {
                fmt_row(r, &mut out);
            }
        }
        out
    }

    /// Renders the result as JSON (the paper's artifact feeds its Jupyter
    /// notebooks from machine-readable results; this is the equivalent).
    /// Hand-rolled to avoid a JSON dependency — the value space is only
    /// strings and finite floats.
    #[must_use]
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_owned()
            }
        }
        fn rows_json(rows: &[Row]) -> String {
            let items: Vec<String> = rows
                .iter()
                .map(|r| {
                    let vals: Vec<String> = r
                        .values
                        .iter()
                        .map(|(c, v)| {
                            format!("{{\"column\":\"{}\",\"value\":{}}}", esc(c), num(*v))
                        })
                        .collect();
                    format!(
                        "{{\"label\":\"{}\",\"values\":[{}]}}",
                        esc(&r.label),
                        vals.join(",")
                    )
                })
                .collect();
            format!("[{}]", items.join(","))
        }
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"unit\":\"{}\",\"rows\":{},\"summary\":{}}}",
            esc(&self.id),
            esc(&self.title),
            esc(&self.unit),
            rows_json(&self.rows),
            rows_json(&self.summary)
        )
    }

    /// Renders one column of the result as a horizontal ASCII bar chart —
    /// the terminal stand-in for the paper's per-workload bar figures.
    /// Bars are scaled to the largest absolute value; negative values
    /// grow leftward from a shared zero axis.
    ///
    /// Returns an empty string when `column` is absent from every row.
    #[must_use]
    pub fn render_chart(&self, column: &str, width: usize) -> String {
        let rows: Vec<(&str, f64)> = self
            .rows
            .iter()
            .filter_map(|r| r.get(column).map(|v| (r.label.as_str(), v)))
            .collect();
        if rows.is_empty() {
            return String::new();
        }
        let width = width.max(10);
        let max_abs = rows
            .iter()
            .map(|(_, v)| v.abs())
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(8).max(8);
        let half = width / 2;
        let any_negative = rows.iter().any(|(_, v)| *v < 0.0);
        let mut out = format!("== {} — {} [{}]\n", self.id, column, self.unit);
        for (label, v) in rows {
            let frac = (v.abs() / max_abs).min(1.0);
            let bar_w = if any_negative { half } else { width };
            let n = (frac * bar_w as f64).round() as usize;
            let bar: String = "█".repeat(n);
            if any_negative {
                // Two-sided chart around a zero axis.
                if v < 0.0 {
                    out.push_str(&format!(
                        "{label:label_w$} {pad}{bar}|{space} {v:9.2}\n",
                        pad = " ".repeat(half - n),
                        space = " ".repeat(half),
                    ));
                } else {
                    out.push_str(&format!(
                        "{label:label_w$} {pad}|{bar}{space} {v:9.2}\n",
                        pad = " ".repeat(half),
                        space = " ".repeat(half - n),
                    ));
                }
            } else {
                out.push_str(&format!("{label:label_w$} {bar:<bar_w$} {v:9.2}\n"));
            }
        }
        out
    }

    /// Renders the result as CSV: a header row of `label,<columns...>`,
    /// data rows, then summary rows. Labels containing commas or quotes
    /// are quoted.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let columns: Vec<String> = self
            .rows
            .first()
            .or(self.summary.first())
            .map(|r| r.values.iter().map(|(c, _)| c.clone()).collect())
            .unwrap_or_default();
        let mut out = String::new();
        out.push_str("label");
        for c in &columns {
            out.push(',');
            out.push_str(&field(c));
        }
        out.push('\n');
        for r in self.rows.iter().chain(&self.summary) {
            out.push_str(&field(&r.label));
            for (_, v) in &r.values {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> ExperimentResult {
        let mut r = ExperimentResult::new("figX", "Test", "%");
        r.rows
            .push(Row::new("w1", vec![("A".into(), 1.5), ("B".into(), -2.25)]));
        r.summary.push(Row::new(
            "mean",
            vec![("A".into(), 1.5), ("B".into(), -2.25)],
        ));
        r
    }

    #[test]
    fn lookup_by_name() {
        let r = result();
        assert_eq!(r.rows[0].get("B"), Some(-2.25));
        assert_eq!(r.summary_value("mean", "A"), Some(1.5));
        assert_eq!(r.summary_value("mean", "C"), None);
    }

    #[test]
    fn render_contains_all_parts() {
        let s = result().render();
        assert!(s.contains("figX"));
        assert!(s.contains("w1"));
        assert!(s.contains("mean"));
        assert!(s.contains("-2.25"));
    }

    #[test]
    fn render_empty_result_is_safe() {
        let r = ExperimentResult::new("e", "Empty", "");
        let s = r.render();
        assert!(s.contains("Empty"));
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let s = result().to_json();
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"id\":\"figX\""));
        assert!(s.contains("\"label\":\"w1\""));
        assert!(s.contains("\"column\":\"A\""));
        assert!(s.contains("\"value\":-2.25"));
        assert!(s.contains("\"summary\":[{\"label\":\"mean\""));
        // Balanced braces/brackets (cheap structural sanity check).
        let braces = s.chars().filter(|&c| c == '{').count();
        let closes = s.chars().filter(|&c| c == '}').count();
        assert_eq!(braces, closes);
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut r = ExperimentResult::new("e", "quote \" and \\ slash", "");
        r.rows
            .push(Row::new("line\nbreak", vec![("c".into(), 1.0)]));
        let s = r.to_json();
        assert!(s.contains("quote \\\" and \\\\ slash"));
        assert!(s.contains("line\\nbreak"));
        assert!(!s.contains("line\nbreak"));
    }

    #[test]
    fn json_nonfinite_becomes_null() {
        let mut r = ExperimentResult::new("e", "t", "");
        r.rows
            .push(Row::new("w", vec![("c".into(), f64::INFINITY)]));
        assert!(r.to_json().contains("\"value\":null"));
    }

    #[test]
    fn csv_has_header_rows_and_summary() {
        let s = result().to_csv();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "label,A,B");
        assert_eq!(lines[1], "w1,1.5,-2.25");
        assert_eq!(lines[2], "mean,1.5,-2.25");
    }

    #[test]
    fn csv_quotes_awkward_labels() {
        let mut r = ExperimentResult::new("e", "t", "");
        r.rows.push(Row::new("a,b \"c\"", vec![("x".into(), 1.0)]));
        let s = r.to_csv();
        assert!(s.contains("\"a,b \"\"c\"\"\",1"));
    }

    #[test]
    fn chart_scales_bars_to_maximum() {
        let mut r = ExperimentResult::new("e", "t", "%");
        r.rows.push(Row::new("big", vec![("v".into(), 10.0)]));
        r.rows.push(Row::new("half", vec![("v".into(), 5.0)]));
        let s = r.render_chart("v", 20);
        let bars: Vec<usize> = s
            .lines()
            .skip(1)
            .map(|l| l.chars().filter(|&c| c == '█').count())
            .collect();
        assert_eq!(bars[0], 20, "max value fills the width");
        assert_eq!(bars[1], 10, "half value gets half the bar");
        assert!(s.contains("10.00") && s.contains("5.00"));
    }

    #[test]
    fn chart_handles_mixed_signs_around_axis() {
        let mut r = ExperimentResult::new("e", "t", "%");
        r.rows.push(Row::new("up", vec![("v".into(), 8.0)]));
        r.rows.push(Row::new("down", vec![("v".into(), -8.0)]));
        let s = r.render_chart("v", 20);
        for line in s.lines().skip(1) {
            assert!(line.contains('|'), "two-sided chart keeps the axis: {line}");
        }
        let up = s.lines().nth(1).expect("row");
        let down = s.lines().nth(2).expect("row");
        assert!(up.find('|').expect("axis") < up.find('█').expect("bar"));
        assert!(down.find('█').expect("bar") < down.find('|').expect("axis"));
    }

    #[test]
    fn chart_of_missing_column_is_empty() {
        let r = result();
        assert!(r.render_chart("nope", 30).is_empty());
        assert!(!r.render_chart("A", 30).is_empty());
    }

    #[test]
    fn chart_survives_all_zero_values() {
        let mut r = ExperimentResult::new("e", "t", "");
        r.rows.push(Row::new("z", vec![("v".into(), 0.0)]));
        let s = r.render_chart("v", 16);
        assert!(s.contains("0.00"));
        assert_eq!(s.chars().filter(|&c| c == '█').count(), 0);
    }
}
