//! The content-addressed result cache behind the run engine.
//!
//! Every grid cell the harness can simulate — (workload(s), scheme, L1D
//! prefetcher, bandwidth, run budget) — maps to a [`RunKey`]: a stable
//! 128-bit content hash of the cell's canonical description salted with
//! [`CODE_VERSION`]. The cache has two tiers:
//!
//! * **memory** — a process-wide map shared by every experiment of one
//!   invocation, so `tlp_repro --all` simulates each unique cell once no
//!   matter how many figures request it;
//! * **disk** — optional (`--cache-dir`), one JSON file per key in the
//!   [`tlp_sim::serial`] format, so repeated invocations are
//!   simulation-free.
//!
//! Cell results are deterministic functions of their description (the
//! simulator is single-threaded per cell and all seeds are fixed), which
//! is what makes content addressing sound; `tests/determinism.rs` pins
//! that property across thread counts and cache states.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use tlp_sim::{serial, SimReport};

/// Salt folded into every [`RunKey`]. Bump this whenever a change to the
/// simulator or workload generation alters results, so stale on-disk cache
/// entries can never be served for the new code.
pub const CODE_VERSION: &str = "tlp-cells-v1";

/// Content hash identifying one simulation cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunKey(u128);

/// FNV-1a over `bytes`, starting from `seed`.
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl RunKey {
    /// Hashes a canonical cell description (two independent 64-bit FNV-1a
    /// streams — the grid is thousands of cells, far below the ~2⁶⁴
    /// birthday bound of a 128-bit key). The [`CODE_VERSION`] salt is
    /// folded into both halves.
    #[must_use]
    pub fn from_desc(desc: &str) -> Self {
        let lo = fnv1a(
            fnv1a(0xcbf2_9ce4_8422_2325, CODE_VERSION.as_bytes()),
            desc.as_bytes(),
        );
        let hi = fnv1a(
            fnv1a(0x6c62_272e_07bb_0142, CODE_VERSION.as_bytes()),
            desc.as_bytes(),
        );
        Self((u128::from(hi) << 64) | u128::from(lo))
    }

    /// The key as 32 hex digits (the on-disk file stem).
    #[must_use]
    pub fn hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

/// Canonical fragment for an optional per-core bandwidth: exact `f64` bits
/// so distinct sweep points can never alias.
#[must_use]
pub fn bandwidth_desc(gbps: Option<f64>) -> String {
    match gbps {
        None => "bw:default".to_owned(),
        Some(b) => format!("bw:{:016x}", b.to_bits()),
    }
}

/// Canonical description of a single-core cell. `env` is the harness's
/// run-budget fragment (scale, warmup, instructions).
#[must_use]
pub fn single_desc(env: &str, workload: &str, scheme_key: &str, l1pf: &str, bw: &str) -> String {
    format!("1c|{env}|{workload}|{scheme_key}|{l1pf}|{bw}")
}

/// Canonical description of a 4-core mix cell.
#[must_use]
pub fn mix_desc(env: &str, workloads: [&str; 4], scheme_key: &str, l1pf: &str, bw: &str) -> String {
    format!(
        "4c|{env}|{}+{}+{}+{}|{scheme_key}|{l1pf}|{bw}",
        workloads[0], workloads[1], workloads[2], workloads[3]
    )
}

/// Canonical description of a single-core cell under a custom
/// [`tlp_sim::SystemConfig`]; `tag` must uniquely identify the deviation.
#[must_use]
pub fn custom_desc(env: &str, workload: &str, scheme_key: &str, l1pf: &str, tag: &str) -> String {
    format!("1c|{env}|{workload}|{scheme_key}|{l1pf}|cfg:{tag}")
}

/// The on-disk tier: one `<key>.json` per cell under a cache directory.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory backing this cache.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: RunKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.hex()))
    }

    /// Loads one report, or `None` when absent or undecodable (a corrupt
    /// entry behaves like a miss and is overwritten on store).
    #[must_use]
    pub fn load(&self, key: RunKey) -> Option<SimReport> {
        let text = std::fs::read_to_string(self.path_for(key)).ok()?;
        serial::report_from_json(&text).ok()
    }

    /// Stores one report (atomically: temp file + rename, so concurrent
    /// invocations sharing a directory never observe torn entries).
    /// Best-effort — a full disk degrades to cache misses, not failures.
    pub fn store(&self, key: RunKey, report: &SimReport) {
        let tmp = self
            .dir
            .join(format!("{}.tmp.{}", key.hex(), std::process::id()));
        let write = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(serial::report_to_json(report).as_bytes())?;
            std::fs::rename(&tmp, self.path_for(key))
        };
        if write().is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

/// Snapshot of the engine's cache counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Cell lookups (batch submissions + result collection).
    pub requested: u64,
    /// Lookups answered from the in-memory tier.
    pub mem_hits: u64,
    /// Lookups answered from the on-disk tier.
    pub disk_hits: u64,
    /// Cells actually simulated.
    pub simulated: u64,
    /// The subset of `simulated` that ran inline on a collection path
    /// (a cache miss outside any [`run_cells`] batch). Migrated
    /// experiments plan their whole grid up front, so this staying 0 is
    /// the plan-covers-collection contract; a nonzero value means cells
    /// are simulating single-threaded where the worker pool should have
    /// run them.
    ///
    /// [`run_cells`]: crate::Harness::run_cells
    pub inline_simulated: u64,
    /// Duplicate cells coalesced inside submitted batches before any
    /// lookup (the grid-dedup counter).
    pub deduped: u64,
}

impl EngineStats {
    /// Lookups served from either cache tier.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }

    /// Percentage of lookups served from a cache tier (100 when nothing
    /// was requested).
    #[must_use]
    pub fn hit_rate_percent(&self) -> f64 {
        if self.requested == 0 {
            return 100.0;
        }
        self.hits() as f64 * 100.0 / self.requested as f64
    }

    /// The one-line summary printed by the CLI (and asserted by CI's
    /// cache-behavior job).
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "requested={} deduped={} mem_hits={} disk_hits={} inline={} simulated={} hit_rate={:.1}%",
            self.requested,
            self.deduped,
            self.mem_hits,
            self.disk_hits,
            self.inline_simulated,
            self.simulated,
            self.hit_rate_percent()
        )
    }
}

/// The two-tier content-addressed cache.
pub struct ResultCache {
    mem: RwLock<HashMap<RunKey, Arc<SimReport>>>,
    disk: Option<DiskCache>,
    requested: AtomicU64,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    simulated: AtomicU64,
    inline_simulated: AtomicU64,
    deduped: AtomicU64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("entries", &self.mem.read().len())
            .field("disk", &self.disk)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl ResultCache {
    /// A memory-only cache (the default for library users and tests).
    #[must_use]
    pub fn in_memory() -> Self {
        Self {
            mem: RwLock::new(HashMap::new()),
            disk: None,
            requested: AtomicU64::new(0),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            simulated: AtomicU64::new(0),
            inline_simulated: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
        }
    }

    /// A cache backed by `disk` in addition to memory.
    #[must_use]
    pub fn with_disk(disk: DiskCache) -> Self {
        Self {
            disk: Some(disk),
            ..Self::in_memory()
        }
    }

    /// Looks one cell up: memory first, then disk (promoting a disk hit
    /// into memory). Counts one request plus the tier that answered.
    #[must_use]
    pub fn lookup(&self, key: RunKey) -> Option<Arc<SimReport>> {
        self.requested.fetch_add(1, Ordering::Relaxed);
        if let Some(r) = self.mem.read().get(&key) {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(r));
        }
        if let Some(report) = self.disk.as_ref().and_then(|d| d.load(key)) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            let arc = Arc::new(report);
            return Some(Arc::clone(
                self.mem.write().entry(key).or_insert_with(|| arc),
            ));
        }
        None
    }

    /// Records a freshly simulated cell into both tiers. If another thread
    /// raced the same key in, the first entry wins (both are identical by
    /// determinism) and its `Arc` is returned.
    pub fn insert_simulated(&self, key: RunKey, report: SimReport) -> Arc<SimReport> {
        self.simulated.fetch_add(1, Ordering::Relaxed);
        if let Some(d) = &self.disk {
            d.store(key, &report);
        }
        let arc = Arc::new(report);
        Arc::clone(self.mem.write().entry(key).or_insert_with(|| arc))
    }

    /// Records `n` in-batch duplicate submissions.
    pub fn note_deduped(&self, n: u64) {
        self.deduped.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one simulation that ran inline on a collection path
    /// instead of inside a submitted batch (see
    /// [`EngineStats::inline_simulated`]).
    pub fn note_inline_simulated(&self) {
        self.inline_simulated.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            requested: self.requested.load(Ordering::Relaxed),
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            simulated: self.simulated.load(Ordering::Relaxed),
            inline_simulated: self.inline_simulated.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tlp-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn report(cycles: u64) -> SimReport {
        SimReport {
            total_cycles: cycles,
            ..SimReport::default()
        }
    }

    #[test]
    fn keys_are_stable_and_desc_sensitive() {
        let a = RunKey::from_desc("1c|Tiny|w5000|i25000|mcf|Baseline|ipcp|bw:default");
        let b = RunKey::from_desc("1c|Tiny|w5000|i25000|mcf|Baseline|ipcp|bw:default");
        assert_eq!(a, b, "same description, same key");
        let c = RunKey::from_desc("1c|Tiny|w5000|i25000|mcf|Baseline|berti|bw:default");
        assert_ne!(a, c, "different description, different key");
        assert_eq!(a.hex().len(), 32);
    }

    #[test]
    fn bandwidth_descs_never_alias() {
        assert_ne!(bandwidth_desc(Some(1.6)), bandwidth_desc(Some(1.6000001)));
        assert_ne!(bandwidth_desc(None), bandwidth_desc(Some(0.0)));
    }

    #[test]
    fn desc_shapes_are_disjoint() {
        let env = "Tiny|w5000|i25000";
        let s = single_desc(env, "mcf", "Baseline", "ipcp", "bw:default");
        let m = mix_desc(env, ["mcf"; 4], "Baseline", "ipcp", "bw:default");
        let c = custom_desc(env, "mcf", "Baseline", "ipcp", "lru");
        assert_ne!(s, m);
        assert_ne!(s, c);
        assert_ne!(m, c);
    }

    #[test]
    fn memory_tier_counts_hits_and_misses() {
        let cache = ResultCache::in_memory();
        let key = RunKey::from_desc("k");
        assert!(cache.lookup(key).is_none());
        cache.insert_simulated(key, report(42));
        assert_eq!(cache.lookup(key).expect("hit").total_cycles, 42);
        cache.note_deduped(3);
        let st = cache.stats();
        assert_eq!(st.requested, 2);
        assert_eq!(st.mem_hits, 1);
        assert_eq!(st.disk_hits, 0);
        assert_eq!(st.simulated, 1);
        assert_eq!(st.deduped, 3);
        assert!((st.hit_rate_percent() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn disk_tier_survives_process_style_reopen() {
        let dir = tmp_dir("reopen");
        let key = RunKey::from_desc("cell");
        {
            let cache = ResultCache::with_disk(DiskCache::open(&dir).expect("open"));
            cache.insert_simulated(key, report(7));
        }
        // A fresh cache over the same directory: memory cold, disk warm.
        let cache = ResultCache::with_disk(DiskCache::open(&dir).expect("open"));
        let hit = cache.lookup(key).expect("disk hit");
        assert_eq!(hit.total_cycles, 7);
        let st = cache.stats();
        assert_eq!((st.disk_hits, st.simulated), (1, 0));
        // The disk hit was promoted: the next lookup is a memory hit.
        assert!(cache.lookup(key).is_some());
        assert_eq!(cache.stats().mem_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_behave_like_misses() {
        let dir = tmp_dir("corrupt");
        let disk = DiskCache::open(&dir).expect("open");
        let key = RunKey::from_desc("cell");
        std::fs::write(disk.dir().join(format!("{}.json", key.hex())), "not json")
            .expect("write garbage");
        assert!(disk.load(key).is_none());
        let cache = ResultCache::with_disk(disk);
        assert!(cache.lookup(key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_line_reports_perfect_hit_rate() {
        let cache = ResultCache::in_memory();
        let key = RunKey::from_desc("k");
        cache.insert_simulated(key, report(1));
        let _ = cache.lookup(key);
        let line = cache.stats().summary_line();
        assert!(line.contains("hit_rate=100.0%"), "{line}");
        assert!(line.contains("simulated=1"), "{line}");
        assert_eq!(EngineStats::default().hit_rate_percent(), 100.0);
    }
}
